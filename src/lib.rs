//! # nbbst — Non-blocking Binary Search Trees
//!
//! A comprehensive Rust reproduction of **Ellen, Fatourou, Ruppert, van
//! Breugel, "Non-blocking Binary Search Trees", PODC 2010** — the first
//! complete, linearizable, non-blocking binary search tree built from
//! single-word compare-and-swap.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`NbBst`] — the paper's tree (from [`nbbst_core`]).
//! * [`ConcurrentMap`] / [`SeqMap`] — the dictionary abstraction
//!   (from [`nbbst_dictionary`]).
//! * [`reclaim`] — the epoch/hazard-pointer memory-reclamation substrate.
//! * [`model`] — sequential reference models.
//! * [`baselines`] — lock-based and lock-free comparator dictionaries.
//! * [`harness`] — workloads, throughput runners, linearizability checking.
//! * [`ShardedNbBst`] / [`sharded`] — key-space partitioning across
//!   independent EFRB trees behind one [`ConcurrentMap`] and one
//!   reclamation domain.
//!
//! # Quickstart
//!
//! ```
//! use nbbst::NbBst;
//! use nbbst::ConcurrentMap;
//!
//! let tree: NbBst<u64, &str> = NbBst::new();
//! assert!(tree.insert(7, "seven"));
//! assert!(!tree.insert(7, "SEVEN"));        // duplicates rejected
//! assert_eq!(tree.get(&7), Some("seven"));
//! assert!(tree.remove(&7));
//! assert!(!tree.contains(&7));
//! ```
//!
//! See `examples/` for multithreaded usage, crash-tolerance demos, and
//! deterministic schedule exploration, and `EXPERIMENTS.md` for the full
//! reproduction of the paper's figures.

pub use nbbst_core::{NbBst, NbSet, State, StatsSnapshot};
pub use nbbst_dictionary::{ConcurrentMap, Operation, Response, SeqMap};
pub use nbbst_sharded::ShardedNbBst;

/// The EFRB tree implementation crate ([`nbbst_core`]).
pub use nbbst_core as core;

/// Memory-reclamation substrate ([`nbbst_reclaim`]).
pub use nbbst_reclaim as reclaim;

/// Sequential reference models ([`nbbst_model`]).
pub use nbbst_model as model;

/// Comparator dictionaries ([`nbbst_baselines`]).
pub use nbbst_baselines as baselines;

/// Workloads and measurement ([`nbbst_harness`]).
pub use nbbst_harness as harness;

/// Sharded frontend over the EFRB tree ([`nbbst_sharded`]).
pub use nbbst_sharded as sharded;
