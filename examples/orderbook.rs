//! A limit-order-book price index built on the EFRB tree.
//!
//! Order books need an *ordered* concurrent dictionary: price levels are
//! created (first order at a price), destroyed (last order cancelled) and
//! probed constantly, and the interesting activity clusters near the top
//! of the book — a hotspot workload where a lock-based tree would
//! serialize exactly where the money is. Uses the tree as
//! `price -> resting quantity` for one side of the book.
//!
//! ```bash
//! cargo run --release --example orderbook
//! ```

use nbbst::{ConcurrentMap, NbBst};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One side of the book: bid price levels (price -> quantity).
struct BookSide {
    levels: NbBst<u64, u64>,
}

impl BookSide {
    fn new() -> BookSide {
        BookSide {
            levels: NbBst::new(),
        }
    }

    /// Rest a new order at `price`. The first order at a price *creates*
    /// the level (an insert); later orders *join* it (duplicate insert —
    /// in a production book the per-level quantity would be an atomic
    /// inside the value, since the tree's stored values are immutable).
    /// Returns `true` if this order created the level.
    fn add_order(&self, price: u64, qty: u64) -> bool {
        self.levels.insert_entry(price, qty).is_ok()
    }

    /// Cancel the whole level at `price` (if present).
    fn cancel_level(&self, price: u64) -> bool {
        self.levels.remove_key(&price)
    }

    /// Probe whether a level exists (quote checks).
    fn has_level(&self, price: u64) -> bool {
        self.levels.contains_key(&price)
    }

    /// Best (highest) bid — a snapshot scan, fine for display purposes.
    fn best_bid(&self) -> Option<u64> {
        self.levels.keys_snapshot().last().copied()
    }
}

fn main() {
    let bids = BookSide::new();
    const MID: u64 = 10_000;

    // Seed a book: levels every tick for 200 ticks below mid.
    for p in (MID - 200)..MID {
        bids.add_order(p, 100);
    }

    let adds = AtomicU64::new(0);
    let cancels = AtomicU64::new(0);
    let probes = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|s| {
        // Two market-maker threads churn levels near the touch (hotspot).
        for mm in 0..2u64 {
            let bids = &bids;
            let adds = &adds;
            let cancels = &cancels;
            s.spawn(move || {
                let mut x = mm + 1;
                for _ in 0..20_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let price = MID - 1 - (x % 10); // top 10 ticks
                    if x & 1 == 0 {
                        bids.add_order(price, 50);
                        adds.fetch_add(1, Ordering::Relaxed);
                    } else {
                        bids.cancel_level(price);
                        cancels.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // One deep-book participant works far from the touch — disjoint
        // from the market makers, so (per the paper) zero interference.
        {
            let bids = &bids;
            let adds = &adds;
            let cancels = &cancels;
            s.spawn(move || {
                for i in 0..10_000u64 {
                    let price = MID - 150 - (i % 40);
                    if i % 2 == 0 {
                        bids.add_order(price, 500);
                        adds.fetch_add(1, Ordering::Relaxed);
                    } else {
                        bids.cancel_level(price);
                        cancels.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // A quote service reads constantly and never blocks anyone
        // (Find only reads shared memory).
        {
            let bids = &bids;
            let probes = &probes;
            s.spawn(move || {
                let mut x = 99u64;
                for _ in 0..50_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    bids.has_level(MID - 1 - (x % 200));
                    probes.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let total = adds.load(Ordering::Relaxed)
        + cancels.load(Ordering::Relaxed)
        + probes.load(Ordering::Relaxed);
    println!("order-book simulation finished in {elapsed:?}");
    println!(
        "  adds: {}, cancels: {}, probes: {} ({:.2} Mops/s total)",
        adds.load(Ordering::Relaxed),
        cancels.load(Ordering::Relaxed),
        probes.load(Ordering::Relaxed),
        total as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("  best bid: {:?}", bids.best_bid());
    println!("  resident levels: {}", bids.levels.quiescent_len());
    bids.levels
        .check_invariants()
        .expect("book index consistent");
    println!("  price index invariants verified.");
}
