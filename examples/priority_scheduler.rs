//! A lock-free priority scheduler built on the tree's ordered API.
//!
//! Uses the BST-order extensions (`min_key`, `range_snapshot`) the core
//! crate adds on top of the paper's dictionary: tasks are keyed by
//! `(deadline, id)` packed into a `u64`, workers repeatedly claim the
//! most-urgent task with `min_key` + `remove` (the remove linearizes the
//! claim: exactly one worker wins each task), and a monitor thread reads
//! deadline windows with pruned range snapshots.
//!
//! ```bash
//! cargo run --release --example priority_scheduler
//! ```

use nbbst::{ConcurrentMap, NbBst};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

/// deadline (ms) in the high 32 bits, task id in the low 32 → keys sort
/// by deadline first, ids break ties.
fn key(deadline_ms: u32, id: u32) -> u64 {
    ((deadline_ms as u64) << 32) | id as u64
}
fn deadline_of(key: u64) -> u32 {
    (key >> 32) as u32
}

fn main() {
    let queue: NbBst<u64, u64> = NbBst::new();
    const TASKS: u32 = 20_000;
    const WORKERS: usize = 4;

    // Seed a backlog with deterministic pseudo-random deadlines.
    let mut x = 0x2545F4914F6CDD1Du64;
    for id in 0..TASKS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let deadline = (x % 100_000) as u32;
        assert!(queue.insert(key(deadline, id), id as u64));
    }
    println!("seeded {TASKS} tasks");

    let claimed = AtomicU64::new(0);
    let out_of_order = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Workers drain the queue most-urgent-first.
        for _ in 0..WORKERS {
            let queue = &queue;
            let claimed = &claimed;
            let out_of_order = &out_of_order;
            s.spawn(move || {
                let mut last_deadline = 0u32;
                loop {
                    let Some(k) = queue.min_key() else {
                        if claimed.load(Ordering::SeqCst) >= TASKS as u64 {
                            break;
                        }
                        std::hint::spin_loop();
                        continue;
                    };
                    // The remove is the claim: under racing workers only
                    // one gets `true` per task.
                    if queue.remove(&k) {
                        claimed.fetch_add(1, Ordering::SeqCst);
                        // Deadlines should be claimed roughly in order;
                        // races can locally reorder (min_key is a snapshot)
                        // but never lose or duplicate a task.
                        let d = deadline_of(k);
                        if d < last_deadline {
                            out_of_order.fetch_add(1, Ordering::Relaxed);
                        }
                        last_deadline = d;
                    }
                }
            });
        }
        // A monitor samples the urgent window without disturbing workers.
        {
            let queue = &queue;
            let claimed = &claimed;
            s.spawn(move || {
                while claimed.load(Ordering::SeqCst) < TASKS as u64 {
                    let urgent =
                        queue.range_snapshot(Bound::Unbounded, Bound::Excluded(&key(10_000, 0)));
                    std::hint::black_box(urgent.len());
                }
            });
        }
    });

    assert_eq!(
        claimed.load(Ordering::SeqCst),
        TASKS as u64,
        "every task claimed exactly once"
    );
    assert_eq!(queue.quiescent_len(), 0);
    queue.check_invariants().expect("queue consistent");
    println!(
        "{WORKERS} workers claimed all {TASKS} tasks exactly once ({} local reorderings from racing claims)",
        out_of_order.load(Ordering::Relaxed)
    );
    println!("priority scheduler done — ordered dictionary semantics verified under races.");
}
