//! Crash-failure tolerance, narrated: operations "die" mid-update holding
//! their flags, and other threads transparently finish their work.
//!
//! This is the paper's central robustness claim made tangible: the flag
//! is a lock, but "an operation that acquires a lock always leaves a key
//! to the lock under the doormat" (Section 3) — the Info record — so no
//! crash can wedge the structure.
//!
//! ```bash
//! cargo run --example crash_tolerance
//! ```

use nbbst::core::raw::{MarkOutcome, RawDelete, RawInsert};
use nbbst::{ConcurrentMap, NbBst, State};

fn main() {
    let tree: NbBst<u64, u64> = NbBst::with_stats();
    for k in [10u64, 20, 30, 40] {
        tree.insert(k, k);
    }
    println!("initial tree:\n{}", tree.render());

    // --- crash an insert right after its iflag CAS -------------------
    println!("thread A starts Insert(25) ... and crashes after its iflag CAS:");
    let mut ins = RawInsert::new(&tree, 25, 25);
    assert!(ins.search().is_ready());
    assert!(ins.flag());
    ins.abandon(); // thread A is gone forever
    println!("{}", tree.render()); // one internal shows IFlag

    println!("thread B now runs Insert(26), whose path crosses the dead flag...");
    assert!(tree.insert(26, 26));
    println!("B helped A's insert to completion before doing its own:");
    println!(
        "  contains(25) = {} (A's insert, finished by B)",
        tree.contains(&25)
    );
    println!("  contains(26) = {} (B's own insert)", tree.contains(&26));
    assert!(tree.contains(&25) && tree.contains(&26));

    // --- crash a delete between its mark CAS and its child CAS -------
    println!("\nthread C starts Delete(30) ... and crashes after marking the parent:");
    let mut del = RawDelete::new(&tree, 30);
    assert!(del.search().is_ready());
    assert!(del.flag());
    assert_eq!(del.mark(), MarkOutcome::Marked);
    del.abandon(); // thread C is gone; a node is permanently marked
    println!("{}", tree.render()); // shows DFlag + Mark

    println!("thread D runs Insert(31) through the marked region...");
    assert!(tree.insert(31, 31));
    println!("D completed C's deletion first:");
    println!(
        "  contains(30) = {} (C's delete, finished by D)",
        tree.contains(&30)
    );
    println!("  contains(31) = {} (D's own insert)", tree.contains(&31));
    assert!(!tree.contains(&30) && tree.contains(&31));

    // Everything is Clean again and the circuits balance.
    for k in [10u64, 20, 25, 26, 31, 40] {
        if let Some(state) = tree.state_of_internal(&k) {
            assert_eq!(state, State::Clean);
        }
    }
    tree.check_invariants().expect("invariants");
    let stats = tree.stats().expect("stats");
    println!("\nhelping activity: {} Help() dispatches", stats.helps);
    println!("final tree:\n{}", tree.render());
    println!("no thread ever waited on the crashed ones — that is lock-freedom.");
}
