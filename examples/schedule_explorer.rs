//! Schedule explorer: step two conflicting operations one CAS at a time
//! and watch the update words change — a guided tour of Figures 4 and 5.
//!
//! ```bash
//! cargo run --example schedule_explorer
//! ```

use nbbst::core::raw::{MarkOutcome, RawDelete, RawInsert};
use nbbst::NbBst;

fn show(title: &str, tree: &NbBst<u64, u64>) {
    println!("--- {title} ---");
    println!("{}", tree.render());
}

fn main() {
    let tree: NbBst<u64, u64> = NbBst::new();
    for k in [10u64, 30, 50] {
        tree.insert_entry(k, k).unwrap();
    }
    show("initial tree (keys 10, 30, 50)", &tree);

    println!("[Delete(50)] Search finds leaf 50, parent and grandparent.");
    let mut del = RawDelete::new(&tree, 50);
    assert!(del.search().is_ready());

    println!("[Delete(50)] dflag CAS: grandparent Clean -> DFlag, publishing a DInfo record.");
    assert!(del.flag());
    show("after dflag", &tree);

    println!("[Insert(60)] Search finds leaf 50's replacement point; parent is Clean.");
    let mut ins = RawInsert::new(&tree, 60, 60);
    assert!(ins.search().is_ready());

    println!("[Insert(60)] iflag CAS: parent Clean -> IFlag, publishing an IInfo record.");
    assert!(ins.flag());
    show(
        "after iflag — this is the paper's Figure 5 configuration",
        &tree,
    );

    println!("[Insert(60)] ichild CAS: the leaf becomes a three-node subtree (Figure 1).");
    assert!(ins.execute_child());
    show("after ichild", &tree);

    println!("[Insert(60)] iunflag CAS: parent IFlag -> Clean. Insert done.");
    assert!(ins.unflag());
    show("after iunflag", &tree);
    drop(ins);

    println!("[Delete(50)] mark CAS: FAILS — the parent's update word changed since Search.");
    assert_eq!(del.mark(), MarkOutcome::Failed);

    println!("[Delete(50)] backtrack CAS: grandparent DFlag -> Clean; the delete retries.");
    assert!(del.backtrack());
    show(
        "after backtrack (tree unchanged by the failed delete)",
        &tree,
    );

    println!("[Delete(50)] retry: Search, dflag, mark, dchild, dunflag.");
    assert!(del.search().is_ready());
    assert!(del.flag());
    assert_eq!(del.mark(), MarkOutcome::Marked);
    show("after mark — the parent is frozen forever", &tree);
    assert!(del.execute_child());
    assert!(del.unflag());
    show(
        "final tree: 50 deleted, 60 (inserted concurrently) survives",
        &tree,
    );

    assert!(!tree.contains_key(&50));
    assert!(tree.contains_key(&60));
    tree.check_invariants().unwrap();
    println!("every state you saw is a vertex of Figure 4; every step an edge.");
}
