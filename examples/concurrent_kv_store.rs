//! A concurrent key-value session store built on the EFRB tree.
//!
//! Models the workload the paper's introduction motivates: a dictionary
//! hammered by many threads with a read-mostly mix, where update
//! operations must never block readers (or each other, when they touch
//! different keys). Prints live throughput and the tree's CAS/helping
//! statistics.
//!
//! ```bash
//! cargo run --release --example concurrent_kv_store
//! ```

use nbbst::harness::{prefill, run_for, validate_after_run, WorkloadSpec};
use nbbst::NbBst;
use std::time::Duration;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);

    // 64k sessions, half resident; 90% lookups, 5% logins, 5% logouts.
    let spec = WorkloadSpec::read_heavy(1 << 16);
    let store: NbBst<u64, u64> = NbBst::with_stats();

    println!("prefilling {} sessions...", (1 << 16) / 2);
    prefill(&store, &spec);

    println!("running {spec} on {threads} threads for 2s...");
    let result = run_for(&store, &spec, threads, Duration::from_secs(2));

    println!();
    println!(
        "throughput: {:.3} Mops/s ({} ops)",
        result.mops(),
        result.total_ops
    );
    println!(
        "fairness (slowest/fastest worker): {:.2}",
        result.fairness()
    );
    println!(
        "latency: p50={}ns p99={}ns p99.9={}ns max={}ns",
        result.latency.percentile(50.0),
        result.latency.percentile(99.0),
        result.latency.percentile(99.9),
        result.latency.max()
    );
    println!(
        "successful logins: {}, successful logouts: {}",
        result.successful_inserts, result.successful_deletes
    );

    // Exact accounting: prefill + successful inserts - successful deletes
    // must equal the final size, and membership must agree with it.
    validate_after_run(&store, &spec, &result).expect("store consistent");
    store.check_invariants().expect("tree invariants");

    let stats = store.stats().expect("stats enabled");
    stats.check_figure4().expect("CAS circuits balanced");
    println!();
    println!("EFRB protocol activity during the run:");
    println!(
        "  insert circuits (iflag=ichild=iunflag): {}",
        stats.iflag_success
    );
    println!(
        "  delete circuits: {} completed, {} backtracked",
        stats.mark_success, stats.backtrack_success
    );
    println!(
        "  helping: {} times ({:.6} per update) — conservative, as designed",
        stats.helps,
        stats.helps_per_update()
    );
    println!(
        "  reclamation: {} nodes + {} info records retired to the epoch collector",
        stats.nodes_retired, stats.infos_retired
    );
    let rs = store.collector().stats();
    println!(
        "  collector: {} retired, {} freed, epoch {}",
        rs.retired, rs.freed, rs.global_epoch
    );
}
