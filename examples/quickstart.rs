//! Quickstart: the EFRB non-blocking BST as an ordered concurrent map.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use nbbst::{ConcurrentMap, NbBst};

fn main() {
    // A lock-free dictionary. Keys need `Ord + Clone`, values `Clone`.
    let tree: NbBst<u64, String> = NbBst::new();

    // The paper's three operations: Insert, Delete (remove), Find
    // (contains/get). Duplicate inserts are rejected, not overwritten.
    assert!(tree.insert(3, "three".to_string()));
    assert!(tree.insert(1, "one".to_string()));
    assert!(tree.insert(2, "two".to_string()));
    assert!(!tree.insert(2, "TWO".to_string()));
    assert_eq!(tree.get(&2).as_deref(), Some("two"));

    assert!(tree.remove(&1));
    assert!(!tree.contains(&1));

    // `insert_entry` hands the key/value back on duplicates, so non-`Copy`
    // values are never lost:
    let dup = tree.insert_entry(2, "deux".to_string());
    let (k, v) = dup.unwrap_err();
    println!("duplicate insert returned our inputs: key={k}, value={v:?}");

    // Share the tree by reference across threads — every operation takes
    // `&self` and the structure is lock-free.
    let tree2: NbBst<u64, u64> = NbBst::new();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tree2 = &tree2;
            s.spawn(move || {
                for i in 0..1_000u64 {
                    // Shuffled keys: like all plain BSTs, the tree is
                    // logarithmic for random insertion orders but
                    // degenerates on sorted ones (balancing is the paper's
                    // future work).
                    let k = (i * 2_654_435_761) % 4_096;
                    tree2.insert(t * 4_096 + k, i);
                }
            });
        }
    });
    println!("4 threads inserted {} distinct keys", tree2.quiescent_len());

    // Weakly-consistent whole-tree views for inspection and debugging:
    println!("smallest five keys: {:?}", &tree2.keys_snapshot()[..5]);
    println!(
        "tree height: {} (≈ 2·log2(n) expected for random fills)",
        tree2.height()
    );
    tree2.check_invariants().expect("structural invariants");
    println!("done — see examples/concurrent_kv_store.rs for a realistic workload.");
}
