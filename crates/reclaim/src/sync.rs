//! Classic lock-free containers built on the epoch substrate.
//!
//! These exist for two reasons: they are the standard end-to-end proof
//! that a reclamation substrate is sound (nodes allocated by one thread,
//! unlinked and retired by another, under contention), and the workspace's
//! experiments use them as auxiliary infrastructure. Both are textbook
//! algorithms:
//!
//! * [`TreiberStack`] — Treiber's stack (1986): push/pop via head CAS.
//! * [`MsQueue`] — the Michael–Scott queue (1996): the two-pointer
//!   lock-free FIFO with helping on the lagging tail — helping being the
//!   same idea the EFRB tree's Info records generalize.

use crate::{unprotected, Atomic, Collector, Owned, Shared};
use std::fmt;
use std::sync::atomic::Ordering;

// Memory orderings are chosen per site (no blanket SeqCst): `Acquire` on
// loads whose pointee is dereferenced (synchronizes with the `Release`
// CAS that published the node), `Release`/`AcqRel` on publishing/
// unlinking CASes, `Relaxed` where the loaded pointer is only used as a
// CAS expected value, for pre-publication initialization, or under
// exclusive access (`Drop`). See DESIGN.md "Memory orderings".

struct StackNode<T> {
    value: Option<T>,
    next: Atomic<StackNode<T>>,
}

/// A lock-free LIFO stack.
///
/// # Examples
///
/// ```
/// use nbbst_reclaim::sync::TreiberStack;
///
/// let s = TreiberStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct TreiberStack<T> {
    head: Atomic<StackNode<T>>,
    collector: Collector,
}

// SAFETY: the stack owns its `T`s; all shared mutation goes through the
// atomic head and the collector's deferred reclamation, so sending or
// sharing the stack is safe whenever `T: Send`.
unsafe impl<T: Send> Send for TreiberStack<T> {}
// SAFETY: as above — `&TreiberStack` exposes only lock-free operations.
unsafe impl<T: Send> Sync for TreiberStack<T> {}

impl<T> TreiberStack<T> {
    /// Creates an empty stack.
    pub fn new() -> TreiberStack<T> {
        TreiberStack {
            head: Atomic::null(),
            collector: Collector::new(),
        }
    }

    /// Pushes `value`.
    pub fn push(&self, value: T) {
        let guard = self.collector.pin();
        let mut node = Owned::new(StackNode {
            value: Some(value),
            next: Atomic::null(),
        });
        loop {
            // Not dereferenced — only re-published via the CAS below.
            let head = self.head.load(Ordering::Relaxed, &guard);
            // Pre-publication store into the still-private node.
            node.next.store(head, Ordering::Relaxed);
            // Release publishes the node's initialization to acquiring
            // readers; a failed attempt learns nothing it dereferences.
            match self.head.compare_exchange(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
                &guard,
            ) {
                Ok(_) => return,
                Err(e) => node = e.new,
            }
        }
    }

    /// Pops the most recently pushed value, if any.
    pub fn pop(&self) -> Option<T> {
        let guard = self.collector.pin();
        loop {
            // Acquire: we dereference the node, so we must observe the
            // initialization released by the push that installed it.
            let head = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: protected by the guard.
            let node = unsafe { head.as_ref() }?;
            let next = node.next.load(Ordering::Acquire, &guard);
            // AcqRel: unlinking both publishes `next` as the new head and
            // orders the value read below after a successful unlink.
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed, &guard)
                .is_ok()
            {
                // SAFETY: we unlinked `head`; unique access to its value
                // slot (no other thread can pop it again) and unique
                // retirement. Reading the value via a raw pointer before
                // retiring keeps `T` un-cloned.
                let value = unsafe { (*(head.as_raw() as *mut StackNode<T>)).value.take() };
                unsafe { guard.defer_destroy(head) };
                return value;
            }
        }
    }

    /// `true` iff the stack has no elements (at the instant of the load).
    pub fn is_empty(&self) -> bool {
        let guard = self.collector.pin();
        // Null-check only, never dereferenced.
        self.head.load(Ordering::Relaxed, &guard).is_null()
    }
}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        TreiberStack::new()
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access at teardown.
        let guard = unsafe { unprotected() };
        // Relaxed: `&mut self` proves exclusive access at teardown.
        let mut cur = self.head.load(Ordering::Relaxed, &guard);
        while !cur.is_null() {
            // SAFETY: exclusive access; each node is freed exactly once.
            let node = unsafe { Box::from_raw(cur.as_raw() as *mut StackNode<T>) };
            cur = node.next.load(Ordering::Relaxed, &guard);
        }
    }
}

impl<T> fmt::Debug for TreiberStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TreiberStack")
    }
}

struct QueueNode<T> {
    value: Option<T>,
    next: Atomic<QueueNode<T>>,
}

/// A lock-free multi-producer multi-consumer FIFO queue (Michael–Scott).
///
/// # Examples
///
/// ```
/// use nbbst_reclaim::sync::MsQueue;
///
/// let q = MsQueue::new();
/// q.push(1);
/// q.push(2);
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
pub struct MsQueue<T> {
    head: Atomic<QueueNode<T>>,
    tail: Atomic<QueueNode<T>>,
    collector: Collector,
}

// SAFETY: same argument as for `TreiberStack` — the queue owns its `T`s
// and all shared mutation is lock-free through the collector.
unsafe impl<T: Send> Send for MsQueue<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T> MsQueue<T> {
    /// Creates an empty queue (head and tail share a dummy node).
    pub fn new() -> MsQueue<T> {
        let collector = Collector::new();
        let q = MsQueue {
            head: Atomic::null(),
            tail: Atomic::null(),
            collector: collector.clone(),
        };
        let guard = collector.pin();
        let dummy = Owned::new(QueueNode {
            value: None,
            next: Atomic::null(),
        })
        .into_shared(&guard);
        // Pre-publication: the queue itself is not yet shared.
        q.head.store(dummy, Ordering::Relaxed);
        q.tail.store(dummy, Ordering::Relaxed);
        drop(guard);
        q
    }

    /// Appends `value` at the tail.
    pub fn push(&self, value: T) {
        let guard = self.collector.pin();
        let mut new = Owned::new(QueueNode {
            value: Some(value),
            next: Atomic::null(),
        });
        loop {
            // Acquire: dereferenced below.
            let tail = self.tail.load(Ordering::Acquire, &guard);
            // SAFETY: tail is never null; guard-protected.
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Ordering::Acquire, &guard);
            if !next.is_null() {
                // Help the lagging tail forward, then retry. Release keeps
                // the helped pointer a publication edge for later readers.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
                continue;
            }
            // Release publishes the new node's initialization (this CAS is
            // the queue's linearization point for push).
            match tail_ref.next.compare_exchange(
                Shared::null(),
                new,
                Ordering::Release,
                Ordering::Relaxed,
                &guard,
            ) {
                Ok(installed) => {
                    let _ = self.tail.compare_exchange(
                        tail,
                        installed,
                        Ordering::Release,
                        Ordering::Relaxed,
                        &guard,
                    );
                    return;
                }
                Err(e) => new = e.new,
            }
        }
    }

    /// Removes the oldest value, if any.
    pub fn pop(&self) -> Option<T> {
        let guard = self.collector.pin();
        loop {
            // Acquire on both hops: `head` and `next` are dereferenced
            // (the value moves out of `next`).
            let head = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: head is never null (dummy node); guard-protected.
            let head_ref = unsafe { head.deref() };
            let next = head_ref.next.load(Ordering::Acquire, &guard);
            if next.is_null() {
                return None;
            }
            // AcqRel: unlink + publish `next` as the new dummy.
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed, &guard)
                .is_ok()
            {
                // The popped node (`next`) becomes the new dummy; its value
                // moves out. SAFETY: winning the head CAS gives us unique
                // ownership of the value slot, and the old dummy's unique
                // retirement.
                let value = unsafe { (*(next.as_raw() as *mut QueueNode<T>)).value.take() };
                unsafe { guard.defer_destroy(head) };
                debug_assert!(value.is_some(), "non-dummy queue nodes carry values");
                return value;
            }
        }
    }

    /// `true` iff the queue has no elements (at the instant of the loads).
    pub fn is_empty(&self) -> bool {
        let guard = self.collector.pin();
        // Acquire: the dummy is dereferenced; its `next` is only
        // null-checked.
        let head = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: head is never null (dummy node); guard-protected.
        unsafe { head.deref() }
            .next
            .load(Ordering::Relaxed, &guard)
            .is_null()
    }
}

impl<T> Default for MsQueue<T> {
    fn default() -> Self {
        MsQueue::new()
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive at teardown.
        let guard = unsafe { unprotected() };
        // Relaxed: `&mut self` proves exclusive access at teardown.
        let mut cur = self.head.load(Ordering::Relaxed, &guard);
        while !cur.is_null() {
            // SAFETY: exclusive access; each node is freed exactly once.
            let node = unsafe { Box::from_raw(cur.as_raw() as *mut QueueNode<T>) };
            cur = node.next.load(Ordering::Relaxed, &guard);
        }
    }
}

impl<T> fmt::Debug for MsQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MsQueue")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn stack_lifo_order() {
        let s = TreiberStack::new();
        assert!(s.is_empty());
        for i in 0..50 {
            s.push(i);
        }
        for i in (0..50).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn stack_concurrent_push_pop_conserves_elements() {
        let s = Arc::new(TreiberStack::new());
        let popped = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let s = s.clone();
                let popped = popped.clone();
                scope.spawn(move || {
                    for i in 0..2_000 {
                        s.push(t * 10_000 + i);
                        if s.pop().is_some() {
                            popped.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        let mut residual = 0;
        while s.pop().is_some() {
            residual += 1;
        }
        assert_eq!(popped.load(Ordering::SeqCst) + residual, 8_000);
    }

    #[test]
    fn stack_drop_with_contents_frees() {
        let s = TreiberStack::new();
        for i in 0..100 {
            s.push(vec![i; 4]);
        }
        drop(s); // allocator-checked
    }

    #[test]
    fn queue_fifo_order() {
        let q = MsQueue::new();
        assert!(q.is_empty());
        for i in 0..50 {
            q.push(i);
        }
        assert!(!q.is_empty());
        for i in 0..50 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_values_never_lost_or_duplicated() {
        let q = Arc::new(MsQueue::new());
        let sum = Arc::new(AtomicUsize::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        const N: usize = 4_000;
        std::thread::scope(|scope| {
            for t in 0..2usize {
                let q = q.clone();
                scope.spawn(move || {
                    for i in 0..N / 2 {
                        q.push(t * (N / 2) + i + 1);
                    }
                });
            }
            for _ in 0..2 {
                let q = q.clone();
                let sum = sum.clone();
                let count = count.clone();
                scope.spawn(move || {
                    while count.load(Ordering::SeqCst) < N {
                        if let Some(v) = q.pop() {
                            sum.fetch_add(v, Ordering::SeqCst);
                            count.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), N * (N + 1) / 2);
    }

    #[test]
    fn queue_drop_with_contents_frees() {
        let q = MsQueue::new();
        for i in 0..100 {
            q.push(format!("item {i}"));
        }
        drop(q);
    }
}
