//! Tagged atomic pointers for epoch-protected data structures.
//!
//! [`Atomic<T>`] is a nullable atomic pointer to a heap-allocated `T` whose
//! unused low-order bits (guaranteed zero by `T`'s alignment) can carry a
//! small integer *tag*. This is exactly the representation the paper relies
//! on for its `Update` word: "in typical word architectures, if items stored
//! in memory are word-aligned, the two lowest-order bits of a pointer can be
//! used to store the state" (Section 3).
//!
//! Loaded values are [`Shared<'g, T>`] — copies of the pointer whose
//! lifetime is tied to a pin [`Guard`], which is what makes dereferencing
//! them sound: the collector will not free the pointee while the guard
//! lives.

use crate::primitives::{AtomicUsize, Ordering};
use crate::Guard;
use std::fmt;
use std::marker::PhantomData;

/// Number of low bits of a `*mut T` that are always zero, and therefore
/// available for tags.
pub const fn low_bits<T>() -> usize {
    std::mem::align_of::<T>() - 1
}

#[inline]
fn compose<T>(raw: *const T, tag: usize) -> usize {
    debug_assert_eq!(raw as usize & low_bits::<T>(), 0, "misaligned pointer");
    (raw as usize) | (tag & low_bits::<T>())
}

#[inline]
fn decompose<T>(data: usize) -> (*mut T, usize) {
    ((data & !low_bits::<T>()) as *mut T, data & low_bits::<T>())
}

/// An owned, heap-allocated `T` that has not yet been published to shared
/// memory.
///
/// Analogous to `Box<T>` plus a tag. Convert to a [`Shared`] with
/// [`Owned::into_shared`] when installing into an [`Atomic`].
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap with tag `0`.
    pub fn new(value: T) -> Owned<T> {
        let raw = Box::into_raw(Box::new(value));
        Owned {
            data: compose(raw, 0),
            _marker: PhantomData,
        }
    }

    /// Returns the tag.
    pub fn tag(&self) -> usize {
        decompose::<T>(self.data).1
    }

    /// Returns the same allocation with the tag replaced by `tag`
    /// (truncated to the available [`low_bits`]).
    pub fn with_tag(self, tag: usize) -> Owned<T> {
        let (raw, _) = decompose::<T>(self.data);
        let data = compose(raw, tag);
        std::mem::forget(self);
        Owned {
            data,
            _marker: PhantomData,
        }
    }

    /// Publishes the allocation, yielding a [`Shared`] valid for the guard's
    /// lifetime. The allocation is leaked unless subsequently reachable from
    /// the data structure (or reclaimed via [`Guard::defer_destroy`]).
    pub fn into_shared(self, _guard: &Guard) -> Shared<'_, T> {
        let data = self.data;
        std::mem::forget(self);
        Shared {
            data,
            _marker: PhantomData,
        }
    }

    /// Consumes the box and returns the raw tagged pointer value.
    fn into_data(self) -> usize {
        let data = self.data;
        std::mem::forget(self);
        data
    }

    /// The untagged raw pointer.
    pub fn as_raw(&self) -> *mut T {
        decompose::<T>(self.data).0
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: `Owned` uniquely owns a live allocation.
        unsafe { &*self.as_raw() }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: `Owned` uniquely owns a live allocation.
        unsafe { &mut *self.as_raw() }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let (raw, _) = decompose::<T>(self.data);
        // SAFETY: `Owned` uniquely owns the allocation; it was produced by
        // `Box::into_raw` in `Owned::new`.
        unsafe { drop(Box::from_raw(raw)) }
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Owned")
            .field("tag", &self.tag())
            .field("value", &**self)
            .finish()
    }
}

/// A tagged pointer loaded from an [`Atomic`], valid while the guard `'g`
/// is alive.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer with tag `0`.
    pub fn null() -> Shared<'g, T> {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Reconstructs a `Shared` from a raw tagged-pointer word.
    ///
    /// # Safety
    ///
    /// `data` must have been obtained from [`Shared::into_data`] (or be a
    /// valid tagged pointer for `T`) and the pointee must still be protected
    /// by the current guard.
    pub unsafe fn from_data(data: usize) -> Shared<'g, T> {
        Shared {
            data,
            _marker: PhantomData,
        }
    }

    /// The raw tagged word (pointer bits plus tag bits).
    pub fn into_data(self) -> usize {
        self.data
    }

    /// The untagged raw pointer.
    pub fn as_raw(&self) -> *const T {
        decompose::<T>(self.data).0
    }

    /// Returns `true` iff the pointer (ignoring tag bits) is null.
    pub fn is_null(&self) -> bool {
        self.as_raw().is_null()
    }

    /// The tag carried in the low bits.
    pub fn tag(&self) -> usize {
        decompose::<T>(self.data).1
    }

    /// The same pointer with the tag replaced by `tag`.
    pub fn with_tag(&self, tag: usize) -> Shared<'g, T> {
        let (raw, _) = decompose::<T>(self.data);
        Shared {
            data: compose(raw, tag),
            _marker: PhantomData,
        }
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and point to an object that is alive for
    /// `'g` — i.e. it was loaded from a reachable `Atomic` under the guard
    /// associated with `'g`, and can only have been retired (not yet freed)
    /// since.
    pub unsafe fn deref(&self) -> &'g T {
        &*self.as_raw()
    }

    /// Dereferences the pointer, returning `None` if null.
    ///
    /// # Safety
    ///
    /// Same conditions as [`Shared::deref`] when non-null.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        self.as_raw().as_ref()
    }

    /// Takes back ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must be the unique owner: the pointer must no longer be
    /// reachable by any thread (e.g. during single-threaded teardown).
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null(), "into_owned on null Shared");
        Owned {
            data: self.data,
            _marker: PhantomData,
        }
    }

    /// Pointer equality including tags.
    pub fn ptr_eq(&self, other: &Shared<'_, T>) -> bool {
        self.data == other.data
    }
}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (raw, tag) = decompose::<T>(self.data);
        f.debug_struct("Shared")
            .field("raw", &raw)
            .field("tag", &tag)
            .finish()
    }
}

/// The error returned by a failed [`Atomic::compare_exchange`], carrying the
/// value actually found and the ownership of the value we tried to install.
pub struct CompareExchangeError<'g, T, N> {
    /// The value the atomic held at the time of the failed exchange.
    pub current: Shared<'g, T>,
    /// The new value that was not installed, returned to the caller.
    pub new: N,
}

impl<T, N> fmt::Debug for CompareExchangeError<'_, T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompareExchangeError")
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

/// Types that can be atomically installed into an [`Atomic<T>`]:
/// [`Owned<T>`] (transfers ownership) and [`Shared<'g, T>`] (copies a
/// pointer already published).
pub trait Pointer<T> {
    /// The raw tagged word to store.
    fn into_data(self) -> usize;
    /// Rebuilds `Self` from a word previously produced by
    /// [`Pointer::into_data`] (used to hand a failed CAS's `new` back).
    ///
    /// # Safety
    ///
    /// `data` must come from `into_data` of the same concrete type.
    unsafe fn from_data(data: usize) -> Self;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_data(self) -> usize {
        Owned::into_data(self)
    }
    // SAFETY: trait contract — `data` came from `Owned::into_data`, so it
    // is a uniquely-owned heap pointer (plus tag) of the right type.
    unsafe fn from_data(data: usize) -> Self {
        Owned {
            data,
            _marker: PhantomData,
        }
    }
}

impl<'g, T> Pointer<T> for Shared<'g, T> {
    fn into_data(self) -> usize {
        self.data
    }
    // SAFETY: trait contract — `data` came from `Shared::into_data`, so the
    // borrowed word is valid for the guard lifetime it is rebuilt under.
    unsafe fn from_data(data: usize) -> Self {
        Shared {
            data,
            _marker: PhantomData,
        }
    }
}

/// A nullable atomic tagged pointer to a heap-allocated `T`.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: `Atomic<T>` hands out only `Shared` pointers whose dereference is
// `unsafe` and guard-protected; sharing the word itself across threads is
// safe exactly when `T` can be sent/shared.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null pointer (tag `0`).
    pub const fn null() -> Atomic<T> {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Allocates `value` and stores a pointer to it.
    pub fn new(value: T) -> Atomic<T> {
        Atomic::from(Owned::new(value))
    }

    /// Loads the current tagged pointer.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            data: self.data.load(ord),
            _marker: PhantomData,
        }
    }

    /// Stores a new tagged pointer.
    ///
    /// Prefer [`Atomic::compare_exchange`] on shared hot paths; plain
    /// `store` is for initialization and teardown.
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.data.store(new.into_data(), ord);
    }

    /// Single-word CAS: installs `new` iff the word still equals `current`
    /// (pointer and tag).
    ///
    /// On failure the actually-found value and ownership of `new` are
    /// returned in the error, matching the paper's CAS which "always returns
    /// the value the object had prior to the operation".
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_data();
        match self
            .data
            .compare_exchange(current.data, new_data, success, failure)
        {
            Ok(_) => Ok(Shared {
                data: new_data,
                _marker: PhantomData,
            }),
            Err(found) => Err(CompareExchangeError {
                current: Shared {
                    data: found,
                    _marker: PhantomData,
                },
                // SAFETY: `new_data` came from `new.into_data()` above.
                new: unsafe { P::from_data(new_data) },
            }),
        }
    }

    /// Consumes the atomic and takes ownership of the pointee.
    ///
    /// # Safety
    ///
    /// The caller must have unique access (no other thread can observe the
    /// atomic) and the pointer must be non-null.
    pub unsafe fn into_owned(self) -> Owned<T> {
        let data = self.data.into_inner();
        debug_assert_ne!(decompose::<T>(data).0, std::ptr::null_mut());
        Owned {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Atomic {
            data: AtomicUsize::new(owned.into_data()),
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (raw, tag) = decompose::<T>(self.data.load(Ordering::Relaxed));
        f.debug_struct("Atomic")
            .field("raw", &raw)
            .field("tag", &tag)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    #[test]
    fn low_bits_reflect_alignment() {
        assert_eq!(low_bits::<u64>(), 7);
        assert_eq!(low_bits::<u32>(), 3);
        assert_eq!(low_bits::<u16>(), 1);
        assert_eq!(low_bits::<u8>(), 0);
    }

    #[test]
    fn owned_tag_roundtrip() {
        let o = Owned::new(42u64).with_tag(5);
        assert_eq!(o.tag(), 5);
        assert_eq!(*o, 42);
        let o = o.with_tag(0);
        assert_eq!(o.tag(), 0);
    }

    #[test]
    fn tag_is_truncated_to_alignment() {
        // u64 has 3 tag bits: tag 9 == 0b1001 truncates to 0b001.
        let o = Owned::new(1u64).with_tag(9);
        assert_eq!(o.tag(), 1);
    }

    #[test]
    fn load_store_cas_roundtrip() {
        let collector = Collector::new();
        let handle = collector.register();
        let guard = handle.pin();

        let a = Atomic::new(1u64);
        let one = a.load(Ordering::SeqCst, &guard);
        assert_eq!(unsafe { *one.deref() }, 1);

        let two = Owned::new(2u64);
        let installed = a
            .compare_exchange(one, two, Ordering::SeqCst, Ordering::SeqCst, &guard)
            .unwrap();
        assert_eq!(unsafe { *installed.deref() }, 2);
        unsafe { guard.defer_destroy(one) };

        // Failed CAS returns the found value and gives `new` back.
        let three = Owned::new(3u64);
        let err = a
            .compare_exchange(one, three, Ordering::SeqCst, Ordering::SeqCst, &guard)
            .unwrap_err();
        assert!(err.current.ptr_eq(&installed));
        assert_eq!(*err.new, 3);

        drop(guard);
        unsafe { drop(a.into_owned()) };
    }

    #[test]
    fn null_checks_ignore_tags() {
        let s = Shared::<u64>::null().with_tag(3);
        assert!(s.is_null());
        assert_eq!(s.tag(), 3);
        assert!(unsafe { s.as_ref() }.is_none());
    }

    #[test]
    fn shared_data_roundtrip_preserves_pointer_and_tag() {
        let collector = Collector::new();
        let handle = collector.register();
        let guard = handle.pin();
        let a = Atomic::new(7u64);
        let s = a.load(Ordering::SeqCst, &guard).with_tag(2);
        let d = s.into_data();
        let s2 = unsafe { Shared::<u64>::from_data(d) };
        assert!(s.ptr_eq(&s2));
        assert_eq!(s2.tag(), 2);
        drop(guard);
        unsafe { drop(a.into_owned()) };
    }
}
