//! The cfg-gated concurrency-primitive facade.
//!
//! Every protocol-relevant atomic, fence, and thread-yield in this
//! crate goes through these re-exports instead of naming `std::sync`
//! directly. A normal build is a zero-cost passthrough to `std`; building
//! with `RUSTFLAGS="--cfg loom"` swaps in the `loom` model checker's
//! primitives, which turn every operation into a scheduling point so the
//! `loom_protocol` tests in `nbbst-core` can exhaustively explore
//! interleavings of the EFRB flag/mark protocol **together with** the
//! epoch-reclamation machinery underneath it.
//!
//! Two deliberate exclusions:
//!
//! * `Ordering` is always `std`'s type (loom re-exports it), so call
//!   sites annotate real orderings either way.
//! * Pure instrumentation counters (`ReclaimStats`, `TreeStats` in
//!   `nbbst-core`) stay on `std` atomics even under loom: they are never
//!   used for synchronization, and excluding them keeps the model's
//!   schedule space focused on protocol steps. Anything that *is*
//!   synchronization must use this module.

// (Since the evictable-bag registry replaced the orphan mutex, the crate is
// fully lock-free and no `Mutex` re-export is needed.)

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize};
#[cfg(not(loom))]
pub(crate) use std::thread::yield_now;

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize};
#[cfg(loom)]
pub(crate) use loom::thread::yield_now;

pub(crate) use std::sync::atomic::Ordering;
