//! Epoch-based reclamation (EBR).
//!
//! The paper assumes a garbage-collected environment: "it would be more
//! practical to reallocate the memory locations that are no longer in use.
//! Such a scheme should not introduce any problems, as long as a memory
//! location is not reallocated while any process could reach that location
//! by following a chain of pointers" (Section 4.1). This module provides
//! exactly that guarantee, with the classic three-epoch scheme (Fraser's
//! thesis; the protocol here mirrors `crossbeam-epoch`, reimplemented from
//! scratch):
//!
//! * A [`Collector`] owns a global epoch counter and a registry of
//!   *participants* (one per `(thread, collector)` pair).
//! * Before touching shared pointers a thread *pins* itself ([`Guard`]),
//!   publishing the epoch it observed.
//! * Removed objects are *retired* ([`Guard::defer_destroy`]) into a bag
//!   sealed with the retiring thread's pinned epoch `e`.
//! * The global epoch advances from `E` to `E+1` only when every pinned
//!   participant has observed `E`; hence pinned participants always sit at
//!   `E` or `E-1`, and a bag sealed at epoch `e` is freed once the global
//!   epoch reaches `e + 2` — by which point no thread that could have
//!   observed a pointer into the bag is still pinned.
//!
//! Why this discharges the paper's ABA obligations is argued in DESIGN.md
//! §2: every read-then-CAS of a tree word happens under a single guard, and
//! no address can be freed (hence recycled, hence made to repeat an old word
//! value) while a guard that observed it is live.

use crate::deferred::Deferred;
use crate::primitives::{fence, AtomicBool, AtomicPtr, AtomicU64, Mutex, Ordering};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
// Instrumentation-only counters bypass the loom facade on purpose: they
// never synchronize anything (see primitives.rs).
use std::sync::atomic::{AtomicU64 as CounterU64, AtomicUsize as CounterUsize};
use std::sync::Arc;

/// How many pins between housekeeping passes (epoch-advance attempt plus
/// local/orphan collection).
const PINS_BETWEEN_COLLECT: u64 = 32;

/// How many retirements force an early housekeeping pass.
const DEFERS_BETWEEN_COLLECT: usize = 64;

/// One registered `(thread, collector)` slot in the global participant list.
///
/// `state` is `0` when not pinned, else `(epoch << 1) | 1`.
struct Participant {
    state: AtomicU64,
    claimed: AtomicBool,
    next: AtomicPtr<Participant>,
}

impl Participant {
    const UNPINNED: u64 = 0;

    fn pinned_state(epoch: u64) -> u64 {
        (epoch << 1) | 1
    }

    fn decode(state: u64) -> Option<u64> {
        if state & 1 == 1 {
            Some(state >> 1)
        } else {
            None
        }
    }
}

/// A bag of retirements sealed with the epoch at which they were retired.
struct Bag {
    epoch: u64,
    items: Vec<Deferred>,
}

/// Counters describing reclamation activity; see [`Collector::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReclaimStats {
    /// Objects handed to `defer_destroy` so far.
    pub retired: u64,
    /// Objects whose destructor has actually run.
    pub freed: u64,
    /// Successful global epoch advances.
    pub epoch_advances: u64,
    /// Current global epoch.
    pub global_epoch: u64,
    /// Objects currently waiting in orphaned (exited-thread) bags.
    pub orphaned: u64,
}

/// Shared collector state.
struct Global {
    epoch: AtomicU64,
    participants: AtomicPtr<Participant>,
    /// Garbage abandoned by exiting threads, still awaiting its epoch.
    orphans: Mutex<Vec<Bag>>,
    /// Number of live `Collector` clones (not handles); when it reaches
    /// zero, cached thread-local handles know to retire themselves.
    collectors: CounterUsize,
    /// Leak instead of freeing (the paper's "always allocate fresh
    /// memory" model); for ablation experiments only.
    leaky: bool,
    retired: CounterU64,
    freed: CounterU64,
    advances: CounterU64,
}

impl Global {
    fn new(leaky: bool) -> Global {
        Global {
            epoch: AtomicU64::new(0),
            participants: AtomicPtr::new(std::ptr::null_mut()),
            orphans: Mutex::new(Vec::new()),
            collectors: CounterUsize::new(1),
            leaky,
            retired: CounterU64::new(0),
            freed: CounterU64::new(0),
            advances: CounterU64::new(0),
        }
    }

    /// Claims an existing unclaimed participant record or registers a new
    /// one. Records are only deallocated when the `Global` itself drops.
    fn acquire_record(&self) -> *const Participant {
        // Try to reuse a record released by an exited thread.
        let mut cur = self.participants.load(Ordering::Acquire);
        // SAFETY: participant records are only freed by `Global::drop`
        // (exclusive access), so the list is traversable under `&self`.
        while let Some(p) = unsafe { cur.as_ref() } {
            if p.claimed
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return cur;
            }
            cur = p.next.load(Ordering::Acquire);
        }
        // None free: push a fresh record (Treiber push).
        let rec = Box::into_raw(Box::new(Participant {
            state: AtomicU64::new(Participant::UNPINNED),
            claimed: AtomicBool::new(true),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
        let mut head = self.participants.load(Ordering::Acquire);
        loop {
            // SAFETY: `rec` is ours until the CAS below publishes it.
            unsafe { (*rec).next.store(head, Ordering::Relaxed) };
            match self
                .participants
                .compare_exchange(head, rec, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return rec,
                Err(h) => head = h,
            }
        }
    }

    /// Attempts to advance the global epoch by one; returns the epoch that
    /// is current after the attempt.
    fn try_advance(&self) -> u64 {
        let global_epoch = self.epoch.load(Ordering::Relaxed);
        fence(Ordering::SeqCst);

        // The epoch may only advance if every *pinned* participant has
        // observed the current epoch.
        let mut cur = self.participants.load(Ordering::Acquire);
        // SAFETY: records live until `Global::drop`; see `acquire_record`.
        while let Some(p) = unsafe { cur.as_ref() } {
            let state = p.state.load(Ordering::Relaxed);
            if let Some(e) = Participant::decode(state) {
                if e != global_epoch {
                    return global_epoch;
                }
            }
            cur = p.next.load(Ordering::Acquire);
        }
        fence(Ordering::Acquire);

        // Multiple threads may race here; at most one CAS per step wins and
        // losers observe the new epoch on their next pass.
        if self
            .epoch
            .compare_exchange(
                global_epoch,
                global_epoch + 1,
                Ordering::Release,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            self.advances.fetch_add(1, Ordering::Relaxed);
            global_epoch + 1
        } else {
            global_epoch
        }
    }

    /// Frees orphaned garbage whose epoch is at least two behind `epoch`.
    /// Uses `try_lock` so the hot path never blocks on the orphan list.
    fn collect_orphans(&self, epoch: u64) {
        if let Ok(mut orphans) = self.orphans.try_lock() {
            let mut freed = 0u64;
            orphans.retain_mut(|bag| {
                if bag.epoch + 2 <= epoch {
                    freed += bag.items.len() as u64;
                    for d in bag.items.drain(..) {
                        d.execute();
                    }
                    false
                } else {
                    true
                }
            });
            if freed > 0 {
                self.freed.fetch_add(freed, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for Global {
    fn drop(&mut self) {
        // No handles (hence no threads) reference this global any more:
        // free all participant records and any remaining orphaned garbage.
        let mut cur = *self.participants.get_mut();
        while !cur.is_null() {
            // SAFETY: `&mut self` — no thread holds a handle; every record
            // came from `Box::into_raw` and is freed exactly once here.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next.load(Ordering::Relaxed);
        }
        // Orphan `Deferred`s run their destructor on drop.
        if let Ok(orphans) = self.orphans.get_mut() {
            orphans.clear();
        }
    }
}

/// An epoch-based garbage collector for one (or more) lock-free structures.
///
/// Cloning a `Collector` is cheap and yields a handle to the same underlying
/// collector.
///
/// # Examples
///
/// ```
/// use nbbst_reclaim::{Atomic, Collector, Owned};
/// use std::sync::atomic::Ordering;
///
/// let collector = Collector::new();
/// let slot = Atomic::new(1u64);
///
/// let guard = collector.pin();
/// // Acquire/Release per site, not blanket SeqCst (see DESIGN.md §8).
/// let old = slot.load(Ordering::Acquire, &guard);
/// slot.compare_exchange(old, Owned::new(2u64), Ordering::Release, Ordering::Relaxed, &guard)
///     .expect("uncontended CAS succeeds");
/// // The old value is unlinked; defer its destruction until no pinned
/// // thread can still hold a reference.
/// unsafe { guard.defer_destroy(old) };
/// drop(guard);
/// # unsafe { drop(slot.into_owned()) };
/// ```
pub struct Collector {
    global: Arc<Global>,
}

impl Collector {
    /// Creates a fresh collector with epoch `0` and no participants.
    pub fn new() -> Collector {
        Collector {
            global: Arc::new(Global::new(false)),
        }
    }

    /// Creates a collector that **intentionally leaks** every retirement
    /// instead of freeing it — the paper's literal memory model ("nodes
    /// and Info records are always allocated new memory locations",
    /// Section 4.1), where ABA is impossible because addresses never
    /// recycle.
    ///
    /// For ablation experiments measuring reclamation overhead (T8); the
    /// leak is bounded only by the process lifetime. Never use in
    /// production code.
    pub fn new_leaky() -> Collector {
        Collector {
            global: Arc::new(Global::new(true)),
        }
    }

    /// Whether this collector leaks instead of freeing (see
    /// [`Collector::new_leaky`]).
    pub fn is_leaky(&self) -> bool {
        self.global.leaky
    }

    /// Registers the calling thread, returning a reusable [`LocalHandle`].
    ///
    /// Prefer [`Collector::pin`] unless you want to amortize the (small)
    /// thread-local lookup yourself.
    pub fn register(&self) -> LocalHandle {
        let record = self.global.acquire_record();
        let inner = Box::into_raw(Box::new(LocalInner {
            global: Arc::clone(&self.global),
            record,
            guard_count: Cell::new(0),
            handle_count: Cell::new(1),
            pin_count: Cell::new(0),
            defer_count: Cell::new(0),
            local_epoch: Cell::new(0),
            bags: RefCell::new(VecDeque::new()),
        }));
        LocalHandle { inner }
    }

    /// Pins the current thread using a per-thread cached handle.
    ///
    /// The first call on a given thread registers it; subsequent calls reuse
    /// the registration. Handles for collectors that no longer exist are
    /// retired lazily.
    #[cfg(not(loom))]
    pub fn pin(&self) -> Guard {
        CACHED_HANDLES.with(|cache| {
            let mut cache = cache.borrow_mut();
            // Purge handles whose collector is gone (all `Collector` clones
            // dropped); their garbage migrates to the orphan list.
            cache.retain(|h| {
                // SAFETY: a cached handle holds a `handle_count` reference,
                // so its `inner` is live.
                unsafe { &*h.inner }
                    .global
                    .collectors
                    .load(Ordering::Relaxed)
                    > 0
            });
            if let Some(h) = cache
                .iter()
                // SAFETY: as above — cached handles keep `inner` live.
                .find(|h| Arc::ptr_eq(&unsafe { &*h.inner }.global, &self.global))
            {
                return h.pin();
            }
            let handle = self.register();
            let guard = handle.pin();
            cache.push(handle);
            guard
        })
    }

    /// Pins the current thread (loom build).
    ///
    /// Under the model checker each pin registers a transient participant
    /// instead of using the per-OS-thread handle cache: model threads are
    /// fresh every execution, and running TLS destructors outside the
    /// model scheduler would be unsound. Dropping the handle immediately
    /// is fine — the guard keeps the registration alive via refcount, and
    /// the participant's garbage migrates to the orphan list on unpin,
    /// which also puts the orphan path itself under the model.
    #[cfg(loom)]
    pub fn pin(&self) -> Guard {
        let handle = self.register();
        handle.pin()
    }

    /// Forces an epoch-advance attempt plus an orphan collection pass.
    ///
    /// Useful in tests and teardown paths; never required for correctness.
    pub fn flush(&self) {
        let e = self.global.try_advance();
        self.global.collect_orphans(e);
    }

    /// Repeatedly flushes until everything retired so far has been freed,
    /// or `attempts` passes elapse. Returns whether it fully drained.
    ///
    /// Note that garbage abandoned by an *exiting* thread becomes
    /// collectable only once that thread's TLS destructors have run, which
    /// may be slightly after the thread becomes joinable — this helper
    /// yields between passes to absorb exactly that window. Tests and
    /// teardown paths use it; correctness never requires it.
    pub fn try_drain(&self, attempts: usize) -> bool {
        for _ in 0..attempts {
            let s = self.stats();
            if s.retired == s.freed {
                return true;
            }
            self.flush();
            drop(self.pin());
            crate::primitives::yield_now();
        }
        let s = self.stats();
        s.retired == s.freed
    }

    /// Current reclamation counters.
    pub fn stats(&self) -> ReclaimStats {
        let orphaned = self
            .global
            .orphans
            .try_lock()
            .map(|o| o.iter().map(|b| b.items.len() as u64).sum())
            .unwrap_or(0);
        ReclaimStats {
            retired: self.global.retired.load(Ordering::Relaxed),
            freed: self.global.freed.load(Ordering::Relaxed),
            epoch_advances: self.global.advances.load(Ordering::Relaxed),
            global_epoch: self.global.epoch.load(Ordering::Relaxed),
            orphaned,
        }
    }
}

impl Clone for Collector {
    fn clone(&self) -> Self {
        self.global.collectors.fetch_add(1, Ordering::Relaxed);
        Collector {
            global: Arc::clone(&self.global),
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        if self.global.collectors.fetch_sub(1, Ordering::Relaxed) == 1 {
            // Last `Collector` clone. Evict the calling thread's cached
            // handle now so its deferred garbage migrates to the orphan
            // list and is freed when the final `Arc<Global>` drops —
            // otherwise everything this thread retired would sit in its
            // thread-local bag (keeping the `Global` alive too) until the
            // thread exits or happens to pin some other collector.
            //
            // Other threads' cached handles are untouched (their TLS is
            // not ours to drain); they purge on their next `pin` of any
            // collector, or at thread exit.
            #[cfg(not(loom))]
            evict_cached_handle(&self.global);
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(not(loom))]
thread_local! {
    static CACHED_HANDLES: RefCell<Vec<LocalHandle>> = const { RefCell::new(Vec::new()) };
}

/// Drops the calling thread's cached handle for `global`, if any, sending
/// its garbage bags to the orphan list (see [`LocalInner::finalize`]).
/// Safe to call during thread teardown: if the TLS cache is already gone,
/// its own destructor has done the same work.
#[cfg(not(loom))]
fn evict_cached_handle(global: &Arc<Global>) {
    let _ = CACHED_HANDLES.try_with(|cache| {
        // A live guard keeps the registration alive past the eviction via
        // the `LocalInner` refcounts, so this is safe even mid-pin.
        // SAFETY: cached handles hold a `handle_count` reference to `inner`.
        cache
            .borrow_mut()
            .retain(|h| !Arc::ptr_eq(&unsafe { &*h.inner }.global, global));
    });
}

/// Thread-local state for one `(thread, collector)` registration.
///
/// Shared between the owning [`LocalHandle`] and any outstanding [`Guard`]s
/// via manual reference counting; freed when both counts reach zero.
struct LocalInner {
    global: Arc<Global>,
    record: *const Participant,
    guard_count: Cell<usize>,
    handle_count: Cell<usize>,
    pin_count: Cell<u64>,
    defer_count: Cell<usize>,
    /// Epoch this thread observed at its current pin (valid while pinned).
    local_epoch: Cell<u64>,
    bags: RefCell<VecDeque<Bag>>,
}

impl LocalInner {
    fn record(&self) -> &Participant {
        // SAFETY: participant records live until `Global` drops, and we
        // hold an `Arc<Global>`.
        unsafe { &*self.record }
    }

    fn pin(&self) {
        let count = self.guard_count.get();
        self.guard_count.set(count + 1);
        if count == 0 {
            let epoch = self.global.epoch.load(Ordering::Relaxed);
            self.record()
                .state
                .store(Participant::pinned_state(epoch), Ordering::Relaxed);
            // Publish the pin before any subsequent shared-memory access;
            // pairs with the SeqCst fence in `Global::try_advance`.
            fence(Ordering::SeqCst);
            self.local_epoch.set(epoch);

            let pins = self.pin_count.get() + 1;
            self.pin_count.set(pins);
            if pins.is_multiple_of(PINS_BETWEEN_COLLECT) {
                self.housekeep();
            } else {
                // Cheap opportunistic collection: if the oldest local bag is
                // already two epochs stale, free it without a full
                // housekeeping pass (no participant scan needed).
                let front_is_stale = self
                    .bags
                    .borrow()
                    .front()
                    .is_some_and(|b| b.epoch + 2 <= epoch);
                if front_is_stale {
                    self.collect(epoch);
                }
            }
        }
    }

    fn unpin(&self) {
        let count = self.guard_count.get();
        debug_assert!(count > 0, "unpin without matching pin");
        self.guard_count.set(count - 1);
        if count == 1 {
            self.record()
                .state
                .store(Participant::UNPINNED, Ordering::Release);
        }
    }

    fn defer(&self, d: Deferred) {
        debug_assert!(self.guard_count.get() > 0, "defer while not pinned");
        if self.global.leaky {
            // The paper's model: never reuse memory. Forget (leak) the
            // destruction entirely.
            std::mem::forget(d);
            self.global.retired.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let epoch = self.local_epoch.get();
        let mut bags = self.bags.borrow_mut();
        match bags.back_mut() {
            Some(bag) if bag.epoch == epoch => bag.items.push(d),
            _ => bags.push_back(Bag {
                epoch,
                items: vec![d],
            }),
        }
        drop(bags);
        self.global.retired.fetch_add(1, Ordering::Relaxed);
        let defers = self.defer_count.get() + 1;
        self.defer_count.set(defers);
        if defers.is_multiple_of(DEFERS_BETWEEN_COLLECT) {
            self.housekeep();
        }
    }

    /// Advance the epoch if possible and free every local/orphan bag that is
    /// at least two epochs old.
    fn housekeep(&self) {
        let epoch = self.global.try_advance();
        self.collect(epoch);
        self.global.collect_orphans(epoch);
    }

    fn collect(&self, epoch: u64) {
        let mut bags = self.bags.borrow_mut();
        let mut freed = 0u64;
        while let Some(front) = bags.front() {
            if front.epoch + 2 <= epoch {
                let bag = bags.pop_front().expect("front exists");
                freed += bag.items.len() as u64;
                for d in bag.items {
                    d.execute();
                }
            } else {
                break;
            }
        }
        if freed > 0 {
            self.global.freed.fetch_add(freed, Ordering::Relaxed);
        }
    }

    /// Called when the last handle/guard reference drops: abandon remaining
    /// garbage to the orphan list and release the participant record.
    fn finalize(&self) {
        debug_assert_eq!(self.guard_count.get(), 0);
        debug_assert_eq!(self.handle_count.get(), 0);
        let mut bags = self.bags.borrow_mut();
        if !bags.is_empty() {
            let mut orphans = self
                .global
                .orphans
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            orphans.extend(bags.drain(..));
        }
        drop(bags);
        let record = self.record();
        record.state.store(Participant::UNPINNED, Ordering::Release);
        record.claimed.store(false, Ordering::Release);
    }
}

fn release_inner(inner: *mut LocalInner) {
    // SAFETY: callers hold (and have just released) a counted reference,
    // so `inner` is still live here.
    let r = unsafe { &*inner };
    if r.guard_count.get() == 0 && r.handle_count.get() == 0 {
        r.finalize();
        // SAFETY: both counts are zero, so this is the last reference;
        // the box came from `Box::into_raw` and is freed exactly once.
        drop(unsafe { Box::from_raw(inner) });
    }
}

/// A per-thread registration with a [`Collector`].
///
/// Not `Send`/`Sync`: each thread registers for itself. Obtained from
/// [`Collector::register`]; most users go through [`Collector::pin`]
/// instead, which caches one handle per thread.
pub struct LocalHandle {
    inner: *mut LocalInner,
}

impl LocalHandle {
    /// Pins the thread; shared pointers loaded under the returned [`Guard`]
    /// remain valid until it drops.
    pub fn pin(&self) -> Guard {
        // SAFETY: a live handle holds a `handle_count` reference to `inner`.
        let inner = unsafe { &*self.inner };
        inner.pin();
        Guard { local: self.inner }
    }

    /// Whether the thread currently holds at least one guard.
    pub fn is_pinned(&self) -> bool {
        // SAFETY: a live handle holds a `handle_count` reference to `inner`.
        unsafe { &*self.inner }.guard_count.get() > 0
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // SAFETY: our `handle_count` reference is released only below.
        let inner = unsafe { &*self.inner };
        inner.handle_count.set(inner.handle_count.get() - 1);
        release_inner(self.inner);
    }
}

impl fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalHandle")
            .field("pinned", &self.is_pinned())
            .finish()
    }
}

/// An RAII pin: while any `Guard` for a thread is live, no object retired
/// after the pin can be freed, so [`Shared`](crate::Shared) pointers loaded
/// under the guard stay dereferenceable.
///
/// Guards nest; only the outermost pin/unpin touches shared state.
pub struct Guard {
    /// Null for the unprotected guard (see [`unprotected`]).
    local: *mut LocalInner,
}

impl Guard {
    /// Defers destruction of the pointee until no pinned thread can hold a
    /// reference to it.
    ///
    /// # Safety
    ///
    /// * `shared` must point to a live heap allocation produced by
    ///   [`Owned::new`](crate::Owned::new) / [`Atomic::new`](crate::Atomic::new).
    /// * The object must already be *unlinked*: unreachable for threads that
    ///   pin after this call.
    /// * `defer_destroy` must be called at most once per allocation.
    pub unsafe fn defer_destroy<T>(&self, shared: crate::Shared<'_, T>) {
        debug_assert!(!shared.is_null(), "defer_destroy on null pointer");
        let d = Deferred::destroy_boxed(shared.as_raw() as *mut T);
        match self.local.as_ref() {
            Some(local) => local.defer(d),
            // Unprotected guard: caller vouches for exclusive access, so the
            // destructor may run immediately.
            None => d.execute(),
        }
    }

    /// Temporarily unpins the thread, runs `f`, and repins.
    ///
    /// Any `Shared` loaded before this call must not be used afterwards;
    /// the borrow checker enforces this because the guard is mutably
    /// borrowed for the duration.
    pub fn repin_after<F: FnOnce() -> R, R>(&mut self, f: F) -> R {
        // SAFETY: non-null `local` is kept live by our `guard_count`
        // reference; null is the unprotected guard (else branch).
        if let Some(local) = unsafe { self.local.as_ref() } {
            // Only sound to fully unpin when this is the sole guard.
            assert_eq!(
                local.guard_count.get(),
                1,
                "repin_after requires the outermost guard"
            );
            local.unpin();
            let result = f();
            local.pin();
            result
        } else {
            f()
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if !self.local.is_null() {
            // SAFETY: our `guard_count` reference is released only below.
            let inner = unsafe { &*self.local };
            inner.unpin();
            release_inner(self.local);
        }
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.local.is_null() {
            "Guard(unprotected)"
        } else {
            "Guard"
        })
    }
}

/// Returns a guard that performs no pinning.
///
/// # Safety
///
/// Callers must guarantee that no other thread can concurrently access the
/// data structure (e.g. inside `Drop` of the owning structure, or during
/// single-threaded construction). `defer_destroy` on this guard destroys
/// immediately.
pub unsafe fn unprotected() -> Guard {
    Guard {
        local: std::ptr::null_mut(),
    }
}

// `Guard` and `LocalHandle` hold raw pointers to thread-local state, so the
// compiler already refuses to `Send`/`Sync` them — which is required:
// moving a guard to another thread would unpin the wrong participant.

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountDrop(Arc<AtomicUsize>);
    impl Drop for CountDrop {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn retire_one(collector: &Collector, drops: &Arc<AtomicUsize>) {
        let guard = collector.pin();
        let a = crate::Atomic::new(CountDrop(drops.clone()));
        let s = a.load(Ordering::SeqCst, &guard);
        unsafe { guard.defer_destroy(s) };
    }

    #[test]
    fn garbage_is_eventually_freed() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        for _ in 0..1_000 {
            retire_one(&collector, &drops);
        }
        // Force advancement from an otherwise idle state.
        for _ in 0..10 {
            collector.flush();
            let guard = collector.pin();
            drop(guard);
        }
        // All bags should be at least two epochs old by now except possibly
        // the most recent ones.
        assert!(
            drops.load(Ordering::SeqCst) > 900,
            "freed {}",
            drops.load(Ordering::SeqCst)
        );
        let stats = collector.stats();
        assert_eq!(stats.retired, 1_000);
        assert!(stats.epoch_advances > 0);
    }

    #[test]
    fn nothing_freed_while_a_guard_from_before_retirement_is_held() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));

        // Another "thread": a second handle pinned the whole time.
        let blocker = collector.register();
        let _block_guard = blocker.pin();
        let blocked_epoch = collector.stats().global_epoch;

        for _ in 0..500 {
            retire_one(&collector, &drops);
            collector.flush();
        }
        // The blocker pinned at `blocked_epoch`; the epoch can advance at
        // most once past it, so nothing retired at or after
        // `blocked_epoch + 1` may be freed... in particular garbage retired
        // *after* the blocker pinned can never become two epochs old.
        let e = collector.stats().global_epoch;
        assert!(
            e <= blocked_epoch + 1,
            "epoch advanced past pinned participant: {e} vs {blocked_epoch}"
        );
        assert_eq!(drops.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn unpinning_blocker_releases_garbage() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let blocker = collector.register();
        let block_guard = blocker.pin();
        for _ in 0..100 {
            retire_one(&collector, &drops);
        }
        drop(block_guard);
        for _ in 0..8 {
            collector.flush();
            drop(collector.pin());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn nested_guards_pin_once() {
        let collector = Collector::new();
        let handle = collector.register();
        let g1 = handle.pin();
        let e1 = collector.stats().global_epoch;
        let g2 = handle.pin();
        assert!(handle.is_pinned());
        drop(g1);
        assert!(handle.is_pinned());
        drop(g2);
        assert!(!handle.is_pinned());
        let _ = e1;
    }

    #[test]
    fn exiting_thread_orphans_garbage_which_is_later_freed() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let c2 = collector.clone();
        let d2 = drops.clone();
        std::thread::spawn(move || {
            for _ in 0..50 {
                retire_one(&c2, &d2);
            }
            // Thread exits; its cached handle drops, orphaning the bags.
        })
        .join()
        .unwrap();
        for _ in 0..8 {
            collector.flush();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn dropping_collector_with_pending_garbage_frees_it() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let collector = Collector::new();
            let handle = collector.register();
            let guard = handle.pin();
            let a = crate::Atomic::new(CountDrop(drops.clone()));
            let s = a.load(Ordering::SeqCst, &guard);
            unsafe { guard.defer_destroy(s) };
            drop(guard);
            drop(handle);
            // collector (and cached TLS handles, if any) drop here...
        }
        // ...but TLS-cached handles on this thread may still hold the
        // global. Touch a new collector to trigger the purge.
        let other = Collector::new();
        drop(other.pin());
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn participant_records_are_reused() {
        let collector = Collector::new();
        let h1 = collector.register();
        let r1 = unsafe { &*h1.inner }.record;
        drop(h1);
        let h2 = collector.register();
        let r2 = unsafe { &*h2.inner }.record;
        assert_eq!(r1, r2, "released record should be reclaimed");
    }

    #[test]
    fn guard_outliving_handle_is_sound() {
        let collector = Collector::new();
        let handle = collector.register();
        let guard = handle.pin();
        drop(handle);
        // Guard still pins; dropping it finalizes the registration.
        drop(guard);
        // Re-registering reuses the slot without crashing.
        let h = collector.register();
        drop(h.pin());
    }

    #[test]
    fn repin_after_allows_advancement() {
        let collector = Collector::new();
        let handle = collector.register();
        let mut guard = handle.pin();
        let before = collector.stats().global_epoch;
        guard.repin_after(|| {
            // While unpinned, another participant can advance the epoch
            // multiple times.
            for _ in 0..4 {
                collector.flush();
                drop(collector.pin());
            }
        });
        let after = collector.stats().global_epoch;
        assert!(
            after >= before + 2,
            "epoch should run ahead: {before} -> {after}"
        );
        drop(guard);
    }
}
