//! Epoch-based reclamation (EBR).
//!
//! The paper assumes a garbage-collected environment: "it would be more
//! practical to reallocate the memory locations that are no longer in use.
//! Such a scheme should not introduce any problems, as long as a memory
//! location is not reallocated while any process could reach that location
//! by following a chain of pointers" (Section 4.1). This module provides
//! exactly that guarantee, with the classic three-epoch scheme (Fraser's
//! thesis; the protocol here mirrors `crossbeam-epoch`, reimplemented from
//! scratch):
//!
//! * A [`Collector`] owns a global epoch counter and a registry of
//!   *participants* (one per `(thread, collector)` pair).
//! * Before touching shared pointers a thread *pins* itself ([`Guard`]),
//!   publishing the epoch it observed.
//! * Removed objects are *retired* ([`Guard::defer_destroy`]) into the
//!   thread's open bag; at the outermost unpin (or when the bag fills) the
//!   bag is *sealed* with the global epoch read behind a `SeqCst` fence and
//!   *published* to the collector-wide evictable registry.
//! * The global epoch advances from `E` to `E+1` only when every pinned
//!   participant has observed `E`; hence pinned participants always sit at
//!   `E` or `E-1`, and a bag sealed at epoch `g` is freed once the global
//!   epoch reaches `g + 2` — by which point no thread that could have
//!   observed a pointer into the bag is still pinned.
//! * Because sealed bags live in a shared lock-free registry rather than in
//!   thread-local caches, *any* thread — on housekeeping, [`Collector::flush`],
//!   [`Collector::try_drain`], or the last [`Collector`] drop — can steal
//!   and free bags whose epoch has passed. Reclamation never depends on the
//!   retiring thread pinning again, so a thread-pool worker that parks
//!   forever cannot strand its garbage (see DESIGN.md §10).
//!
//! The seal epoch is deliberately the *global* epoch at seal time, not the
//! retirer's pin epoch: a thread pinned one epoch ahead of the retirer may
//! have observed a pointer into the bag before it was unlinked, and sealing
//! with the (older) pin epoch would free the bag one epoch too early.
//!
//! Why this discharges the paper's ABA obligations is argued in DESIGN.md
//! §2: every read-then-CAS of a tree word happens under a single guard, and
//! no address can be freed (hence recycled, hence made to repeat an old word
//! value) while a guard that observed it is live.

use crate::deferred::Deferred;
use crate::primitives::{fence, AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::cell::{Cell, RefCell};
use std::fmt;
// Instrumentation-only counters bypass the loom facade on purpose: they
// never synchronize anything (see primitives.rs).
use std::sync::atomic::{AtomicU64 as CounterU64, AtomicUsize as CounterUsize};
use std::sync::Arc;

/// How many pins between housekeeping passes (epoch-advance attempt plus a
/// registry collection pass).
const PINS_BETWEEN_COLLECT: u64 = 32;

/// How many retirements force an early housekeeping pass.
const DEFERS_BETWEEN_COLLECT: usize = 64;

/// Open bags are sealed and published once they hold this many items, even
/// mid-pin, so a long-pinned thread's footprint stays visible to the
/// registry (and to [`ReclaimStats`]) in bounded-size chunks.
const MAX_ITEMS_PER_BAG: usize = 64;

/// One registered `(thread, collector)` slot in the global participant list.
///
/// `state` is `0` when not pinned, else `(epoch << 1) | 1`.
struct Participant {
    state: AtomicU64,
    claimed: AtomicBool,
    next: AtomicPtr<Participant>,
}

impl Participant {
    const UNPINNED: u64 = 0;

    fn pinned_state(epoch: u64) -> u64 {
        (epoch << 1) | 1
    }

    fn decode(state: u64) -> Option<u64> {
        if state & 1 == 1 {
            Some(state >> 1)
        } else {
            None
        }
    }
}

/// A bag of retirements sealed with the global epoch observed (behind a
/// `SeqCst` fence) when it was published, linked into the collector-wide
/// evictable registry. Any thread may steal and free it once the global
/// epoch reaches `epoch + 2`.
struct SealedBag {
    epoch: u64,
    items: Vec<Deferred>,
    /// Total payload bytes of `items`, for footprint accounting.
    bytes: usize,
    /// Identity of the publishing registration (its `LocalInner` address),
    /// so stats can tell bags freed by their publisher from stolen ones.
    /// Never dereferenced; the identity may be recycled after the
    /// registration drops, which is acceptable for a statistic.
    owner: usize,
    next: AtomicPtr<SealedBag>,
}

/// Counters describing reclamation activity; see [`Collector::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReclaimStats {
    /// Objects handed to `defer_destroy` so far.
    pub retired: u64,
    /// Objects whose destructor has actually run.
    pub freed: u64,
    /// Successful global epoch advances.
    pub epoch_advances: u64,
    /// Current global epoch.
    pub global_epoch: u64,
    /// Objects currently published to the evictable registry (sealed but
    /// not yet freed).
    pub evictable: u64,
    /// Sealed bags published to the evictable registry so far.
    pub bags_published: u64,
    /// Bags freed by a thread other than the one that published them
    /// (including ownerless paths such as `flush` and `Collector::drop`).
    pub bags_stolen: u64,
    /// Bags freed so far (by any thread).
    pub bags_freed: u64,
    /// Payload bytes currently awaiting reclamation (open bags plus the
    /// evictable registry).
    pub deferred_bytes: u64,
    /// High-water mark of `deferred_bytes` over the collector's lifetime.
    pub peak_deferred_bytes: u64,
}

/// Shared collector state.
struct Global {
    epoch: AtomicU64,
    participants: AtomicPtr<Participant>,
    /// The evictable-bag registry: a lock-free Treiber list of sealed bags
    /// published by any thread and stealable by any thread.
    evictable: AtomicPtr<SealedBag>,
    /// Number of live `Collector` clones (not handles); when it reaches
    /// zero, cached thread-local handles know to retire themselves.
    collectors: CounterUsize,
    /// Leak instead of freeing (the paper's "always allocate fresh
    /// memory" model); for ablation experiments only.
    leaky: bool,
    retired: CounterU64,
    freed: CounterU64,
    advances: CounterU64,
    bags_published: CounterU64,
    bags_stolen: CounterU64,
    bags_freed: CounterU64,
    /// Items currently in the evictable registry.
    evictable_items: CounterU64,
    /// Payload bytes currently awaiting reclamation.
    deferred_bytes: CounterU64,
    peak_deferred_bytes: CounterU64,
}

impl Global {
    fn new(leaky: bool) -> Global {
        Global {
            epoch: AtomicU64::new(0),
            participants: AtomicPtr::new(std::ptr::null_mut()),
            evictable: AtomicPtr::new(std::ptr::null_mut()),
            collectors: CounterUsize::new(1),
            leaky,
            retired: CounterU64::new(0),
            freed: CounterU64::new(0),
            advances: CounterU64::new(0),
            bags_published: CounterU64::new(0),
            bags_stolen: CounterU64::new(0),
            bags_freed: CounterU64::new(0),
            evictable_items: CounterU64::new(0),
            deferred_bytes: CounterU64::new(0),
            peak_deferred_bytes: CounterU64::new(0),
        }
    }

    /// Claims an existing unclaimed participant record or registers a new
    /// one. Records are only deallocated when the `Global` itself drops.
    fn acquire_record(&self) -> *const Participant {
        // Try to reuse a record released by an exited thread.
        let mut cur = self.participants.load(Ordering::Acquire);
        // SAFETY: participant records are only freed by `Global::drop`
        // (exclusive access), so the list is traversable under `&self`.
        while let Some(p) = unsafe { cur.as_ref() } {
            if p.claimed
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return cur;
            }
            cur = p.next.load(Ordering::Acquire);
        }
        // None free: push a fresh record (Treiber push).
        let rec = Box::into_raw(Box::new(Participant {
            state: AtomicU64::new(Participant::UNPINNED),
            claimed: AtomicBool::new(true),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
        let mut head = self.participants.load(Ordering::Acquire);
        loop {
            // SAFETY: `rec` is ours until the CAS below publishes it.
            unsafe { (*rec).next.store(head, Ordering::Relaxed) };
            match self
                .participants
                .compare_exchange(head, rec, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return rec,
                Err(h) => head = h,
            }
        }
    }

    /// Attempts to advance the global epoch by one; returns the epoch that
    /// is current after the attempt.
    fn try_advance(&self) -> u64 {
        let global_epoch = self.epoch.load(Ordering::Relaxed);
        fence(Ordering::SeqCst);

        // The epoch may only advance if every *pinned* participant has
        // observed the current epoch.
        let mut cur = self.participants.load(Ordering::Acquire);
        // SAFETY: records live until `Global::drop`; see `acquire_record`.
        while let Some(p) = unsafe { cur.as_ref() } {
            let state = p.state.load(Ordering::Relaxed);
            if let Some(e) = Participant::decode(state) {
                if e != global_epoch {
                    return global_epoch;
                }
            }
            cur = p.next.load(Ordering::Acquire);
        }
        fence(Ordering::Acquire);

        // Multiple threads may race here; at most one CAS per step wins and
        // losers observe the new epoch on their next pass.
        if self
            .epoch
            .compare_exchange(
                global_epoch,
                global_epoch + 1,
                Ordering::Release,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            self.advances.fetch_add(1, Ordering::Relaxed);
            global_epoch + 1
        } else {
            global_epoch
        }
    }

    /// Publishes a sealed bag to the evictable registry (lock-free Treiber
    /// push). After this returns, any thread may steal and free the bag
    /// once its epoch has passed.
    fn publish_bag(&self, bag: Box<SealedBag>) {
        let items = bag.items.len() as u64;
        let node = Box::into_raw(bag);
        // The observed head is only re-linked as the new bag's `next`; the
        // publisher never dereferences it (a stealer may already own it).
        let mut head = self.evictable.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is ours until the CAS below publishes it.
            unsafe { (*node).next.store(head, Ordering::Relaxed) };
            match self
                .evictable
                .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        self.bags_published.fetch_add(1, Ordering::Relaxed);
        self.evictable_items.fetch_add(items, Ordering::Relaxed);
    }

    /// Steals the entire evictable registry, frees every bag whose epoch is
    /// at least two behind `epoch`, and re-publishes the survivors.
    ///
    /// Lock-free: the whole-chain `swap` hands each caller a disjoint
    /// chain, so concurrent stealers never contend on individual bags.
    /// Stealing is also the only safe way to *inspect* a bag — peeking at
    /// the head's epoch without taking ownership would race a concurrent
    /// stealer freeing it.
    ///
    /// `caller` identifies the stealing registration (`0` for ownerless
    /// paths such as `flush`, `try_drain`, and `Collector::drop`); bags
    /// freed on behalf of a different owner count as "stolen" in
    /// [`ReclaimStats`].
    fn collect_evictable(&self, epoch: u64, caller: usize) {
        // Acquire pairs with the publishers' Release CASes so the stolen
        // bags' contents (items, seal epochs, links) are visible; Release
        // orders this takeover before the survivor re-publication below, so
        // a bag is never reachable from two stealers. See DESIGN.md §10.
        let mut cur = self.evictable.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if cur.is_null() {
            return;
        }
        let mut survivors: *mut SealedBag = std::ptr::null_mut();
        let mut survivors_tail: *mut SealedBag = std::ptr::null_mut();
        let mut freed_items = 0u64;
        let mut freed_bytes = 0u64;
        let mut freed_bags = 0u64;
        let mut stolen_bags = 0u64;
        while !cur.is_null() {
            // SAFETY: the swap above transferred exclusive ownership of the
            // whole chain to us; every node came from `Box::into_raw`.
            let bag = unsafe { Box::from_raw(cur) };
            // The chain is privately owned after the steal.
            cur = bag.next.load(Ordering::Relaxed);
            if bag.epoch + 2 <= epoch {
                freed_items += bag.items.len() as u64;
                freed_bytes += bag.bytes as u64;
                freed_bags += 1;
                if bag.owner != caller {
                    stolen_bags += 1;
                }
                for d in bag.items {
                    d.execute();
                }
            } else {
                let node = Box::into_raw(bag);
                // SAFETY: `node` is privately owned until re-published.
                unsafe { (*node).next.store(survivors, Ordering::Relaxed) };
                if survivors.is_null() {
                    survivors_tail = node;
                }
                survivors = node;
            }
        }
        if !survivors.is_null() {
            // Re-publish the survivor chain in one push: link the chain's
            // tail to the observed head, then CAS the head to the chain.
            let mut head = self.evictable.load(Ordering::Relaxed);
            loop {
                // SAFETY: the chain is still privately owned; the observed
                // head is only linked, never dereferenced.
                unsafe { (*survivors_tail).next.store(head, Ordering::Relaxed) };
                match self.evictable.compare_exchange(
                    head,
                    survivors,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(h) => head = h,
                }
            }
        }
        if freed_items > 0 {
            self.freed.fetch_add(freed_items, Ordering::Relaxed);
            self.evictable_items
                .fetch_sub(freed_items, Ordering::Relaxed);
            self.deferred_bytes
                .fetch_sub(freed_bytes, Ordering::Relaxed);
            self.bags_freed.fetch_add(freed_bags, Ordering::Relaxed);
            if stolen_bags > 0 {
                self.bags_stolen.fetch_add(stolen_bags, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for Global {
    fn drop(&mut self) {
        // No handles (hence no threads) reference this global any more:
        // free all participant records and drain the evictable registry.
        let mut cur = *self.participants.get_mut();
        while !cur.is_null() {
            // SAFETY: `&mut self` — no thread holds a handle; every record
            // came from `Box::into_raw` and is freed exactly once here.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next.load(Ordering::Relaxed);
        }
        let mut bag = *self.evictable.get_mut();
        while !bag.is_null() {
            // SAFETY: `&mut self` gives exclusive ownership of the chain;
            // each bag came from `Box::into_raw` and is freed exactly once.
            // Its remaining `Deferred`s run their destructors on drop.
            let boxed = unsafe { Box::from_raw(bag) };
            bag = boxed.next.load(Ordering::Relaxed);
        }
    }
}

/// An epoch-based garbage collector for one (or more) lock-free structures.
///
/// Cloning a `Collector` is cheap and yields a handle to the same underlying
/// collector.
///
/// # Examples
///
/// ```
/// use nbbst_reclaim::{Atomic, Collector, Owned};
/// use std::sync::atomic::Ordering;
///
/// let collector = Collector::new();
/// let slot = Atomic::new(1u64);
///
/// let guard = collector.pin();
/// // Acquire/Release per site, not blanket SeqCst (see DESIGN.md §8).
/// let old = slot.load(Ordering::Acquire, &guard);
/// slot.compare_exchange(old, Owned::new(2u64), Ordering::Release, Ordering::Relaxed, &guard)
///     .expect("uncontended CAS succeeds");
/// // The old value is unlinked; defer its destruction until no pinned
/// // thread can still hold a reference.
/// unsafe { guard.defer_destroy(old) };
/// drop(guard);
/// # unsafe { drop(slot.into_owned()) };
/// ```
pub struct Collector {
    global: Arc<Global>,
}

impl Collector {
    /// Creates a fresh collector with epoch `0` and no participants.
    pub fn new() -> Collector {
        Collector {
            global: Arc::new(Global::new(false)),
        }
    }

    /// Creates a collector that **intentionally leaks** every retirement
    /// instead of freeing it — the paper's literal memory model ("nodes
    /// and Info records are always allocated new memory locations",
    /// Section 4.1), where ABA is impossible because addresses never
    /// recycle.
    ///
    /// For ablation experiments measuring reclamation overhead (T8); the
    /// leak is bounded only by the process lifetime. Never use in
    /// production code.
    pub fn new_leaky() -> Collector {
        Collector {
            global: Arc::new(Global::new(true)),
        }
    }

    /// Whether this collector leaks instead of freeing (see
    /// [`Collector::new_leaky`]).
    pub fn is_leaky(&self) -> bool {
        self.global.leaky
    }

    /// Registers the calling thread, returning a reusable [`LocalHandle`].
    ///
    /// Prefer [`Collector::pin`] unless you want to amortize the (small)
    /// thread-local lookup yourself.
    pub fn register(&self) -> LocalHandle {
        let record = self.global.acquire_record();
        let inner = Box::into_raw(Box::new(LocalInner {
            global: Arc::clone(&self.global),
            record,
            guard_count: Cell::new(0),
            handle_count: Cell::new(1),
            pin_count: Cell::new(0),
            defer_count: Cell::new(0),
            bag: RefCell::new(Vec::new()),
            bag_bytes: Cell::new(0),
        }));
        LocalHandle { inner }
    }

    /// Pins the current thread using a per-thread cached handle.
    ///
    /// The first call on a given thread registers it; subsequent calls reuse
    /// the registration. Handles for collectors that no longer exist are
    /// retired lazily.
    #[cfg(not(loom))]
    pub fn pin(&self) -> Guard {
        CACHED_HANDLES.with(|cache| {
            let mut cache = cache.borrow_mut();
            // Purge handles whose collector is gone (all `Collector` clones
            // dropped) so their registrations and `Arc<Global>`s release;
            // any garbage they retired was already published to the
            // evictable registry at unpin.
            cache.retain(|h| {
                // SAFETY: a cached handle holds a `handle_count` reference,
                // so its `inner` is live.
                unsafe { &*h.inner }
                    .global
                    .collectors
                    .load(Ordering::Relaxed)
                    > 0
            });
            if let Some(h) = cache
                .iter()
                // SAFETY: as above — cached handles keep `inner` live.
                .find(|h| Arc::ptr_eq(&unsafe { &*h.inner }.global, &self.global))
            {
                return h.pin();
            }
            let handle = self.register();
            let guard = handle.pin();
            cache.push(handle);
            guard
        })
    }

    /// Pins the current thread (loom build).
    ///
    /// Under the model checker each pin registers a transient participant
    /// instead of using the per-OS-thread handle cache: model threads are
    /// fresh every execution, and running TLS destructors outside the
    /// model scheduler would be unsound. Dropping the handle immediately
    /// is fine — the guard keeps the registration alive via refcount, and
    /// the open bag is sealed and published to the evictable registry at
    /// unpin, which also puts the publish/steal path itself under the
    /// model.
    #[cfg(loom)]
    pub fn pin(&self) -> Guard {
        let handle = self.register();
        handle.pin()
    }

    /// Forces an epoch-advance attempt plus a registry collection pass.
    ///
    /// Useful in tests and teardown paths; never required for correctness.
    pub fn flush(&self) {
        let e = self.global.try_advance();
        self.global.collect_evictable(e, 0);
    }

    /// Repeatedly flushes until everything retired so far has been freed,
    /// or `attempts` passes elapse. Returns whether it fully drained.
    ///
    /// Because every outermost unpin publishes the thread's garbage to the
    /// shared evictable registry, draining does not require any other
    /// thread to cooperate — it only requires that no thread holds an old
    /// epoch pinned. This helper yields between passes to absorb exactly
    /// that window. Tests and teardown paths use it; correctness never
    /// requires it.
    pub fn try_drain(&self, attempts: usize) -> bool {
        for _ in 0..attempts {
            let s = self.stats();
            if s.retired == s.freed {
                return true;
            }
            self.flush();
            drop(self.pin());
            crate::primitives::yield_now();
        }
        let s = self.stats();
        s.retired == s.freed
    }

    /// Whether `self` and `other` are clones of the same collector (share
    /// one epoch domain and evictable-bag registry).
    ///
    /// Sharded structures that are handed a collector clone per shard use
    /// this to assert the shards really share one reclamation domain.
    pub fn ptr_eq(&self, other: &Collector) -> bool {
        Arc::ptr_eq(&self.global, &other.global)
    }

    /// Current reclamation counters.
    pub fn stats(&self) -> ReclaimStats {
        ReclaimStats {
            retired: self.global.retired.load(Ordering::Relaxed),
            freed: self.global.freed.load(Ordering::Relaxed),
            epoch_advances: self.global.advances.load(Ordering::Relaxed),
            global_epoch: self.global.epoch.load(Ordering::Relaxed),
            evictable: self.global.evictable_items.load(Ordering::Relaxed),
            bags_published: self.global.bags_published.load(Ordering::Relaxed),
            bags_stolen: self.global.bags_stolen.load(Ordering::Relaxed),
            bags_freed: self.global.bags_freed.load(Ordering::Relaxed),
            deferred_bytes: self.global.deferred_bytes.load(Ordering::Relaxed),
            peak_deferred_bytes: self.global.peak_deferred_bytes.load(Ordering::Relaxed),
        }
    }
}

impl Clone for Collector {
    fn clone(&self) -> Self {
        self.global.collectors.fetch_add(1, Ordering::Relaxed);
        Collector {
            global: Arc::clone(&self.global),
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        if self.global.collectors.fetch_sub(1, Ordering::Relaxed) == 1 {
            // Last `Collector` clone: run the final teardown through the
            // evictable registry. Every thread publishes its sealed bags at
            // unpin, so garbage retired by *any* registered thread —
            // including workers parked forever — is in the registry and
            // freed here as soon as its epoch passes. Two advances put the
            // global epoch two past every seal epoch when nothing is
            // pinned; a third pass collects what the second advance
            // unlocked. Anything still protected by a live pin is freed
            // later by that thread's own housekeeping, or with the final
            // registration in `Global::drop`.
            for _ in 0..3 {
                let e = self.global.try_advance();
                self.global.collect_evictable(e, 0);
            }
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(not(loom))]
thread_local! {
    static CACHED_HANDLES: RefCell<Vec<LocalHandle>> = const { RefCell::new(Vec::new()) };
}

/// Thread-local state for one `(thread, collector)` registration.
///
/// Shared between the owning [`LocalHandle`] and any outstanding [`Guard`]s
/// via manual reference counting; freed when both counts reach zero.
struct LocalInner {
    global: Arc<Global>,
    record: *const Participant,
    guard_count: Cell<usize>,
    handle_count: Cell<usize>,
    pin_count: Cell<u64>,
    defer_count: Cell<usize>,
    /// The open bag: retirements deferred under the current pin, not yet
    /// sealed. Only non-empty while pinned — sealed and published to the
    /// evictable registry at the outermost unpin (or mid-pin once it
    /// reaches [`MAX_ITEMS_PER_BAG`]).
    bag: RefCell<Vec<Deferred>>,
    /// Payload bytes in the open bag.
    bag_bytes: Cell<usize>,
}

impl LocalInner {
    fn record(&self) -> &Participant {
        // SAFETY: participant records live until `Global` drops, and we
        // hold an `Arc<Global>`.
        unsafe { &*self.record }
    }

    fn pin(&self) {
        let count = self.guard_count.get();
        self.guard_count.set(count + 1);
        if count == 0 {
            let epoch = self.global.epoch.load(Ordering::Relaxed);
            self.record()
                .state
                .store(Participant::pinned_state(epoch), Ordering::Relaxed);
            // Publish the pin before any subsequent shared-memory access;
            // pairs with the SeqCst fence in `Global::try_advance`.
            fence(Ordering::SeqCst);

            let pins = self.pin_count.get() + 1;
            self.pin_count.set(pins);
            if pins.is_multiple_of(PINS_BETWEEN_COLLECT) {
                self.housekeep();
            }
        }
    }

    fn unpin(&self) {
        let count = self.guard_count.get();
        debug_assert!(count > 0, "unpin without matching pin");
        self.guard_count.set(count - 1);
        if count == 1 {
            // Publish the open bag *before* announcing the unpin: sealing
            // reads the global epoch while this thread is still pinned, so
            // the seal epoch is exactly the tightest one the safety
            // argument allows, and a parked thread leaves nothing behind.
            self.seal_and_publish();
            self.record()
                .state
                .store(Participant::UNPINNED, Ordering::Release);
        }
    }

    fn defer(&self, d: Deferred) {
        debug_assert!(self.guard_count.get() > 0, "defer while not pinned");
        if self.global.leaky {
            // The paper's model: never reuse memory. Forget (leak) the
            // destruction entirely.
            std::mem::forget(d);
            self.global.retired.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let bytes = d.bytes();
        let full = {
            let mut bag = self.bag.borrow_mut();
            bag.push(d);
            bag.len() >= MAX_ITEMS_PER_BAG
        };
        self.bag_bytes.set(self.bag_bytes.get() + bytes);
        self.global.retired.fetch_add(1, Ordering::Relaxed);
        let now = self
            .global
            .deferred_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed)
            + bytes as u64;
        self.global
            .peak_deferred_bytes
            .fetch_max(now, Ordering::Relaxed);
        if full {
            self.seal_and_publish();
        }
        let defers = self.defer_count.get() + 1;
        self.defer_count.set(defers);
        if defers.is_multiple_of(DEFERS_BETWEEN_COLLECT) {
            self.housekeep();
        }
    }

    /// Seals the open bag with the current global epoch and publishes it to
    /// the evictable registry. No-op when the bag is empty.
    ///
    /// The seal epoch is read *behind a `SeqCst` fence* and is deliberately
    /// NOT this thread's pin epoch: we may be pinned at `e` while the
    /// global epoch is already `e + 1`, and a thread pinned at `e + 1` may
    /// have observed a pointer into this bag before it was unlinked.
    /// Sealing with the fenced global read `g` guarantees every such
    /// observer is pinned at an epoch `<= g` and therefore blocks the
    /// advance to `g + 2` that frees the bag (see DESIGN.md §10; this fixes
    /// an epoch off-by-one in the earlier thread-local-cache scheme, which
    /// sealed with the pin epoch).
    fn seal_and_publish(&self) {
        let mut bag = self.bag.borrow_mut();
        if bag.is_empty() {
            return;
        }
        let items = std::mem::take(&mut *bag);
        drop(bag);
        let bytes = self.bag_bytes.replace(0);
        // Store-load: the unlink CASes that preceded every defer in this
        // bag must be globally ordered before the epoch read that seals it;
        // pairs with the SeqCst fence in `Global::try_advance`.
        fence(Ordering::SeqCst);
        // Ordered by the fence above, not by the load itself.
        let epoch = self.global.epoch.load(Ordering::Relaxed);
        self.global.publish_bag(Box::new(SealedBag {
            epoch,
            items,
            bytes,
            owner: self as *const LocalInner as usize,
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
    }

    /// Advance the epoch if possible and steal-and-free expired bags from
    /// the evictable registry.
    fn housekeep(&self) {
        let epoch = self.global.try_advance();
        self.global
            .collect_evictable(epoch, self as *const LocalInner as usize);
    }

    /// Called when the last handle/guard reference drops: publish any
    /// remaining garbage and release the participant record.
    fn finalize(&self) {
        debug_assert_eq!(self.guard_count.get(), 0);
        debug_assert_eq!(self.handle_count.get(), 0);
        // The open bag is normally empty here (every outermost unpin
        // publishes), but publish defensively so an exiting thread can
        // never strand garbage on the registration.
        self.seal_and_publish();
        let record = self.record();
        record.state.store(Participant::UNPINNED, Ordering::Release);
        record.claimed.store(false, Ordering::Release);
    }
}

fn release_inner(inner: *mut LocalInner) {
    // SAFETY: callers hold (and have just released) a counted reference,
    // so `inner` is still live here.
    let r = unsafe { &*inner };
    if r.guard_count.get() == 0 && r.handle_count.get() == 0 {
        r.finalize();
        // SAFETY: both counts are zero, so this is the last reference;
        // the box came from `Box::into_raw` and is freed exactly once.
        drop(unsafe { Box::from_raw(inner) });
    }
}

/// A per-thread registration with a [`Collector`].
///
/// Not `Send`/`Sync`: each thread registers for itself. Obtained from
/// [`Collector::register`]; most users go through [`Collector::pin`]
/// instead, which caches one handle per thread.
pub struct LocalHandle {
    inner: *mut LocalInner,
}

impl LocalHandle {
    /// Pins the thread; shared pointers loaded under the returned [`Guard`]
    /// remain valid until it drops.
    pub fn pin(&self) -> Guard {
        // SAFETY: a live handle holds a `handle_count` reference to `inner`.
        let inner = unsafe { &*self.inner };
        inner.pin();
        Guard { local: self.inner }
    }

    /// Whether the thread currently holds at least one guard.
    pub fn is_pinned(&self) -> bool {
        // SAFETY: a live handle holds a `handle_count` reference to `inner`.
        unsafe { &*self.inner }.guard_count.get() > 0
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // SAFETY: our `handle_count` reference is released only below.
        let inner = unsafe { &*self.inner };
        inner.handle_count.set(inner.handle_count.get() - 1);
        release_inner(self.inner);
    }
}

impl fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalHandle")
            .field("pinned", &self.is_pinned())
            .finish()
    }
}

/// An RAII pin: while any `Guard` for a thread is live, no object retired
/// after the pin can be freed, so [`Shared`](crate::Shared) pointers loaded
/// under the guard stay dereferenceable.
///
/// Guards nest; only the outermost pin/unpin touches shared state.
pub struct Guard {
    /// Null for the unprotected guard (see [`unprotected`]).
    local: *mut LocalInner,
}

impl Guard {
    /// Defers destruction of the pointee until no pinned thread can hold a
    /// reference to it.
    ///
    /// # Safety
    ///
    /// * `shared` must point to a live heap allocation produced by
    ///   [`Owned::new`](crate::Owned::new) / [`Atomic::new`](crate::Atomic::new).
    /// * The object must already be *unlinked*: unreachable for threads that
    ///   pin after this call.
    /// * `defer_destroy` must be called at most once per allocation.
    pub unsafe fn defer_destroy<T>(&self, shared: crate::Shared<'_, T>) {
        debug_assert!(!shared.is_null(), "defer_destroy on null pointer");
        let d = Deferred::destroy_boxed(shared.as_raw() as *mut T);
        match self.local.as_ref() {
            Some(local) => local.defer(d),
            // Unprotected guard: caller vouches for exclusive access, so the
            // destructor may run immediately.
            None => d.execute(),
        }
    }

    /// Temporarily unpins the thread, runs `f`, and repins.
    ///
    /// Any `Shared` loaded before this call must not be used afterwards;
    /// the borrow checker enforces this because the guard is mutably
    /// borrowed for the duration.
    pub fn repin_after<F: FnOnce() -> R, R>(&mut self, f: F) -> R {
        // SAFETY: non-null `local` is kept live by our `guard_count`
        // reference; null is the unprotected guard (else branch).
        if let Some(local) = unsafe { self.local.as_ref() } {
            // Only sound to fully unpin when this is the sole guard.
            assert_eq!(
                local.guard_count.get(),
                1,
                "repin_after requires the outermost guard"
            );
            local.unpin();
            let result = f();
            local.pin();
            result
        } else {
            f()
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if !self.local.is_null() {
            // SAFETY: our `guard_count` reference is released only below.
            let inner = unsafe { &*self.local };
            inner.unpin();
            release_inner(self.local);
        }
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.local.is_null() {
            "Guard(unprotected)"
        } else {
            "Guard"
        })
    }
}

/// Returns a guard that performs no pinning.
///
/// # Safety
///
/// Callers must guarantee that no other thread can concurrently access the
/// data structure (e.g. inside `Drop` of the owning structure, or during
/// single-threaded construction). `defer_destroy` on this guard destroys
/// immediately.
pub unsafe fn unprotected() -> Guard {
    Guard {
        local: std::ptr::null_mut(),
    }
}

// `Guard` and `LocalHandle` hold raw pointers to thread-local state, so the
// compiler already refuses to `Send`/`Sync` them — which is required:
// moving a guard to another thread would unpin the wrong participant.

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountDrop(Arc<AtomicUsize>);
    impl Drop for CountDrop {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn retire_one(collector: &Collector, drops: &Arc<AtomicUsize>) {
        let guard = collector.pin();
        let a = crate::Atomic::new(CountDrop(drops.clone()));
        let s = a.load(Ordering::SeqCst, &guard);
        unsafe { guard.defer_destroy(s) };
    }

    #[test]
    fn garbage_is_eventually_freed() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        for _ in 0..1_000 {
            retire_one(&collector, &drops);
        }
        // Force advancement from an otherwise idle state.
        for _ in 0..10 {
            collector.flush();
            let guard = collector.pin();
            drop(guard);
        }
        // All bags should be at least two epochs old by now except possibly
        // the most recent ones.
        assert!(
            drops.load(Ordering::SeqCst) > 900,
            "freed {}",
            drops.load(Ordering::SeqCst)
        );
        let stats = collector.stats();
        assert_eq!(stats.retired, 1_000);
        assert!(stats.epoch_advances > 0);
        assert!(stats.bags_published >= stats.bags_freed);
        assert!(stats.bags_freed > 0);
    }

    #[test]
    fn nothing_freed_while_a_guard_from_before_retirement_is_held() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));

        // Another "thread": a second handle pinned the whole time.
        let blocker = collector.register();
        let _block_guard = blocker.pin();
        let blocked_epoch = collector.stats().global_epoch;

        for _ in 0..500 {
            retire_one(&collector, &drops);
            collector.flush();
        }
        // The blocker pinned at `blocked_epoch`; the epoch can advance at
        // most once past it, so nothing retired at or after
        // `blocked_epoch + 1` may be freed... in particular garbage retired
        // *after* the blocker pinned can never become two epochs old.
        let e = collector.stats().global_epoch;
        assert!(
            e <= blocked_epoch + 1,
            "epoch advanced past pinned participant: {e} vs {blocked_epoch}"
        );
        assert_eq!(drops.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn unpinning_blocker_releases_garbage() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let blocker = collector.register();
        let block_guard = blocker.pin();
        for _ in 0..100 {
            retire_one(&collector, &drops);
        }
        drop(block_guard);
        for _ in 0..8 {
            collector.flush();
            drop(collector.pin());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 100);
        let stats = collector.stats();
        assert_eq!(stats.evictable, 0);
        assert_eq!(stats.deferred_bytes, 0);
        assert!(stats.peak_deferred_bytes > 0);
    }

    /// Regression test for the seal-epoch off-by-one: a bag must be sealed
    /// with the *global* epoch at publish time, not the retirer's pin
    /// epoch. Retirer R pins at epoch 0; the epoch advances to 1; thread T
    /// pins at 1 (and may have observed pointers R is about to unlink).
    /// R's bag must not free while T is still pinned — sealing with R's pin
    /// epoch (0) would free it at global epoch 2, which T's pin permits.
    #[test]
    fn bag_is_not_freed_while_later_pinner_is_live() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let retirer = collector.register();
        let later = collector.register();

        let rg = retirer.pin(); // pinned at epoch 0
        collector.flush(); // advances the global epoch to 1
        let _tg = later.pin(); // pinned at epoch 1
        let a = crate::Atomic::new(CountDrop(drops.clone()));
        let s = a.load(Ordering::SeqCst, &rg);
        unsafe { rg.defer_destroy(s) };
        drop(rg); // seals at the global epoch (1), publishes

        // `later` (pinned at 1) caps the global epoch at 2; a bag sealed at
        // 1 frees only at 3, so no number of flushes may free it.
        for _ in 0..16 {
            collector.flush();
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "bag freed while a participant pinned at the seal epoch was live"
        );
        drop(_tg);
        assert!(collector.try_drain(64));
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_guards_pin_once() {
        let collector = Collector::new();
        let handle = collector.register();
        let g1 = handle.pin();
        let e1 = collector.stats().global_epoch;
        let g2 = handle.pin();
        assert!(handle.is_pinned());
        drop(g1);
        assert!(handle.is_pinned());
        drop(g2);
        assert!(!handle.is_pinned());
        let _ = e1;
    }

    #[test]
    fn exiting_thread_publishes_garbage_which_is_later_freed() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let c2 = collector.clone();
        let d2 = drops.clone();
        std::thread::spawn(move || {
            for _ in 0..50 {
                retire_one(&c2, &d2);
            }
            // Thread exits; its garbage was already published at unpin.
        })
        .join()
        .unwrap();
        for _ in 0..8 {
            collector.flush();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 50);
        assert!(collector.stats().bags_stolen > 0);
    }

    /// A worker that parks forever (never pins again, never exits) must not
    /// strand its garbage: an unrelated thread steals and frees it.
    #[test]
    fn parked_thread_garbage_is_stolen_by_another_thread() {
        let collector = Collector::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let (park_tx, park_rx) = std::sync::mpsc::channel::<()>();
        let c2 = collector.clone();
        let d2 = drops.clone();
        let worker = std::thread::spawn(move || {
            for _ in 0..50 {
                retire_one(&c2, &d2);
            }
            done_tx.send(()).unwrap();
            // Park forever (until teardown): the worker still holds its
            // collector clone and TLS registration, so nothing on this
            // thread will ever pin, flush, or exit on its own.
            let _ = park_rx.recv();
            drop(c2);
        });
        done_rx.recv().unwrap();
        assert!(
            collector.try_drain(10_000),
            "parked thread's garbage was not drained: {:?}",
            collector.stats()
        );
        let stats = collector.stats();
        assert_eq!(drops.load(Ordering::SeqCst), 50);
        assert_eq!(stats.deferred_bytes, 0);
        assert!(stats.bags_stolen > 0, "{stats:?}");
        park_tx.send(()).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn dropping_collector_with_pending_garbage_frees_it() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let collector = Collector::new();
            let handle = collector.register();
            let guard = handle.pin();
            let a = crate::Atomic::new(CountDrop(drops.clone()));
            let s = a.load(Ordering::SeqCst, &guard);
            unsafe { guard.defer_destroy(s) };
            drop(guard);
            drop(handle);
        }
        // The last `Collector` drop collects through the registry; no
        // thread-local eviction or later pin is needed.
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    /// The last `Collector` drop must evict bags published by *other*
    /// threads — here a worker that retired garbage and then parked.
    #[test]
    fn last_collector_drop_frees_other_threads_garbage() {
        let drops = Arc::new(AtomicUsize::new(0));
        let collector = Collector::new();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let (park_tx, park_rx) = std::sync::mpsc::channel::<()>();
        let d2 = drops.clone();
        let c2 = collector.clone();
        let worker = std::thread::spawn(move || {
            for _ in 0..50 {
                retire_one(&c2, &d2);
            }
            drop(c2);
            done_tx.send(()).unwrap();
            let _ = park_rx.recv();
        });
        done_rx.recv().unwrap();
        drop(collector); // last clone: drains the whole registry
        assert_eq!(drops.load(Ordering::SeqCst), 50);
        park_tx.send(()).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn participant_records_are_reused() {
        let collector = Collector::new();
        let h1 = collector.register();
        let r1 = unsafe { &*h1.inner }.record;
        drop(h1);
        let h2 = collector.register();
        let r2 = unsafe { &*h2.inner }.record;
        assert_eq!(r1, r2, "released record should be reclaimed");
    }

    #[test]
    fn guard_outliving_handle_is_sound() {
        let collector = Collector::new();
        let handle = collector.register();
        let guard = handle.pin();
        drop(handle);
        // Guard still pins; dropping it finalizes the registration.
        drop(guard);
        // Re-registering reuses the slot without crashing.
        let h = collector.register();
        drop(h.pin());
    }

    #[test]
    fn repin_after_allows_advancement() {
        let collector = Collector::new();
        let handle = collector.register();
        let mut guard = handle.pin();
        let before = collector.stats().global_epoch;
        guard.repin_after(|| {
            // While unpinned, another participant can advance the epoch
            // multiple times.
            for _ in 0..4 {
                collector.flush();
                drop(collector.pin());
            }
        });
        let after = collector.stats().global_epoch;
        assert!(
            after >= before + 2,
            "epoch should run ahead: {before} -> {after}"
        );
        drop(guard);
    }
}
