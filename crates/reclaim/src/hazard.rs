//! Hazard pointers (Michael, 2004).
//!
//! Section 6 of the paper singles out hazard pointers as the memory-
//! management scheme "applicable to a slightly modified version of our
//! implementation". This module provides the substrate: a [`Domain`] of
//! hazard slots plus [`HazardPointer`] guards with the standard
//! publish-and-validate protection loop, and threshold-triggered scanning
//! of retired objects.
//!
//! The EFRB tree itself uses the epoch scheme (see crate docs for why); the
//! hazard-pointer domain is exercised by this crate's test suite (Treiber
//! stack) and by the reclamation-ablation experiment (T8 in DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use nbbst_reclaim::hazard::Domain;
//! use std::sync::atomic::{AtomicPtr, Ordering};
//!
//! let domain = Domain::new();
//! let slot = AtomicPtr::new(Box::into_raw(Box::new(41u64)));
//!
//! let mut hp = domain.hazard_pointer();
//! let p = hp.protect(&slot);
//! // While `hp` protects `p`, retiring it must not free it.
//! assert_eq!(unsafe { *p }, 41);
//!
//! let unlinked = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
//! unsafe { domain.retire(unlinked) };
//! assert_eq!(unsafe { *p }, 41); // still alive: protected
//! hp.reset();
//! domain.eager_reclaim(); // now it may go
//! ```

use crate::deferred::Deferred;
use crate::primitives::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::collections::HashSet;
use std::fmt;

/// Retired objects accumulate until a scan is worthwhile.
const SCAN_THRESHOLD: usize = 64;

struct Slot {
    hazard: AtomicUsize,
    active: AtomicBool,
    next: AtomicPtr<Slot>,
}

struct Retired {
    addr: usize,
    deferred: Deferred,
    next: AtomicPtr<Retired>,
}

/// A hazard-pointer domain: a registry of hazard slots plus the retired
/// list they guard.
///
/// Fully lock-free: slot acquisition is a CAS loop, protection is a
/// publish-validate loop, and the retired list uses the same publish/steal
/// handoff as the epoch collector's evictable registry (DESIGN.md §10) —
/// retirers push nodes with a Treiber CAS, and a scan steals the whole
/// chain with a `swap`, frees the unprotected nodes, and re-publishes the
/// survivors. Any thread's scan reclaims every thread's retirements, so a
/// retirer that never scans again cannot strand garbage.
pub struct Domain {
    slots: AtomicPtr<Slot>,
    /// Lock-free retired list (publish/steal; see struct docs).
    retired: AtomicPtr<Retired>,
    /// Approximate count of nodes currently in `retired`; triggers scans.
    pending: AtomicUsize,
    retired_count: AtomicUsize,
    freed_count: AtomicUsize,
}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Domain {
        Domain {
            slots: AtomicPtr::new(std::ptr::null_mut()),
            retired: AtomicPtr::new(std::ptr::null_mut()),
            pending: AtomicUsize::new(0),
            retired_count: AtomicUsize::new(0),
            freed_count: AtomicUsize::new(0),
        }
    }

    /// Acquires a hazard slot for the calling thread.
    pub fn hazard_pointer(&self) -> HazardPointer<'_> {
        // Reuse an inactive slot if possible.
        let mut cur = self.slots.load(Ordering::Acquire);
        // SAFETY: slots are only freed by `Domain::drop`, which requires
        // exclusive access to the domain; `&self` keeps them alive here.
        while let Some(s) = unsafe { cur.as_ref() } {
            if s.active
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return HazardPointer {
                    _domain: self,
                    slot: cur,
                };
            }
            cur = s.next.load(Ordering::Acquire);
        }
        // Push a fresh slot.
        let slot = Box::into_raw(Box::new(Slot {
            hazard: AtomicUsize::new(0),
            active: AtomicBool::new(true),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
        let mut head = self.slots.load(Ordering::Acquire);
        loop {
            // SAFETY: `slot` is ours until the CAS below publishes it.
            unsafe { (*slot).next.store(head, Ordering::Relaxed) };
            match self
                .slots
                .compare_exchange(head, slot, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    return HazardPointer {
                        _domain: self,
                        slot,
                    }
                }
                Err(h) => head = h,
            }
        }
    }

    /// Retires an unlinked allocation for eventual destruction.
    ///
    /// # Safety
    ///
    /// * `ptr` must come from `Box::into_raw` and be unlinked: no thread can
    ///   newly reach it (threads that already protect it are exactly what
    ///   hazard pointers handle).
    /// * Must be called at most once per allocation.
    pub unsafe fn retire<T>(&self, ptr: *mut T) {
        assert!(!ptr.is_null(), "retire(null)");
        let node = Box::into_raw(Box::new(Retired {
            addr: ptr as usize,
            deferred: Deferred::destroy_boxed(ptr),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
        // Count before publishing: a concurrent scan may steal and free the
        // node the instant the CAS lands, and its `fetch_sub` must never
        // observe the counter without this increment.
        let pending = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        self.retired_count.fetch_add(1, Ordering::Relaxed);
        // Treiber push. The observed head is only re-linked as our `next`,
        // never dereferenced (a scanning thread may already own it).
        let mut head = self.retired.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is ours until the CAS below publishes it.
            unsafe { (*node).next.store(head, Ordering::Relaxed) };
            match self
                .retired
                .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        if pending >= SCAN_THRESHOLD {
            self.scan();
        }
    }

    /// Scans hazard slots and frees every retired object not currently
    /// protected. Returns how many objects were freed.
    pub fn eager_reclaim(&self) -> usize {
        self.scan()
    }

    fn scan(&self) -> usize {
        // Snapshot the hazard set *before* deciding what to free.
        //
        // StoreLoad fence, paired with the one in `protect`: the caller's
        // unlinking CAS must be globally ordered against the hazard loads
        // below. If a protector's fence precedes ours, its hazard store is
        // visible to this scan; if ours precedes its, the unlink is visible
        // to its validating re-read and `protect` retries. Acquire/Release
        // cannot order a store against a later load, so this is one of the
        // documented SeqCst fences of DESIGN.md §8 (the only form of SeqCst
        // nbbst-lint accepts).
        fence(Ordering::SeqCst);
        let mut hazards = HashSet::new();
        let mut cur = self.slots.load(Ordering::Acquire);
        // SAFETY: slots live until `Domain::drop` (exclusive), so the list
        // is traversable under `&self`.
        while let Some(s) = unsafe { cur.as_ref() } {
            let h = s.hazard.load(Ordering::Acquire);
            if h != 0 {
                hazards.insert(h);
            }
            cur = s.next.load(Ordering::Acquire);
        }
        // Steal the whole retired list: concurrent scans each own a
        // disjoint chain, so no node is inspected (let alone freed) twice.
        // Acquire pairs with the retirers' Release pushes so the stolen
        // nodes' contents are visible; Release orders this takeover before
        // the survivor re-publication below. Same publish/steal handoff as
        // the epoch registry (DESIGN.md §10).
        let mut cur = self.retired.swap(std::ptr::null_mut(), Ordering::AcqRel);
        let mut kept: *mut Retired = std::ptr::null_mut();
        let mut kept_tail: *mut Retired = std::ptr::null_mut();
        let mut freed = 0usize;
        while !cur.is_null() {
            // SAFETY: the swap above transferred exclusive ownership of the
            // whole chain; every node came from `Box::into_raw`.
            let node = unsafe { Box::from_raw(cur) };
            // Privately owned after the steal.
            cur = node.next.load(Ordering::Relaxed);
            if hazards.contains(&node.addr) {
                let raw = Box::into_raw(node);
                // SAFETY: `raw` is privately owned until re-published.
                unsafe { (*raw).next.store(kept, Ordering::Relaxed) };
                if kept.is_null() {
                    kept_tail = raw;
                }
                kept = raw;
            } else {
                freed += 1;
                let Retired { deferred, .. } = *node;
                deferred.execute();
            }
        }
        if !kept.is_null() {
            // Re-publish the protected survivors in one chain push.
            let mut head = self.retired.load(Ordering::Relaxed);
            loop {
                // SAFETY: the chain is still privately owned; the observed
                // head is only linked, never dereferenced.
                unsafe { (*kept_tail).next.store(head, Ordering::Relaxed) };
                match self
                    .retired
                    .compare_exchange(head, kept, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => break,
                    Err(h) => head = h,
                }
            }
        }
        if freed > 0 {
            self.pending.fetch_sub(freed, Ordering::Relaxed);
            self.freed_count.fetch_add(freed, Ordering::Relaxed);
        }
        freed
    }

    /// `(retired so far, freed so far)` counters.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.retired_count.load(Ordering::Relaxed),
            self.freed_count.load(Ordering::Relaxed),
        )
    }
}

impl Default for Domain {
    fn default() -> Self {
        Domain::new()
    }
}

impl Drop for Domain {
    fn drop(&mut self) {
        // All users are gone; free the slot list and any remaining retired
        // objects (their `Deferred`s run on drop).
        let mut cur = *self.slots.get_mut();
        while !cur.is_null() {
            // SAFETY: `&mut self` means no `HazardPointer` borrows the
            // domain; every slot came from `Box::into_raw` and is freed
            // exactly once by this walk.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next.load(Ordering::Relaxed);
        }
        let mut node = *self.retired.get_mut();
        while !node.is_null() {
            // SAFETY: `&mut self` gives exclusive ownership of the chain;
            // each node came from `Box::into_raw` and is freed exactly once
            // here. Its `Deferred` runs its destructor on drop.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next.load(Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (retired, freed) = self.stats();
        f.debug_struct("Domain")
            .field("retired", &retired)
            .field("freed", &freed)
            .finish()
    }
}

/// An acquired hazard slot; protects at most one pointer at a time.
pub struct HazardPointer<'d> {
    /// Held to tie the slot's lifetime to the domain's.
    _domain: &'d Domain,
    slot: *const Slot,
}

impl HazardPointer<'_> {
    fn slot(&self) -> &Slot {
        // SAFETY: slots live until the Domain drops; `'d` ties us to it.
        unsafe { &*self.slot }
    }

    /// Publish-and-validate loop: returns a pointer read from `src` that is
    /// protected until [`HazardPointer::reset`] or the next `protect` call.
    ///
    /// The returned pointer (if non-null and if it was reachable at the
    /// time of the validated read) will not be freed by
    /// [`Domain::retire`]/[`Domain::eager_reclaim`] while protected.
    pub fn protect<T>(&mut self, src: &AtomicPtr<T>) -> *mut T {
        loop {
            let p = src.load(Ordering::Acquire);
            self.slot().hazard.store(p as usize, Ordering::Release);
            // StoreLoad fence, paired with the one in `Domain::scan`: the
            // hazard publication above must be globally ordered against the
            // validating re-read below — the classic publish-then-validate
            // race that Acquire/Release cannot order (see DESIGN.md §8).
            fence(Ordering::SeqCst);
            // Validate: if `src` still holds `p`, then `p` was not retired
            // before our hazard became visible, so any scan must see it.
            let q = src.load(Ordering::Acquire);
            if p == q {
                return p;
            }
        }
    }

    /// Stops protecting the current pointer.
    pub fn reset(&mut self) {
        self.slot().hazard.store(0, Ordering::Release);
    }
}

impl Drop for HazardPointer<'_> {
    fn drop(&mut self) {
        let slot = self.slot();
        slot.hazard.store(0, Ordering::Release);
        slot.active.store(false, Ordering::Release);
    }
}

impl fmt::Debug for HazardPointer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HazardPointer")
            .field(
                "protecting",
                &(self.slot().hazard.load(Ordering::Relaxed) as *const ()),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize as Counter, Ordering};
    use std::sync::Arc;

    struct CountDrop(Arc<Counter>);
    impl Drop for CountDrop {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn protected_pointer_is_not_freed() {
        let domain = Domain::new();
        let drops = Arc::new(Counter::new(0));
        let slot = AtomicPtr::new(Box::into_raw(Box::new(CountDrop(drops.clone()))));

        let mut hp = domain.hazard_pointer();
        let p = hp.protect(&slot);
        assert!(!p.is_null());

        let unlinked = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
        unsafe { domain.retire(unlinked) };
        domain.eager_reclaim();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "protected object freed");

        hp.reset();
        domain.eager_reclaim();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unprotected_retire_frees_on_scan() {
        let domain = Domain::new();
        let drops = Arc::new(Counter::new(0));
        for _ in 0..10 {
            let p = Box::into_raw(Box::new(CountDrop(drops.clone())));
            unsafe { domain.retire(p) };
        }
        domain.eager_reclaim();
        assert_eq!(drops.load(Ordering::SeqCst), 10);
        let (retired, freed) = domain.stats();
        assert_eq!(retired, 10);
        assert_eq!(freed, 10);
    }

    #[test]
    fn threshold_triggers_scan_automatically() {
        let domain = Domain::new();
        let drops = Arc::new(Counter::new(0));
        for _ in 0..SCAN_THRESHOLD {
            let p = Box::into_raw(Box::new(CountDrop(drops.clone())));
            unsafe { domain.retire(p) };
        }
        assert_eq!(drops.load(Ordering::SeqCst), SCAN_THRESHOLD);
    }

    #[test]
    fn slots_are_reused() {
        let domain = Domain::new();
        let hp1 = domain.hazard_pointer();
        let s1 = hp1.slot;
        drop(hp1);
        let hp2 = domain.hazard_pointer();
        assert_eq!(s1, hp2.slot);
    }

    #[test]
    fn dropping_domain_frees_remaining_retired() {
        let drops = Arc::new(Counter::new(0));
        {
            let domain = Domain::new();
            let p = Box::into_raw(Box::new(CountDrop(drops.clone())));
            unsafe { domain.retire(p) };
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_stack_stress() {
        // Treiber stack protected by hazard pointers: push/pop from many
        // threads, assert no lost or double-freed nodes.
        struct Node {
            value: u64,
            next: *mut Node,
        }
        let domain = Arc::new(Domain::new());
        let head: Arc<AtomicPtr<Node>> = Arc::new(AtomicPtr::new(std::ptr::null_mut()));
        let popped_sum = Arc::new(Counter::new(0));
        let pushed_sum = Arc::new(Counter::new(0));

        const THREADS: usize = 4;
        const PER_THREAD: u64 = 2_000;

        let mut handles = Vec::new();
        for t in 0..THREADS {
            let domain = domain.clone();
            let head = head.clone();
            let popped_sum = popped_sum.clone();
            let pushed_sum = pushed_sum.clone();
            handles.push(std::thread::spawn(move || {
                let mut hp = domain.hazard_pointer();
                for i in 0..PER_THREAD {
                    let value = (t as u64) * PER_THREAD + i + 1;
                    // push
                    let node = Box::into_raw(Box::new(Node {
                        value,
                        next: std::ptr::null_mut(),
                    }));
                    loop {
                        let h = head.load(Ordering::Acquire);
                        unsafe { (*node).next = h };
                        if head
                            .compare_exchange(h, node, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            break;
                        }
                    }
                    pushed_sum.fetch_add(value as usize, Ordering::Relaxed);
                    // pop
                    loop {
                        let top = hp.protect(&head);
                        if top.is_null() {
                            break;
                        }
                        let next = unsafe { (*top).next };
                        if head
                            .compare_exchange(top, next, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            popped_sum
                                .fetch_add(unsafe { (*top).value } as usize, Ordering::Relaxed);
                            unsafe { domain.retire(top) };
                            break;
                        }
                    }
                    hp.reset();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every thread pops exactly one node per push, so the stack is empty
        // and every pushed value was popped exactly once.
        assert!(head.load(Ordering::SeqCst).is_null());
        assert_eq!(
            popped_sum.load(Ordering::SeqCst),
            pushed_sum.load(Ordering::SeqCst)
        );
        domain.eager_reclaim();
        let (retired, freed) = domain.stats();
        assert_eq!(retired, THREADS * PER_THREAD as usize);
        assert_eq!(freed, retired);
    }
}
