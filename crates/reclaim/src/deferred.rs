//! Type-erased deferred destruction of heap allocations.
//!
//! A [`Deferred`] is a pending `drop(Box::from_raw(ptr))` for some concrete
//! type, erased to a `(data pointer, drop function)` pair so that garbage
//! bags can hold destructions of heterogeneous types without allocating a
//! boxed closure per retired object.

use std::fmt;

/// A single pending destruction.
///
/// Created via [`Deferred::destroy_boxed`]; executed exactly once via
/// [`Deferred::execute`] (or on drop if never executed — bags that are
/// themselves dropped still release their garbage).
pub(crate) struct Deferred {
    data: *mut (),
    drop_fn: unsafe fn(*mut ()),
    /// Heap payload size of the pending allocation, for footprint stats.
    bytes: usize,
    executed: bool,
}

// SAFETY: a `Deferred` is only ever created from an owning pointer to a heap
// allocation that has been unlinked from any shared structure; executing it
// on another thread is the whole point of deferred reclamation. The epochs
// machinery guarantees exclusive access at execution time.
unsafe impl Send for Deferred {}

impl Deferred {
    /// Defers `drop(Box::from_raw(ptr))`.
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by `Box::into_raw` for the same type
    /// `T`, must not be used again by the caller, and no other `Deferred`
    /// may exist for it.
    pub(crate) unsafe fn destroy_boxed<T>(ptr: *mut T) -> Deferred {
        unsafe fn drop_box<T>(p: *mut ()) {
            drop(Box::from_raw(p.cast::<T>()));
        }
        Deferred {
            data: ptr.cast(),
            drop_fn: drop_box::<T>,
            bytes: std::mem::size_of::<T>(),
            executed: false,
        }
    }

    /// Payload bytes of the pending destruction (the pointee's size).
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    /// Runs the deferred destruction now.
    pub(crate) fn execute(mut self) {
        self.run();
    }

    fn run(&mut self) {
        if !self.executed {
            self.executed = true;
            // SAFETY: constructor contract — `data` is an un-aliased owning
            // pointer matching `drop_fn`'s type, executed at most once.
            unsafe { (self.drop_fn)(self.data) }
        }
    }
}

impl Drop for Deferred {
    fn drop(&mut self) {
        self.run();
    }
}

impl fmt::Debug for Deferred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deferred")
            .field("data", &self.data)
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Counted(Arc<AtomicUsize>);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn execute_runs_destructor_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        let ptr = Box::into_raw(Box::new(Counted(drops.clone())));
        let d = unsafe { Deferred::destroy_boxed(ptr) };
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        d.execute();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropping_unexecuted_deferred_still_frees() {
        let drops = Arc::new(AtomicUsize::new(0));
        let ptr = Box::into_raw(Box::new(Counted(drops.clone())));
        let d = unsafe { Deferred::destroy_boxed(ptr) };
        drop(d);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deferred_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Deferred>();
    }
}
