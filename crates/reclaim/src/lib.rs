//! Safe memory reclamation for the `nbbst` workspace, built from scratch.
//!
//! The PODC 2010 paper this workspace reproduces assumes its nodes and Info
//! records are "always allocated new memory locations" or managed by a
//! garbage collector such that "a memory location is not reallocated while
//! any process could reach that location by following a chain of pointers"
//! (Section 4.1). Rust has no ambient GC, so this crate supplies the
//! substrate:
//!
//! * [`Collector`] / [`Guard`] — **epoch-based reclamation** (the scheme the
//!   tree uses); the protocol and its safety argument are documented on
//!   [`Collector`] and in the `epoch` module source.
//! * [`Atomic`] / [`Owned`] / [`Shared`] — tagged atomic pointers whose
//!   spare low-order bits carry small integers, exactly the trick the paper
//!   uses to pack a 2-bit state next to an Info pointer in one CAS word.
//! * [`hazard::Domain`] — **hazard pointers**, the alternative scheme the
//!   paper's Section 6 discusses; provided for the reclamation-ablation
//!   experiments and validated independently in this crate's tests.
//!
//! # Why epochs for the tree (and not hazard pointers)?
//!
//! Helping makes hazard pointers awkward for the EFRB tree: a helper
//! follows `node → Info record → several other nodes` and would need to
//! re-validate every hop (the paper sketches the required algorithm
//! modifications in Section 6). Epoch pinning protects *all* loads between
//! pin and unpin wholesale, which matches the helping pattern: every
//! attempt of an operation runs under one pin, so every pointer it reads —
//! including Info records published by other threads — stays live until it
//! finishes the attempt.
//!
//! # Example
//!
//! ```
//! use nbbst_reclaim::{Atomic, Collector, Owned};
//! use std::sync::atomic::Ordering;
//!
//! let collector = Collector::new();
//! let head = Atomic::new("hello");
//!
//! let guard = collector.pin();
//! // Acquire: the loaded pointer is dereferenced below.
//! let h = head.load(Ordering::Acquire, &guard);
//! assert_eq!(unsafe { *h.deref() }, "hello");
//!
//! // Replace and retire the old value. Release publishes the new node;
//! // the failure ordering stays Relaxed because a failed CAS here is not
//! // followed by a dereference of the observed value.
//! head.compare_exchange(h, Owned::new("world"), Ordering::Release, Ordering::Relaxed, &guard)
//!     .expect("no contention");
//! unsafe { guard.defer_destroy(h) };
//! drop(guard);
//! # unsafe { drop(head.into_owned()) };
//! ```

#![warn(missing_docs, missing_debug_implementations)]

mod atomic;
mod deferred;
mod epoch;
pub mod hazard;
mod primitives;
pub mod sync;

pub use atomic::{low_bits, Atomic, CompareExchangeError, Owned, Pointer, Shared};
pub use epoch::{unprotected, Collector, Guard, LocalHandle, ReclaimStats};
