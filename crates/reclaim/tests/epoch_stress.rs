//! Cross-thread stress for the epoch collector, plus a behavioural
//! swap workload matching the contract of `crossbeam-epoch` (the reference
//! implementation of the same protocol) on an identical workload.

use nbbst_reclaim::{Atomic, Collector, Owned};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const ORD: Ordering = Ordering::SeqCst;

struct CountDrop(Arc<AtomicUsize>);
impl Drop for CountDrop {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// Many threads CAS-swap a shared slot, retiring every displaced value.
/// Every allocation must be freed exactly once by the time the collector
/// quiesces — drop-counting catches both leaks and double frees.
#[test]
fn swap_stress_frees_everything_exactly_once() {
    const THREADS: usize = 8;
    const SWAPS_PER_THREAD: usize = 5_000;
    let drops = Arc::new(AtomicUsize::new(0));
    let collector = Collector::new();
    let slot: Atomic<CountDrop> = Atomic::new(CountDrop(drops.clone()));

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let collector = collector.clone();
            let slot = &slot;
            let drops = drops.clone();
            s.spawn(move || {
                for _ in 0..SWAPS_PER_THREAD {
                    let guard = collector.pin();
                    let mut new = Owned::new(CountDrop(drops.clone()));
                    loop {
                        let cur = slot.load(ORD, &guard);
                        match slot.compare_exchange(cur, new, ORD, ORD, &guard) {
                            Ok(_) => {
                                // SAFETY: we unlinked `cur`; unique retire.
                                unsafe { guard.defer_destroy(cur) };
                                break;
                            }
                            Err(e) => new = e.new,
                        }
                    }
                }
            });
        }
    });

    // Quiesce. (Exited threads hand their garbage over from their TLS
    // destructors, which may land slightly after join; try_drain absorbs
    // that.)
    assert!(
        collector.try_drain(10_000),
        "drain timed out: {:?}",
        collector.stats()
    );
    let total = THREADS * SWAPS_PER_THREAD; // retired; +1 still in the slot
    assert_eq!(drops.load(Ordering::SeqCst), total);
    let stats = collector.stats();
    assert_eq!(stats.retired, total as u64);
    assert_eq!(stats.freed, total as u64);

    // Teardown frees the final resident value.
    // SAFETY: no other threads remain.
    unsafe { drop(slot.into_owned()) };
    assert_eq!(drops.load(Ordering::SeqCst), total + 1);
}

/// No value may be freed while any thread could still read it: readers
/// validate a sentinel in every object they reach.
#[test]
fn readers_never_observe_freed_memory() {
    const WRITER_SWAPS: usize = 20_000;
    struct Sentinel {
        magic: u64,
        payload: Box<u64>,
    }
    let collector = Collector::new();
    let slot: Atomic<Sentinel> = Atomic::new(Sentinel {
        magic: 0xDEAD_BEEF,
        payload: Box::new(0),
    });
    let stop = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..4 {
            let collector = collector.clone();
            let slot = &slot;
            let stop = &stop;
            s.spawn(move || {
                while stop.load(Ordering::SeqCst) == 0 {
                    let guard = collector.pin();
                    let cur = slot.load(ORD, &guard);
                    // SAFETY: loaded under the guard.
                    let r = unsafe { cur.deref() };
                    assert_eq!(r.magic, 0xDEAD_BEEF, "read of freed object");
                    std::hint::black_box(*r.payload);
                }
            });
        }
        {
            let collector = collector.clone();
            let slot = &slot;
            let stop = &stop;
            s.spawn(move || {
                for i in 0..WRITER_SWAPS {
                    let guard = collector.pin();
                    let new = Owned::new(Sentinel {
                        magic: 0xDEAD_BEEF,
                        payload: Box::new(i as u64),
                    });
                    let mut new = Some(new);
                    loop {
                        let cur = slot.load(ORD, &guard);
                        match slot.compare_exchange(
                            cur,
                            new.take().expect("one attempt"),
                            ORD,
                            ORD,
                            &guard,
                        ) {
                            Ok(_) => {
                                // SAFETY: unique unlink.
                                unsafe { guard.defer_destroy(cur) };
                                break;
                            }
                            Err(e) => new = Some(e.new),
                        }
                    }
                }
                stop.store(1, Ordering::SeqCst);
            });
        }
    });
    // SAFETY: teardown.
    unsafe { drop(slot.into_owned()) };
}

/// Writers that retire garbage and then park forever must not strand it:
/// their bags are published to the evictable registry at unpin, and the
/// main thread — which never retired anything — steals and frees them.
/// Byte accounting is exact here (every retirement is one `CountDrop`), so
/// this also pins down the footprint counters: deferred bytes drain to
/// zero and the peak never exceeds the total ever retired.
#[test]
fn parked_writers_garbage_is_stolen_and_bytes_drain_to_zero() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 2_000;
    let collector = Collector::new();
    let drops = Arc::new(AtomicUsize::new(0));
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let mut parks = Vec::new();
    let mut joins = Vec::new();
    for _ in 0..WRITERS {
        let collector = collector.clone();
        let drops = drops.clone();
        let done = done_tx.clone();
        let (park_tx, park_rx) = std::sync::mpsc::channel::<()>();
        parks.push(park_tx);
        joins.push(std::thread::spawn(move || {
            for _ in 0..PER_WRITER {
                let guard = collector.pin();
                let a: Atomic<CountDrop> = Atomic::new(CountDrop(drops.clone()));
                let s = a.load(ORD, &guard);
                // SAFETY: sole owner of the freshly made allocation.
                unsafe { guard.defer_destroy(s) };
            }
            done.send(()).unwrap();
            // Park forever (until teardown): never pin, flush, or exit.
            let _ = park_rx.recv();
        }));
    }
    for _ in 0..WRITERS {
        done_rx.recv().unwrap();
    }

    assert!(
        collector.try_drain(10_000),
        "parked writers' garbage not drained: {:?}",
        collector.stats()
    );
    let stats = collector.stats();
    let total = (WRITERS * PER_WRITER) as u64;
    let item_bytes = std::mem::size_of::<CountDrop>() as u64;
    assert_eq!(drops.load(Ordering::SeqCst) as u64, total);
    assert_eq!(stats.retired, total);
    assert_eq!(stats.freed, total);
    assert_eq!(stats.deferred_bytes, 0);
    assert_eq!(stats.evictable, 0);
    assert!(stats.bags_stolen > 0, "{stats:?}");
    assert!(stats.peak_deferred_bytes >= item_bytes, "{stats:?}");
    assert!(
        stats.peak_deferred_bytes <= total * item_bytes,
        "peak {} exceeds total ever retired {}",
        stats.peak_deferred_bytes,
        total * item_bytes
    );

    for p in &parks {
        p.send(()).unwrap();
    }
    for j in joins {
        j.join().unwrap();
    }
}

/// A multi-thread swap workload frees every retirement at quiescence —
/// the external contract crossbeam-epoch's reference implementation
/// provides. (This began life as a side-by-side parity run against
/// crossbeam itself; the crossbeam half was dropped when dependencies
/// moved to offline in-tree stand-ins. The expected drop count is exact,
/// so the remaining check is equally strong.)
#[test]
fn swap_workload_frees_everything_at_quiescence() {
    const THREADS: usize = 4;
    const SWAPS: usize = 2_000;

    let our_drops = Arc::new(AtomicUsize::new(0));
    {
        let collector = Collector::new();
        let slot: Atomic<CountDrop> = Atomic::new(CountDrop(our_drops.clone()));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let collector = collector.clone();
                let slot = &slot;
                let drops = our_drops.clone();
                s.spawn(move || {
                    for _ in 0..SWAPS {
                        let guard = collector.pin();
                        let mut new = Owned::new(CountDrop(drops.clone()));
                        loop {
                            let cur = slot.load(ORD, &guard);
                            match slot.compare_exchange(cur, new, ORD, ORD, &guard) {
                                Ok(_) => {
                                    unsafe { guard.defer_destroy(cur) };
                                    break;
                                }
                                Err(e) => new = e.new,
                            }
                        }
                    }
                });
            }
        });
        assert!(collector.try_drain(10_000), "drain timed out");
        unsafe { drop(slot.into_owned()) };
    }

    // The collector freed every retired object plus the resident one.
    let expected = THREADS * SWAPS + 1;
    assert_eq!(our_drops.load(Ordering::SeqCst), expected, "nbbst-reclaim");
}
