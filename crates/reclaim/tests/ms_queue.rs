//! The Michael–Scott lock-free queue, built on `nbbst-reclaim`'s epoch
//! substrate — an end-to-end validation of the collector under real
//! cross-thread ownership handoff (nodes allocated by producers, read
//! and retired by consumers), which is exactly the pattern the EFRB tree
//! relies on (Info records published by one thread, helped and retired by
//! another).

use nbbst_reclaim::{Atomic, Collector, Owned, Shared};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const ORD: Ordering = Ordering::SeqCst;

struct QNode<T> {
    value: Option<T>,
    next: Atomic<QNode<T>>,
}

struct MsQueue<T> {
    head: Atomic<QNode<T>>,
    tail: Atomic<QNode<T>>,
    collector: Collector,
}

unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T> MsQueue<T> {
    fn new() -> MsQueue<T> {
        // Dummy node shared by head and tail.
        let dummy = Owned::new(QNode {
            value: None,
            next: Atomic::null(),
        });
        let collector = Collector::new();
        let guard = collector.pin();
        let dummy = dummy.into_shared(&guard);
        let q = MsQueue {
            head: Atomic::null(),
            tail: Atomic::null(),
            collector: collector.clone(),
        };
        q.head.store(dummy, ORD);
        q.tail.store(dummy, ORD);
        drop(guard);
        q
    }

    fn push(&self, value: T) {
        let guard = self.collector.pin();
        let mut new = Owned::new(QNode {
            value: Some(value),
            next: Atomic::null(),
        });
        loop {
            let tail = self.tail.load(ORD, &guard);
            // SAFETY: tail is never null and protected by the guard.
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(ORD, &guard);
            if !next.is_null() {
                // Tail lagging: help swing it, then retry.
                let _ = self.tail.compare_exchange(tail, next, ORD, ORD, &guard);
                continue;
            }
            match tail_ref
                .next
                .compare_exchange(Shared::null(), new, ORD, ORD, &guard)
            {
                Ok(installed) => {
                    let _ = self
                        .tail
                        .compare_exchange(tail, installed, ORD, ORD, &guard);
                    return;
                }
                Err(e) => new = e.new,
            }
        }
    }

    fn pop(&self) -> Option<T>
    where
        T: Clone,
    {
        let guard = self.collector.pin();
        loop {
            let head = self.head.load(ORD, &guard);
            let head_ref = unsafe { head.deref() };
            let next = head_ref.next.load(ORD, &guard);
            let Some(next_ref) = (unsafe { next.as_ref() }) else {
                return None; // empty
            };
            // Read the value BEFORE the CAS: after we win, another thread
            // may already be freeing... no: the epoch guard protects it.
            // Read after winning is also fine; clone to be explicit.
            if self
                .head
                .compare_exchange(head, next, ORD, ORD, &guard)
                .is_ok()
            {
                let value = next_ref.value.clone();
                // The OLD dummy head is now unreachable; retire it. The
                // popped node becomes the new dummy (its value is still
                // present but never observed again — cloned out above).
                // SAFETY: unique unlinker retires.
                unsafe { guard.defer_destroy(head) };
                return value;
            }
        }
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        // SAFETY: teardown, single-threaded.
        let guard = unsafe { nbbst_reclaim::unprotected() };
        let mut cur = self.head.load(ORD, &guard);
        while !cur.is_null() {
            // SAFETY: exclusive access; the chain is ours.
            let node = unsafe { Box::from_raw(cur.as_raw() as *mut QNode<T>) };
            cur = node.next.load(ORD, &guard);
        }
    }
}

#[test]
fn fifo_single_threaded() {
    let q = MsQueue::new();
    assert_eq!(q.pop(), None);
    for i in 0..100 {
        q.push(i);
    }
    for i in 0..100 {
        assert_eq!(q.pop(), Some(i));
    }
    assert_eq!(q.pop(), None);
}

#[test]
fn mpmc_stress_no_loss_no_duplication() {
    const PRODUCERS: usize = 4;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: u64 = 5_000;

    let q = Arc::new(MsQueue::new());
    let popped = Arc::new(AtomicUsize::new(0));
    let sum = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let q = q.clone();
            s.spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.push(p as u64 * PER_PRODUCER + i + 1);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let q = q.clone();
            let popped = popped.clone();
            let sum = sum.clone();
            s.spawn(move || loop {
                if popped.load(Ordering::SeqCst) >= PRODUCERS * PER_PRODUCER as usize {
                    break;
                }
                if let Some(v) = q.pop() {
                    popped.fetch_add(1, Ordering::SeqCst);
                    sum.fetch_add(v as usize, Ordering::SeqCst);
                } else {
                    std::hint::spin_loop();
                }
            });
        }
    });

    let n = (PRODUCERS as u64) * PER_PRODUCER;
    let max = n; // values are 1..=n when P*PER laid out contiguously
    let expected: u64 = max * (max + 1) / 2;
    assert_eq!(popped.load(Ordering::SeqCst) as u64, n);
    assert_eq!(sum.load(Ordering::SeqCst) as u64, expected);
    assert_eq!(q.pop(), None);
}

#[test]
fn values_survive_queue_transit_without_use_after_free() {
    // Heap-heavy payloads so ASan/Miri-style issues would trip
    // allocator assertions even in a plain run.
    let q = MsQueue::new();
    std::thread::scope(|s| {
        let producer = s.spawn(|| {
            for i in 0..2_000u64 {
                q.push(vec![i; 8]);
            }
        });
        let mut received = 0;
        while received < 2_000 {
            if let Some(v) = q.pop() {
                assert_eq!(v.len(), 8);
                assert!(v.iter().all(|&x| x == v[0]));
                received += 1;
            }
        }
        producer.join().unwrap();
    });
}
