//! One collector, many owners: the constructor path used by sharded
//! frontends, where every shard holds a clone of a single [`Collector`]
//! so all shards retire into one reclamation domain.
//!
//! What must hold (DESIGN.md §11):
//!
//! * clones share the epoch domain and the evictable-bag registry, so a
//!   thread pinned through *any* clone can steal and free garbage
//!   retired through *every* clone;
//! * dropping all but one clone does **not** tear the domain down —
//!   teardown runs only when the last clone drops;
//! * stats are domain-global: every clone reports the same counters.

use nbbst_reclaim::{Atomic, Collector, Owned};
use std::sync::atomic::Ordering;

/// Retires `n` heap values through `collector`, as one "shard" would.
fn churn_through(collector: &Collector, n: usize) {
    let slot = Atomic::new(0u64);
    for i in 0..n {
        let guard = collector.pin();
        // Acquire: the loaded pointer is retired (and later freed), so the
        // stealing thread must see its initialization.
        let old = slot.load(Ordering::Acquire, &guard);
        slot.compare_exchange(
            old,
            Owned::new(i as u64),
            Ordering::Release,
            Ordering::Relaxed,
            &guard,
        )
        .expect("single-threaded CAS succeeds");
        // SAFETY: `old` was just unlinked by the successful CAS above and
        // is retired exactly once.
        unsafe { guard.defer_destroy(old) };
    }
    let guard = collector.pin();
    let last = slot.load(Ordering::Acquire, &guard);
    // SAFETY: `last` is the only remaining value and is retired once.
    unsafe { guard.defer_destroy(last) };
}

#[test]
fn clones_share_one_domain() {
    let a = Collector::new();
    let b = a.clone();
    let unrelated = Collector::new();
    assert!(a.ptr_eq(&b));
    assert!(b.ptr_eq(&a));
    assert!(!a.ptr_eq(&unrelated));

    churn_through(&a, 100);
    churn_through(&b, 100);
    // Domain-global stats: both clones see all 202 retirements
    // (100 replaced + 1 final per churn).
    assert_eq!(a.stats().retired, b.stats().retired);
    assert_eq!(a.stats().retired, 202);

    assert!(a.try_drain(1_000), "{:?}", a.stats());
    let s = b.stats();
    assert_eq!(s.retired, s.freed, "{s:?}");
    assert_eq!(s.deferred_bytes, 0, "{s:?}");
}

#[test]
fn garbage_from_many_clones_drains_through_one() {
    // N "shards", each a clone, each churned on its own thread; a single
    // surviving clone drains everything the others retired.
    const SHARDS: usize = 8;
    let root = Collector::new();
    let clones: Vec<Collector> = (0..SHARDS).map(|_| root.clone()).collect();

    std::thread::scope(|s| {
        for c in &clones {
            s.spawn(move || churn_through(c, 500));
        }
    });

    // Dropping every per-shard clone must not tear down the domain: the
    // root clone is still live.
    drop(clones);
    let before = root.stats();
    assert_eq!(before.retired, (500 + 1) * SHARDS as u64, "{before:?}");

    assert!(root.try_drain(10_000), "{:?}", root.stats());
    let s = root.stats();
    assert_eq!(s.retired, s.freed, "{s:?}");
    assert_eq!(s.evictable, 0, "{s:?}");
    assert_eq!(s.deferred_bytes, 0, "{s:?}");
    // The per-thread churns published bags at unpin; cross-thread frees go
    // through the registry.
    assert!(s.bags_published > 0, "{s:?}");
}

#[test]
fn leaky_flag_is_shared_by_clones() {
    let leaky = Collector::new_leaky();
    let clone = leaky.clone();
    assert!(clone.is_leaky());
    churn_through(&clone, 50);
    clone.flush();
    let s = leaky.stats();
    assert_eq!(s.freed, 0, "leaky domains never free: {s:?}");
}
