//! # nbbst-core — the EFRB non-blocking binary search tree
//!
//! A faithful, production-quality implementation of **Ellen, Fatourou,
//! Ruppert and van Breugel, "Non-blocking Binary Search Trees", PODC
//! 2010**: the first complete, linearizable, lock-free BST built from
//! reads, writes and single-word CAS.
//!
//! ## Algorithm in one paragraph
//!
//! The tree is *leaf-oriented*: internal nodes only route, all dictionary
//! keys live in leaves, and two sentinel keys `∞1 < ∞2` pin the shape at
//! the top (Figure 6). Every internal node carries an *update word* — one
//! CAS word packing a state (`Clean`/`IFlag`/`DFlag`/`Mark`) with a pointer
//! to an *Info record*. An `Insert` flags the parent (`iflag`), swings one
//! child pointer to a fresh three-node subtree (`ichild`), and unflags
//! (`iunflag`). A `Delete` flags the grandparent (`dflag`), permanently
//! marks the parent (`mark`), splices it out (`dchild`), and unflags
//! (`dunflag`) — or, if the mark fails, removes its flag with a
//! `backtrack` CAS and retries. Because each flag publishes an Info record
//! describing the remaining steps, any thread that runs into a flag can
//! *help* the stalled operation to completion — this is what makes the
//! structure non-blocking under arbitrary crash failures.
//!
//! ## Entry points
//!
//! * [`NbBst`] — the tree. `insert` / `remove` / `contains` / `get`
//!   (also via [`nbbst_dictionary::ConcurrentMap`]).
//! * [`NbBst::with_stats`] + [`StatsSnapshot`] — per-CAS-type counters
//!   reproducing the paper's Figure 4 state machine.
//! * [`raw`] — stepped, one-CAS-at-a-time operation drivers for
//!   deterministic schedules (crash injection, the paper's Figure 5
//!   snapshot, the Section 6 starvation schedule).
//!
//! ## Memory management
//!
//! The paper assumes garbage collection; here every attempt runs under an
//! epoch pin ([`nbbst_reclaim`]), nodes are retired at their child CAS and
//! Info records at their unflag/backtrack CAS — the scheme sketched in the
//! paper's Section 6. See DESIGN.md §2 for the ABA discharge argument.

#![warn(missing_docs, missing_debug_implementations)]

mod cleanup;
mod extensions;
mod node;
pub mod raw;
mod set;
mod state;
mod stats;
mod tree;
mod view;

pub use set::NbSet;
pub use state::State;
pub use stats::{StatsSnapshot, TreeStats};
pub use tree::NbBst;

#[cfg(test)]
mod tests {
    use super::*;
    use nbbst_dictionary::{ConcurrentMap, SeqMap};
    use nbbst_model::LeafBst;

    #[test]
    fn empty_tree_finds_nothing() {
        let t: NbBst<u64, u64> = NbBst::new();
        assert!(!t.contains_key(&1));
        assert_eq!(t.get_cloned(&1), None);
        assert_eq!(t.len_slow(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_find_remove_roundtrip() {
        let t: NbBst<u64, &str> = NbBst::new();
        assert!(t.insert_entry(5, "five").is_ok());
        assert!(t.contains_key(&5));
        assert_eq!(t.get_cloned(&5), Some("five"));
        assert!(t.remove_key(&5));
        assert!(!t.contains_key(&5));
        assert!(!t.remove_key(&5));
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_insert_returns_inputs() {
        let t: NbBst<u64, String> = NbBst::new();
        assert!(t.insert_entry(9, "nine".to_string()).is_ok());
        let (k, v) = t.insert_entry(9, "neuf".to_string()).unwrap_err();
        assert_eq!(k, 9);
        assert_eq!(v, "neuf");
        assert_eq!(t.get_cloned(&9), Some("nine".to_string()));
    }

    #[test]
    fn remove_entry_returns_value() {
        let t: NbBst<u64, u64> = NbBst::new();
        t.insert_entry(3, 30).unwrap();
        assert_eq!(t.remove_entry(&3), Some(30));
        assert_eq!(t.remove_entry(&3), None);
    }

    #[test]
    fn matches_sequential_model_on_a_scripted_run() {
        let t: NbBst<u64, u64> = NbBst::new();
        let mut m: LeafBst<u64, u64> = LeafBst::new();
        let script: Vec<(u8, u64)> = (0..500)
            .map(|i| ((i % 3) as u8, (i * 31 + 7) % 64))
            .collect();
        for (op, k) in script {
            match op {
                0 => assert_eq!(
                    t.insert_entry(k, k).is_ok(),
                    SeqMap::insert(&mut m, k, k),
                    "insert {k}"
                ),
                1 => assert_eq!(t.remove_key(&k), SeqMap::remove(&mut m, &k), "remove {k}"),
                _ => assert_eq!(t.contains_key(&k), SeqMap::contains(&m, &k), "find {k}"),
            }
            t.check_invariants().unwrap();
        }
        assert_eq!(t.keys_snapshot(), m.keys().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let t: NbBst<u64, u64> = NbBst::new();
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..500 {
                        assert!(t.insert(tid * 1_000 + i, i));
                    }
                });
            }
        });
        assert_eq!(t.quiescent_len(), 8 * 500);
        t.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_mixed_workload_preserves_invariants_and_figure4() {
        let t: NbBst<u64, u64> = NbBst::with_stats();
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let t = &t;
                s.spawn(move || {
                    let mut x = tid + 1;
                    for _ in 0..3_000 {
                        // xorshift
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 128;
                        match x % 3 {
                            0 => {
                                t.insert(k, k);
                            }
                            1 => {
                                t.remove(&k);
                            }
                            _ => {
                                t.contains(&k);
                            }
                        }
                    }
                });
            }
        });
        t.check_invariants().unwrap();
        t.stats().unwrap().check_figure4().unwrap();
    }

    #[test]
    fn contended_single_key_stays_consistent() {
        // All threads fight over the same few keys: maximum helping. On a
        // single-core host, genuine mid-operation preemption is rare, so
        // plant one crashed flagged insert up front — the first worker
        // whose update crosses it MUST help (deterministic helping).
        let t: NbBst<u64, u64> = NbBst::with_stats();
        {
            let mut corpse = crate::raw::RawInsert::new(&t, 2, 2);
            assert!(corpse.search().is_ready());
            assert!(corpse.flag());
            corpse.abandon();
        }
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let t = &t;
                s.spawn(move || {
                    let mut x = tid * 7 + 1;
                    for i in 0..2_000u64 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let k = (x >> 33) % 2;
                        if (x >> 7) % 2 == 0 {
                            t.insert(k, i);
                        } else {
                            t.remove(&k);
                        }
                    }
                });
            }
        });
        t.check_invariants().unwrap();
        let stats = t.stats().unwrap();
        stats.check_figure4().unwrap();
        // The planted corpse guarantees at least one help (plus whatever
        // genuine contention produced).
        assert!(stats.helps > 0, "expected helping, got {stats:?}");
        assert!(
            t.contains_key(&2),
            "the crashed insert was completed by a helper"
        );
    }

    #[test]
    fn values_are_not_overwritten_by_duplicate_insert_under_contention() {
        let t: NbBst<u64, u64> = NbBst::new();
        t.insert(1, 100);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        t.insert(1, 999); // all duplicates
                    }
                });
            }
        });
        assert_eq!(t.get_cloned(&1), Some(100));
    }

    #[test]
    fn drop_reclaims_everything_without_crashing() {
        // Exercised properly under Miri/ASan; here we at least drive the
        // teardown paths, including retired-but-not-yet-freed garbage.
        let t: NbBst<u64, u64> = NbBst::new();
        for k in 0..1_000 {
            t.insert(k, k);
        }
        for k in (0..1_000).step_by(2) {
            t.remove(&k);
        }
        drop(t);
    }

    #[test]
    fn leaky_tree_retires_but_never_frees() {
        let t: NbBst<u64, u64> = NbBst::new_leaky();
        for k in 0..200 {
            t.insert(k, k);
        }
        for k in 0..200 {
            t.remove(&k);
        }
        t.collector().try_drain(100);
        let s = t.collector().stats();
        assert!(s.retired > 0);
        assert_eq!(s.freed, 0, "leaky collector must never free: {s:?}");
        t.check_invariants().unwrap();
        // Tree drop must still free the REACHABLE structure (only retired
        // garbage leaks).
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NbBst<u64, u64>>();
    }
}
