//! Stepped operation drivers: run `Insert`/`Delete`/`Find` **one CAS step
//! at a time**, under test control.
//!
//! The paper's proof reasons about interleavings of individual CAS steps
//! (`iflag`, `ichild`, `iunflag`, `dflag`, `mark`, `dchild`, `dunflag`,
//! `backtrack`). These drivers expose exactly those steps so tests and
//! experiment binaries can construct the paper's scenarios
//! deterministically:
//!
//! * **Figure 3** — the races that single-CAS updates would suffer, and the
//!   EFRB protocol's immunity to the same schedules;
//! * **Figure 5** — a snapshot with a doomed `Delete` and a winning
//!   `Insert` in flight simultaneously;
//! * **crash tolerance (T6)** — flag a node, then *abandon* the operation
//!   (the thread "crashes"); other threads help it to completion;
//! * **Section 6's adversarial schedule (T7)** — a `Find` forever chased
//!   down a growing-and-shrinking path.
//!
//! Each driver holds its own epoch [`Guard`] for its whole lifetime, so
//! every pointer it caches stays valid however long the test pauses it —
//! this mimics a stalled thread, which in EBR likewise blocks reclamation.
//!
//! The step methods update the same [stats](crate::TreeStats) counters as
//! the normal paths, so Figure-4 identities keep holding in stepped tests.
//!
//! # Examples
//!
//! Crash a flagged insert and let a helper finish it:
//!
//! ```
//! use nbbst_core::{raw::RawInsert, NbBst};
//!
//! let tree: NbBst<u64, u64> = NbBst::new();
//! tree.insert_entry(10, 0).unwrap();
//!
//! let mut ins = RawInsert::new(&tree, 20, 0);
//! assert!(ins.search().is_ready());
//! assert!(ins.flag());      // iflag done ...
//! ins.abandon();            // ... and the "thread" crashes here.
//!
//! // Another operation on the same neighborhood helps the stalled insert.
//! assert!(tree.insert_entry(20, 1).is_err()); // duplicate: 20 IS present
//! assert!(tree.contains_key(&20));
//! tree.check_invariants().unwrap();
//! ```

use crate::node::{DInfo, IInfo, Info, Node, UpdateRef, UpdateWordExt};
use crate::state::State;
use crate::tree::NbBst;
use nbbst_dictionary::SentinelKey;
use nbbst_reclaim::{Guard, Owned, Shared};
use std::fmt;
use std::sync::atomic::Ordering;

/// Result of a stepped insert's `Search` phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertSearch {
    /// The key is already present; the insert would return `false`.
    Duplicate,
    /// The parent's update word is not `Clean`; a real insert would help
    /// (the blocking state is given) and retry.
    Busy(State),
    /// Ready to attempt the iflag CAS.
    Ready,
}

impl InsertSearch {
    /// `true` for [`InsertSearch::Ready`].
    pub fn is_ready(&self) -> bool {
        matches!(self, InsertSearch::Ready)
    }
}

/// Result of a stepped delete's `Search` phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteSearch {
    /// The key is not present; the delete would return `false`.
    NotFound,
    /// Grandparent or parent busy (the blocking state is given).
    Busy(State),
    /// Ready to attempt the dflag CAS.
    Ready,
}

impl DeleteSearch {
    /// `true` for [`DeleteSearch::Ready`].
    pub fn is_ready(&self) -> bool {
        matches!(self, DeleteSearch::Ready)
    }
}

/// Result of a stepped delete's mark CAS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkOutcome {
    /// The mark CAS succeeded (or a helper of this same operation already
    /// marked the parent): the deletion can no longer fail.
    Marked,
    /// The mark CAS failed; the paper's `HelpDelete` would help the blocker
    /// and perform a backtrack CAS.
    Failed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InsertPhase {
    Created,
    Searched,
    Flagged,
    ChildDone,
    Done,
}

/// A stepped `Insert` (Figure 8), driven one CAS at a time.
///
/// Step order: [`RawInsert::search`] → [`RawInsert::flag`] →
/// [`RawInsert::execute_child`] → [`RawInsert::unflag`], or
/// [`RawInsert::abandon`] at any point to simulate a crash.
pub struct RawInsert<'t, K, V> {
    tree: &'t NbBst<K, V>,
    key: K,
    guard: Guard,
    phase: InsertPhase,
    /// The `new` leaf (line 44), allocated once. Null after hand-off.
    new_leaf: *mut Node<K, V>,
    /// Search results (raw words; revalidated by the CAS steps).
    p: *const Node<K, V>,
    pupdate_bits: usize,
    l: *const Node<K, V>,
    /// Published IInfo record (null until `flag` succeeds).
    op: *const Info<K, V>,
}

impl<'t, K, V> RawInsert<'t, K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Prepares an insert of `(key, value)` (allocates the `new` leaf).
    pub fn new(tree: &'t NbBst<K, V>, key: K, value: V) -> RawInsert<'t, K, V> {
        let new_leaf = Box::into_raw(Box::new(Node::leaf(
            SentinelKey::Key(key.clone()),
            Some(value),
        )));
        let guard = tree.pin();
        RawInsert {
            tree,
            key,
            guard,
            phase: InsertPhase::Created,
            new_leaf,
            p: std::ptr::null(),
            pupdate_bits: 0,
            l: std::ptr::null(),
            op: std::ptr::null(),
        }
    }

    /// Runs the `Search` (lines 49–51): locates the leaf to replace and
    /// records the parent and its update word.
    ///
    /// May be re-run (a fresh attempt) any time before [`RawInsert::flag`]
    /// succeeds.
    pub fn search(&mut self) -> InsertSearch {
        assert!(
            matches!(self.phase, InsertPhase::Created | InsertPhase::Searched),
            "search() after flag(); the paper restarts attempts from Search"
        );
        let s = self.tree.search(&self.key, &self.guard);
        // SAFETY: leaf under our long-lived guard.
        let l_ref = unsafe { s.l.deref() };
        if l_ref.key.as_key() == Some(&self.key) {
            return InsertSearch::Duplicate;
        }
        self.p = s.p.as_raw();
        self.l = s.l.as_raw();
        self.pupdate_bits = s.pupdate.into_data();
        self.phase = InsertPhase::Searched;
        if s.pupdate.state() != State::Clean {
            InsertSearch::Busy(s.pupdate.state())
        } else {
            InsertSearch::Ready
        }
    }

    /// Helps the operation blocking the parent (the paper's line 51) and
    /// restarts this attempt — call after [`RawInsert::search`] returned
    /// [`InsertSearch::Busy`].
    ///
    /// # Panics
    ///
    /// Panics unless the last step was a `search`.
    pub fn help_blocker(&mut self) {
        assert_eq!(
            self.phase,
            InsertPhase::Searched,
            "help_blocker() requires search()"
        );
        // SAFETY: `pupdate_bits` was read by our search under the
        // still-held guard, so any Info record it tags is protected.
        let word: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.pupdate_bits) };
        if word.state() != State::Clean {
            self.tree.help(word, &self.guard);
        }
        self.phase = InsertPhase::Created; // restart from Search
    }

    /// Attempts the **iflag** CAS (line 56). On success the insertion is
    /// guaranteed to complete (possibly via helpers).
    ///
    /// On failure, re-run [`RawInsert::search`] before flagging again.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`RawInsert::search`].
    pub fn flag(&mut self) -> bool {
        assert_eq!(
            self.phase,
            InsertPhase::Searched,
            "flag() requires search()"
        );
        // Build the Figure 1 replacement subtree (lines 52–54).
        // SAFETY: `l` is guard-protected since our search read it.
        let l_ref = unsafe { &*self.l };
        let new_sibling =
            Box::into_raw(Box::new(Node::leaf(l_ref.key.clone(), l_ref.value.clone())));
        let new_key = SentinelKey::Key(self.key.clone());
        let (routing, left, right) = if new_key < l_ref.key {
            (
                l_ref.key.clone(),
                self.new_leaf as *const _,
                new_sibling as *const _,
            )
        } else {
            (new_key, new_sibling as *const _, self.new_leaf as *const _)
        };
        let new_internal = Box::into_raw(Box::new(Node::internal(routing, left, right)));
        let op = Owned::new(Info::Insert(IInfo {
            p: self.p,
            l: self.l,
            new_internal,
        }))
        .with_tag(State::IFlag.tag());

        self.tree.bump_stat(|s| &s.iflag_attempts);
        // SAFETY: `p` is guard-protected since our search read it.
        let p_ref = unsafe { &*self.p };
        let expected: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.pupdate_bits) };
        // Release publishes the fresh IInfo record; the stepped driver does
        // not help on failure, so the failed value needs no Acquire.
        match p_ref.update.compare_exchange(
            expected,
            op,
            Ordering::Release,
            Ordering::Relaxed,
            &self.guard,
        ) {
            Ok(word) => {
                self.tree.bump_stat(|s| &s.iflag_success);
                // Once flagged, the insertion is guaranteed to complete
                // (Section 3), so it counts as a successful Insert now.
                self.tree.bump_stat(|s| &s.inserts);
                self.tree.bump_stat(|s| &s.inserts_true);
                self.op = word.as_raw();
                self.new_leaf = std::ptr::null_mut(); // owned by the tree now
                self.phase = InsertPhase::Flagged;
                true
            }
            Err(e) => {
                // SAFETY: the speculative nodes were never published.
                unsafe {
                    drop(Box::from_raw(new_sibling));
                    drop(Box::from_raw(new_internal));
                }
                drop(e.new);
                self.phase = InsertPhase::Created;
                false
            }
        }
    }

    /// Attempts the **ichild** CAS (line 66 / 115 / 117). Returns whether
    /// *this* call performed it (a helper may have beaten us; the insert
    /// still completes either way).
    ///
    /// # Panics
    ///
    /// Panics unless [`RawInsert::flag`] succeeded.
    pub fn execute_child(&mut self) -> bool {
        assert_eq!(
            self.phase,
            InsertPhase::Flagged,
            "execute_child() requires flag()"
        );
        let op_word: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.op as usize) };
        // SAFETY: published Info record, protected by our guard.
        let info = unsafe { op_word.deref() }.as_insert();
        let p = unsafe { &*info.p };
        let l: Shared<'_, Node<K, V>> = unsafe { Shared::from_data(info.l as usize) };
        // SAFETY: the nodes named by a published IInfo stay guard-protected
        // until its unflag winner retires them.
        let new: Shared<'_, Node<K, V>> = unsafe { Shared::from_data(info.new_internal as usize) };
        let won = self.tree.cas_child(p, l, new, &self.guard);
        if won {
            self.tree.bump_stat(|s| &s.ichild_success);
            self.tree.bump_stat(|s| &s.nodes_retired);
            // SAFETY: we unlinked `l`; unique retirement.
            unsafe { self.guard.defer_destroy(l) };
        }
        self.phase = InsertPhase::ChildDone;
        won
    }

    /// Attempts the **iunflag** CAS (line 67). Returns whether this call
    /// performed it.
    ///
    /// # Panics
    ///
    /// Panics unless [`RawInsert::execute_child`] ran.
    pub fn unflag(&mut self) -> bool {
        assert_eq!(
            self.phase,
            InsertPhase::ChildDone,
            "unflag() requires execute_child()"
        );
        // SAFETY: `op` was published by our flag CAS; the record and the
        // nodes it names are guard-protected until unflag retires them.
        let op_word: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.op as usize) };
        let info = unsafe { op_word.deref() }.as_insert();
        let p = unsafe { &*info.p };
        let expected = op_word.with_tag(State::IFlag.tag());
        let clean = op_word.with_tag(State::Clean.tag());
        // Release: observers of Clean must also see the ichild splice.
        let won = p
            .update
            .compare_exchange(
                expected,
                clean,
                Ordering::Release,
                Ordering::Relaxed,
                &self.guard,
            )
            .is_ok();
        if won {
            self.tree.bump_stat(|s| &s.iunflag_success);
            self.tree.bump_stat(|s| &s.infos_retired);
            // SAFETY: unique unflag winner retires the record.
            unsafe { self.guard.defer_destroy(op_word) };
        }
        self.phase = InsertPhase::Done;
        won
    }

    /// Finishes the insert the way the real code would (`HelpInsert`).
    ///
    /// # Panics
    ///
    /// Panics unless [`RawInsert::flag`] succeeded.
    pub fn complete(mut self) {
        assert!(
            matches!(self.phase, InsertPhase::Flagged | InsertPhase::ChildDone),
            "complete() requires a successful flag()"
        );
        // SAFETY: `op` was published by our flag CAS and is guard-protected.
        let op_word: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.op as usize) };
        self.tree.help_insert(op_word, &self.guard);
        self.phase = InsertPhase::Done;
    }

    /// Simulates a crash: stop taking steps forever. If the operation was
    /// already flagged, the published Info record lets any other thread
    /// finish it; if not, the speculative leaf is freed.
    pub fn abandon(self) {
        // Drop does the right thing for both cases.
    }
}

impl<K, V> Drop for RawInsert<'_, K, V> {
    fn drop(&mut self) {
        if !self.new_leaf.is_null() {
            // SAFETY: unpublished leaf, exclusively ours.
            unsafe { drop(Box::from_raw(self.new_leaf)) };
        }
    }
}

impl<K: fmt::Debug, V> fmt::Debug for RawInsert<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RawInsert")
            .field("key", &self.key)
            .field("phase", &self.phase)
            .finish()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeletePhase {
    Created,
    Searched,
    Flagged,
    Marked,
    ChildDone,
    Done,
}

/// A stepped `Delete` (Figure 9), driven one CAS at a time.
///
/// Step order: [`RawDelete::search`] → [`RawDelete::flag`] →
/// [`RawDelete::mark`] → [`RawDelete::execute_child`] →
/// [`RawDelete::unflag`]; after a failed `mark`, [`RawDelete::backtrack`];
/// [`RawDelete::abandon`] anywhere simulates a crash.
pub struct RawDelete<'t, K, V> {
    tree: &'t NbBst<K, V>,
    key: K,
    guard: Guard,
    phase: DeletePhase,
    gp: *const Node<K, V>,
    p: *const Node<K, V>,
    l: *const Node<K, V>,
    pupdate_bits: usize,
    gpupdate_bits: usize,
    op: *const Info<K, V>,
}

impl<'t, K, V> RawDelete<'t, K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Prepares a delete of `key`.
    pub fn new(tree: &'t NbBst<K, V>, key: K) -> RawDelete<'t, K, V> {
        let guard = tree.pin();
        RawDelete {
            tree,
            key,
            guard,
            phase: DeletePhase::Created,
            gp: std::ptr::null(),
            p: std::ptr::null(),
            l: std::ptr::null(),
            pupdate_bits: 0,
            gpupdate_bits: 0,
            op: std::ptr::null(),
        }
    }

    /// Runs the `Search` (lines 75–78).
    pub fn search(&mut self) -> DeleteSearch {
        assert!(
            matches!(self.phase, DeletePhase::Created | DeletePhase::Searched),
            "search() after flag(); restart semantics match the paper"
        );
        let s = self.tree.search(&self.key, &self.guard);
        // SAFETY: `s.l` is a leaf the search just read under our guard.
        let l_ref = unsafe { s.l.deref() };
        if l_ref.key.as_key() != Some(&self.key) {
            return DeleteSearch::NotFound;
        }
        self.gp = s.gp.as_raw();
        self.p = s.p.as_raw();
        self.l = s.l.as_raw();
        self.pupdate_bits = s.pupdate.into_data();
        self.gpupdate_bits = s.gpupdate.into_data();
        self.phase = DeletePhase::Searched;
        if s.gpupdate.state() != State::Clean {
            DeleteSearch::Busy(s.gpupdate.state())
        } else if s.pupdate.state() != State::Clean {
            DeleteSearch::Busy(s.pupdate.state())
        } else {
            DeleteSearch::Ready
        }
    }

    /// Helps the operation blocking the grandparent or parent (the
    /// paper's lines 77–78) and restarts this attempt — call after
    /// [`RawDelete::search`] returned [`DeleteSearch::Busy`].
    ///
    /// # Panics
    ///
    /// Panics unless the last step was a `search`.
    pub fn help_blocker(&mut self) {
        assert_eq!(
            self.phase,
            DeletePhase::Searched,
            "help_blocker() requires search()"
        );
        // SAFETY: both words were read by our search under the still-held
        // guard, so any Info record they tag is protected.
        let gpw: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.gpupdate_bits) };
        let pw: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.pupdate_bits) };
        if gpw.state() != State::Clean {
            self.tree.help(gpw, &self.guard);
        } else if pw.state() != State::Clean {
            self.tree.help(pw, &self.guard);
        }
        self.phase = DeletePhase::Created; // restart from Search
    }

    /// Attempts the **dflag** CAS (line 81).
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`RawDelete::search`].
    pub fn flag(&mut self) -> bool {
        assert_eq!(
            self.phase,
            DeletePhase::Searched,
            "flag() requires search()"
        );
        let op = Owned::new(Info::Delete(DInfo {
            gp: self.gp,
            p: self.p,
            l: self.l,
            pupdate: self.pupdate_bits,
        }))
        .with_tag(State::DFlag.tag());
        self.tree.bump_stat(|s| &s.dflag_attempts);
        // SAFETY: guard-protected since search.
        let gp_ref = unsafe { &*self.gp };
        let expected: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.gpupdate_bits) };
        // Release publishes the fresh DInfo record; no helping on failure.
        match gp_ref.update.compare_exchange(
            expected,
            op,
            Ordering::Release,
            Ordering::Relaxed,
            &self.guard,
        ) {
            Ok(word) => {
                self.tree.bump_stat(|s| &s.dflag_success);
                self.op = word.as_raw();
                self.phase = DeletePhase::Flagged;
                true
            }
            Err(e) => {
                drop(e.new);
                self.phase = DeletePhase::Created;
                false
            }
        }
    }

    /// Attempts the **mark** CAS (line 91).
    ///
    /// # Panics
    ///
    /// Panics unless [`RawDelete::flag`] succeeded.
    pub fn mark(&mut self) -> MarkOutcome {
        assert_eq!(self.phase, DeletePhase::Flagged, "mark() requires flag()");
        // SAFETY: `op` was published by our flag CAS; the record and the
        // nodes it names are guard-protected until it is retired.
        let op_word: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.op as usize) };
        let info = unsafe { op_word.deref() }.as_delete();
        let p = unsafe { &*info.p };
        let expected = info.pupdate_word(&self.guard);
        let mark_word = op_word.with_tag(State::Mark.tag());
        self.tree.bump_stat(|s| &s.mark_attempts);
        // Release publishes the Mark; the failed value is only compared
        // bit-for-bit against `mark_word`, never dereferenced, so Relaxed.
        match p.update.compare_exchange(
            expected,
            mark_word,
            Ordering::Release,
            Ordering::Relaxed,
            &self.guard,
        ) {
            Ok(_) => {
                self.tree.bump_stat(|s| &s.mark_success);
                // Once marked, the deletion is guaranteed to complete
                // (Section 3), so it counts as a successful Delete now.
                self.tree.bump_stat(|s| &s.deletes);
                self.tree.bump_stat(|s| &s.deletes_true);
                self.phase = DeletePhase::Marked;
                MarkOutcome::Marked
            }
            Err(e) if e.current == mark_word => {
                self.tree.bump_stat(|s| &s.deletes);
                self.tree.bump_stat(|s| &s.deletes_true);
                self.phase = DeletePhase::Marked;
                MarkOutcome::Marked
            }
            Err(_) => MarkOutcome::Failed,
        }
    }

    /// Attempts the **dchild** CAS (line 105). Returns whether this call
    /// performed it.
    ///
    /// # Panics
    ///
    /// Panics unless the parent was marked.
    pub fn execute_child(&mut self) -> bool {
        assert_eq!(
            self.phase,
            DeletePhase::Marked,
            "execute_child() requires mark()"
        );
        // SAFETY: `op` was published by our flag CAS; the record, and every
        // node it names (`p`, `gp`, `l`), stay guard-protected until the
        // record is retired by its circuit's unflag winner.
        let op_word: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.op as usize) };
        let info = unsafe { op_word.deref() }.as_delete();
        // SAFETY: as above.
        let p = unsafe { &*info.p };
        let gp = unsafe { &*info.gp };
        let right = p.load_child(false, &self.guard);
        let other = if right.as_raw() == info.l {
            p.load_child(true, &self.guard)
        } else {
            right
        };
        // SAFETY: same published-DInfo protection as above.
        let p_shared: Shared<'_, Node<K, V>> = unsafe { Shared::from_data(info.p as usize) };
        let l_shared: Shared<'_, Node<K, V>> = unsafe { Shared::from_data(info.l as usize) };
        let won = self.tree.cas_child(gp, p_shared, other, &self.guard);
        if won {
            self.tree.bump_stat(|s| &s.dchild_success);
            self.tree.bump_stat(|s| &s.nodes_retired);
            self.tree.bump_stat(|s| &s.nodes_retired);
            // SAFETY: we unlinked `p` and `l`; unique retirement.
            unsafe {
                self.guard.defer_destroy(p_shared);
                self.guard.defer_destroy(l_shared);
            }
        }
        self.phase = DeletePhase::ChildDone;
        won
    }

    /// Attempts the **dunflag** CAS (line 106). Returns whether this call
    /// performed it.
    ///
    /// # Panics
    ///
    /// Panics unless [`RawDelete::execute_child`] ran.
    pub fn unflag(&mut self) -> bool {
        assert_eq!(
            self.phase,
            DeletePhase::ChildDone,
            "unflag() requires execute_child()"
        );
        // SAFETY: `op` was published by our flag CAS; the record and the
        // nodes it names are guard-protected until unflag retires them.
        let op_word: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.op as usize) };
        let info = unsafe { op_word.deref() }.as_delete();
        let gp = unsafe { &*info.gp };
        let dflag = op_word.with_tag(State::DFlag.tag());
        let clean = op_word.with_tag(State::Clean.tag());
        // Release: observers of Clean must also see the dchild splice.
        let won = gp
            .update
            .compare_exchange(
                dflag,
                clean,
                Ordering::Release,
                Ordering::Relaxed,
                &self.guard,
            )
            .is_ok();
        if won {
            self.tree.bump_stat(|s| &s.dunflag_success);
            self.tree.bump_stat(|s| &s.infos_retired);
            // SAFETY: unique dunflag winner.
            unsafe { self.guard.defer_destroy(op_word) };
        }
        self.phase = DeletePhase::Done;
        won
    }

    /// Attempts the **backtrack** CAS (line 98), abandoning this attempt
    /// after a failed mark. Returns whether this call performed it.
    ///
    /// The driver returns to the `Created` phase: re-run
    /// [`RawDelete::search`] to retry, as `Delete` does.
    ///
    /// # Panics
    ///
    /// Panics unless the delete is flagged and unmarked.
    pub fn backtrack(&mut self) -> bool {
        assert_eq!(
            self.phase,
            DeletePhase::Flagged,
            "backtrack() requires a flagged, unmarked delete"
        );
        // SAFETY: `op` was published by our flag CAS; the record and the
        // nodes it names are guard-protected until backtrack retires them.
        let op_word: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.op as usize) };
        let info = unsafe { op_word.deref() }.as_delete();
        let gp = unsafe { &*info.gp };
        let dflag = op_word.with_tag(State::DFlag.tag());
        let clean = op_word.with_tag(State::Clean.tag());
        // Release pairs with helpers' Acquire loads observing Clean.
        let won = gp
            .update
            .compare_exchange(
                dflag,
                clean,
                Ordering::Release,
                Ordering::Relaxed,
                &self.guard,
            )
            .is_ok();
        if won {
            self.tree.bump_stat(|s| &s.backtrack_success);
            self.tree.bump_stat(|s| &s.infos_retired);
            // SAFETY: backtrack is this record's unique retirement (the
            // mark CAS never succeeded, so no dunflag can).
            unsafe { self.guard.defer_destroy(op_word) };
        }
        self.op = std::ptr::null();
        self.phase = DeletePhase::Created;
        won
    }

    /// Finishes via the real `HelpDelete`; returns whether the deletion
    /// completed (`false` means it backtracked and must be retried).
    ///
    /// # Panics
    ///
    /// Panics unless [`RawDelete::flag`] succeeded.
    pub fn complete(mut self) -> bool {
        assert!(
            matches!(
                self.phase,
                DeletePhase::Flagged | DeletePhase::Marked | DeletePhase::ChildDone
            ),
            "complete() requires a successful flag()"
        );
        // SAFETY: `op` was published by our flag CAS and is guard-protected.
        let op_word: UpdateRef<'_, K, V> = unsafe { Shared::from_data(self.op as usize) };
        let was_unmarked = self.phase == DeletePhase::Flagged;
        let done = self.tree.help_delete(op_word, &self.guard);
        if done && was_unmarked {
            // `mark()` was never called by us, so the completion has not
            // been counted yet.
            self.tree.bump_stat(|s| &s.deletes);
            self.tree.bump_stat(|s| &s.deletes_true);
        }
        self.phase = DeletePhase::Done;
        done
    }

    /// Simulates a crash: stop forever. Published state (the flag/mark and
    /// Info record) stays in the tree for others to help or for teardown to
    /// reclaim.
    pub fn abandon(self) {}
}

impl<K: fmt::Debug, V> fmt::Debug for RawDelete<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RawDelete")
            .field("key", &self.key)
            .field("phase", &self.phase)
            .finish()
    }
}

/// A stepped `Find`: descends one edge per [`RawFind::step`], so a test
/// scheduler can interleave it with updates — exactly the adversarial
/// schedule of the paper's Section 6.
pub struct RawFind<'t, K, V> {
    tree: &'t NbBst<K, V>,
    key: K,
    guard: Guard,
    cursor: *const Node<K, V>,
    steps: u64,
}

impl<'t, K, V> RawFind<'t, K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Starts a find for `key` with the cursor at the root.
    pub fn new(tree: &'t NbBst<K, V>, key: K) -> RawFind<'t, K, V> {
        let guard = tree.pin();
        let cursor = tree.root() as *const Node<K, V>;
        RawFind {
            tree,
            key,
            guard,
            cursor,
            steps: 0,
        }
    }

    /// Descends one edge. Returns `true` when the cursor now rests on a
    /// leaf (the traversal part of `Find` is complete).
    pub fn step(&mut self) -> bool {
        // SAFETY: the cursor was the root or read from a child pointer
        // under our (still-held) guard.
        let cur = unsafe { &*self.cursor };
        if cur.is_leaf {
            return true;
        }
        let go_left =
            nbbst_dictionary::real_vs_node(&self.key, &cur.key) == std::cmp::Ordering::Less;
        self.cursor = cur.load_child(go_left, &self.guard).as_raw();
        self.steps += 1;
        // SAFETY: as above.
        unsafe { &*self.cursor }.is_leaf
    }

    /// The key at the cursor.
    pub fn cursor_key(&self) -> &SentinelKey<K> {
        // SAFETY: as in `step`.
        &unsafe { &*self.cursor }.key
    }

    /// Whether the cursor is currently on an internal node keyed `key`.
    pub fn at_internal_keyed(&self, key: &K) -> bool {
        // SAFETY: as in `step`.
        let cur = unsafe { &*self.cursor };
        !cur.is_leaf && cur.key.as_key() == Some(key)
    }

    /// Edges traversed so far (the starvation experiment's progress
    /// counter).
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// If the cursor is on a leaf, the `Find` result.
    pub fn result(&self) -> Option<bool> {
        // SAFETY: as in `step`.
        let cur = unsafe { &*self.cursor };
        cur.is_leaf.then(|| cur.key.as_key() == Some(&self.key))
    }

    /// Reference to the tree, for schedule code.
    pub fn tree(&self) -> &'t NbBst<K, V> {
        self.tree
    }
}

impl<K: fmt::Debug, V> fmt::Debug for RawFind<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RawFind")
            .field("key", &self.key)
            .field("steps", &self.steps)
            .finish()
    }
}

/// What a [`Stepper`] did on its most recent step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The operation took one step and has more to do.
    Running,
    /// The operation completed with this boolean result.
    Finished(bool),
}

/// A uniform one-CAS-step-at-a-time driver over [`RawInsert`] /
/// [`RawDelete`], following the *real* algorithm's control flow (retry
/// after failed flags, help on busy searches, backtrack after failed
/// marks). This is the building block for schedule enumeration and
/// fuzzing: interleave several `Stepper`s by calling [`Stepper::step`]
/// in any order.
///
/// # Examples
///
/// ```
/// use nbbst_core::raw::{Stepper, StepOutcome};
/// use nbbst_core::NbBst;
///
/// let tree: NbBst<u64, u64> = NbBst::new();
/// let mut a = Stepper::insert(&tree, 1, 10);
/// let mut b = Stepper::insert(&tree, 2, 20);
/// // Round-robin the two inserts one CAS step at a time.
/// while !(a.is_finished() && b.is_finished()) {
///     a.step();
///     b.step();
/// }
/// assert_eq!(a.result(), Some(true));
/// assert_eq!(b.result(), Some(true));
/// assert!(tree.contains_key(&1) && tree.contains_key(&2));
/// ```
pub struct Stepper<'t, K, V> {
    inner: StepperInner<'t, K, V>,
}

enum StepperInner<'t, K, V> {
    Insert(RawInsert<'t, K, V>, InsStep),
    Delete(RawDelete<'t, K, V>, DelStep),
    Finished(bool),
}

#[derive(Clone, Copy)]
enum InsStep {
    Search,
    Flag,
    Child,
    Unflag,
}

#[derive(Clone, Copy)]
enum DelStep {
    Search,
    Flag,
    Mark,
    Child,
    Unflag,
    Backtrack,
}

impl<'t, K, V> Stepper<'t, K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// A stepped `Insert(key, value)`.
    pub fn insert(tree: &'t NbBst<K, V>, key: K, value: V) -> Stepper<'t, K, V> {
        Stepper {
            inner: StepperInner::Insert(RawInsert::new(tree, key, value), InsStep::Search),
        }
    }

    /// A stepped `Delete(key)`.
    pub fn delete(tree: &'t NbBst<K, V>, key: K) -> Stepper<'t, K, V> {
        Stepper {
            inner: StepperInner::Delete(RawDelete::new(tree, key), DelStep::Search),
        }
    }

    /// Whether the operation has completed.
    pub fn is_finished(&self) -> bool {
        matches!(self.inner, StepperInner::Finished(_))
    }

    /// The boolean result, once finished.
    pub fn result(&self) -> Option<bool> {
        match self.inner {
            StepperInner::Finished(r) => Some(r),
            _ => None,
        }
    }

    /// Takes exactly one step of the operation (a `Search`, one CAS, or
    /// one helping pass), following the paper's control flow. No-op once
    /// finished.
    pub fn step(&mut self) -> StepOutcome {
        let next = match std::mem::replace(&mut self.inner, StepperInner::Finished(false)) {
            StepperInner::Insert(mut ins, phase) => match phase {
                InsStep::Search => match ins.search() {
                    InsertSearch::Duplicate => StepperInner::Finished(false),
                    InsertSearch::Busy(_) => {
                        // Line 51: help the blocker, then retry from Search.
                        ins.help_blocker();
                        StepperInner::Insert(ins, InsStep::Search)
                    }
                    InsertSearch::Ready => StepperInner::Insert(ins, InsStep::Flag),
                },
                InsStep::Flag => {
                    if ins.flag() {
                        StepperInner::Insert(ins, InsStep::Child)
                    } else {
                        StepperInner::Insert(ins, InsStep::Search)
                    }
                }
                InsStep::Child => {
                    ins.execute_child();
                    StepperInner::Insert(ins, InsStep::Unflag)
                }
                InsStep::Unflag => {
                    ins.unflag();
                    StepperInner::Finished(true)
                }
            },
            StepperInner::Delete(mut del, phase) => match phase {
                DelStep::Search => match del.search() {
                    DeleteSearch::NotFound => StepperInner::Finished(false),
                    DeleteSearch::Busy(_) => {
                        del.help_blocker();
                        StepperInner::Delete(del, DelStep::Search)
                    }
                    DeleteSearch::Ready => StepperInner::Delete(del, DelStep::Flag),
                },
                DelStep::Flag => {
                    if del.flag() {
                        StepperInner::Delete(del, DelStep::Mark)
                    } else {
                        StepperInner::Delete(del, DelStep::Search)
                    }
                }
                DelStep::Mark => match del.mark() {
                    MarkOutcome::Marked => StepperInner::Delete(del, DelStep::Child),
                    MarkOutcome::Failed => StepperInner::Delete(del, DelStep::Backtrack),
                },
                DelStep::Backtrack => {
                    del.backtrack();
                    StepperInner::Delete(del, DelStep::Search)
                }
                DelStep::Child => {
                    del.execute_child();
                    StepperInner::Delete(del, DelStep::Unflag)
                }
                DelStep::Unflag => {
                    del.unflag();
                    StepperInner::Finished(true)
                }
            },
            finished => finished,
        };
        self.inner = next;
        match self.inner {
            StepperInner::Finished(r) => StepOutcome::Finished(r),
            _ => StepOutcome::Running,
        }
    }
}

impl<K: fmt::Debug, V> fmt::Debug for Stepper<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            StepperInner::Insert(i, _) => write!(f, "Stepper({i:?})"),
            StepperInner::Delete(d, _) => write!(f, "Stepper({d:?})"),
            StepperInner::Finished(r) => write!(f, "Stepper(Finished({r}))"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(keys: &[u64]) -> NbBst<u64, u64> {
        let t = NbBst::with_stats();
        for &k in keys {
            t.insert_entry(k, k * 10).unwrap();
        }
        t
    }

    #[test]
    fn stepped_insert_happy_path() {
        let t = tree_with(&[10, 30]);
        let mut ins = RawInsert::new(&t, 20, 200);
        assert_eq!(ins.search(), InsertSearch::Ready);
        assert!(ins.flag());
        assert!(ins.execute_child());
        assert!(ins.unflag());
        drop(ins);
        assert!(t.contains_key(&20));
        t.check_invariants().unwrap();
        t.stats().unwrap().check_figure4().unwrap();
    }

    #[test]
    fn stepped_insert_duplicate_detected() {
        let t = tree_with(&[10]);
        let mut ins = RawInsert::new(&t, 10, 0);
        assert_eq!(ins.search(), InsertSearch::Duplicate);
        drop(ins); // must free the speculative leaf
        t.check_invariants().unwrap();
    }

    #[test]
    fn stepped_delete_happy_path() {
        let t = tree_with(&[10, 20, 30]);
        let mut del = RawDelete::new(&t, 20);
        assert_eq!(del.search(), DeleteSearch::Ready);
        assert!(del.flag());
        assert_eq!(del.mark(), MarkOutcome::Marked);
        assert!(del.execute_child());
        assert!(del.unflag());
        assert!(!t.contains_key(&20));
        t.check_invariants().unwrap();
        t.stats().unwrap().check_figure4().unwrap();
    }

    #[test]
    fn stepped_delete_not_found() {
        let t = tree_with(&[10]);
        let mut del = RawDelete::new(&t, 99);
        assert_eq!(del.search(), DeleteSearch::NotFound);
    }

    #[test]
    fn flagged_insert_is_helped_by_concurrent_update() {
        let t = tree_with(&[10]);
        let mut ins = RawInsert::new(&t, 20, 200);
        assert!(ins.search().is_ready());
        assert!(ins.flag());
        ins.abandon(); // crash after iflag

        // An unrelated update in the same neighborhood must help the
        // stalled insert before it can proceed.
        assert!(t.insert_entry(30, 300).is_ok());
        assert!(t.contains_key(&20), "helper completed the stalled insert");
        assert!(t.contains_key(&30));
        t.check_invariants().unwrap();
        let stats = t.stats().unwrap();
        assert!(stats.helps > 0, "helping must have occurred: {stats:?}");
    }

    #[test]
    fn flagged_delete_is_helped_by_concurrent_update() {
        let t = tree_with(&[10, 20, 30]);
        let mut del = RawDelete::new(&t, 20);
        assert!(del.search().is_ready());
        assert!(del.flag());
        del.abandon(); // crash after dflag, before mark

        // A conflicting update helps: it must finish the delete (mark,
        // dchild, dunflag) before its own flag can land on that node.
        assert!(t.remove_key(&30) || !t.contains_key(&30));
        assert!(!t.contains_key(&20), "helper completed the stalled delete");
        t.check_invariants().unwrap();
    }

    #[test]
    fn marked_delete_is_helped_to_completion() {
        let t = tree_with(&[10, 20, 30]);
        let mut del = RawDelete::new(&t, 20);
        assert!(del.search().is_ready());
        assert!(del.flag());
        assert_eq!(del.mark(), MarkOutcome::Marked);
        del.abandon(); // crash between mark and dchild

        assert!(t.insert_entry(25, 0).is_ok());
        assert!(!t.contains_key(&20));
        assert!(t.contains_key(&25));
        t.check_invariants().unwrap();
    }

    #[test]
    fn mark_fails_after_concurrent_insert_then_backtrack() {
        // The Figure 5 "doomed delete": flag gp, then let an insert change
        // p's update word; the mark CAS must fail and backtrack must
        // restore Clean.
        let t = tree_with(&[10, 20]);
        // Delete(10): p is the internal node directly above leaf 10.
        let mut del = RawDelete::new(&t, 10);
        assert!(del.search().is_ready());
        assert!(del.flag());

        // Concurrent Insert(15) flags p — the node the delete still has to
        // mark — and completes.
        let mut ins = RawInsert::new(&t, 15, 150);
        assert!(ins.search().is_ready());
        assert!(ins.flag());
        assert!(ins.execute_child());
        assert!(ins.unflag());
        drop(ins);

        // The mark CAS now fails (pupdate is stale), and the delete
        // backtracks; the tree is unchanged and still contains 10 and 15.
        assert_eq!(del.mark(), MarkOutcome::Failed);
        assert!(del.backtrack());
        assert!(t.contains_key(&10));
        assert!(t.contains_key(&15));
        assert!(t.contains_key(&20));
        t.check_invariants().unwrap();
        let stats = t.stats().unwrap();
        assert_eq!(stats.backtrack_success, 1);
        stats.check_figure4().unwrap();
    }

    #[test]
    fn stepped_find_walks_to_leaf() {
        let t = tree_with(&[1, 2, 3]);
        let mut find = RawFind::new(&t, 2);
        let mut steps = 0;
        while !find.step() {
            steps += 1;
            assert!(steps < 64, "runaway find");
        }
        assert_eq!(find.result(), Some(true));
        assert!(find.steps_taken() >= 2);
    }

    #[test]
    fn raw_ops_update_figure4_counters() {
        let t = tree_with(&[]);
        let mut ins = RawInsert::new(&t, 1, 1);
        assert!(ins.search().is_ready());
        assert!(ins.flag());
        ins.complete();
        let s = t.stats().unwrap();
        assert_eq!(s.iflag_success, 1);
        assert_eq!(s.ichild_success, 1);
        assert_eq!(s.iunflag_success, 1);
        s.check_figure4().unwrap();
    }

    #[test]
    fn abandoned_unflagged_insert_leaks_nothing_into_tree() {
        let t = tree_with(&[10]);
        let ins = RawInsert::new(&t, 20, 0);
        ins.abandon(); // never searched/flagged
        assert!(!t.contains_key(&20));
        assert_eq!(t.len_slow(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn stepper_round_robin_conflicting_ops() {
        let t = tree_with(&[10, 20, 30]);
        let mut a = Stepper::delete(&t, 20);
        let mut b = Stepper::insert(&t, 25, 25);
        let mut steps = 0;
        while !(a.is_finished() && b.is_finished()) {
            a.step();
            b.step();
            steps += 1;
            assert!(steps < 64, "steppers must terminate");
        }
        assert_eq!(a.result(), Some(true));
        assert_eq!(b.result(), Some(true));
        assert!(!t.contains_key(&20));
        assert!(t.contains_key(&25));
        t.check_invariants().unwrap();
        t.stats().unwrap().check_figure4().unwrap();
    }

    #[test]
    fn stepper_reports_false_outcomes() {
        let t = tree_with(&[10]);
        let mut dup = Stepper::insert(&t, 10, 0);
        while !dup.is_finished() {
            dup.step();
        }
        assert_eq!(dup.result(), Some(false));

        let mut missing = Stepper::delete(&t, 99);
        assert_eq!(missing.step(), StepOutcome::Finished(false));
    }

    #[test]
    fn tree_drop_reclaims_abandoned_flagged_operations() {
        // Covers the Drop paths for stalled IFlag (with speculative
        // subtree), DFlag and Mark states.
        let t = tree_with(&[10, 20, 30]);
        let mut ins = RawInsert::new(&t, 40, 0);
        assert!(ins.search().is_ready());
        assert!(ins.flag());
        ins.abandon();

        let mut del = RawDelete::new(&t, 10);
        assert!(del.search().is_ready());
        assert!(del.flag());
        assert_eq!(del.mark(), MarkOutcome::Marked);
        del.abandon();

        t.check_invariants_allowing(true).unwrap();
        drop(t); // must free everything (verified under sanitizers)
    }
}
