//! Tree nodes and Info records (Figure 7 of the paper).
//!
//! An internal node carries a routing key, two atomic child pointers, and
//! the *update field*: a single CAS word packing a 2-bit [`State`] with a
//! pointer to an [`Info`] record. A leaf carries a key and (for real keys)
//! a value. The paper uses two node types; we use one struct with an
//! immutable `is_leaf` discriminant, which keeps the atomics simple (child
//! pointers can point at either kind) at the cost of three unused words per
//! leaf.

use crate::state::State;
use nbbst_dictionary::SentinelKey;
use nbbst_reclaim::{Atomic, Guard, Shared};
use std::fmt;
use std::sync::atomic::Ordering;

// Memory orderings are chosen per call site (there is deliberately no
// blanket `SeqCst` constant): traversal loads whose result is dereferenced
// use `Acquire`; CASes that publish a node or Info record use `Release` on
// success, with `Acquire` on failure only where the observed value is then
// helped (dereferenced); pre-publication initialization and exclusive
// teardown use `Relaxed`. The site-by-site table, and the loom scenario
// justifying each choice, live in DESIGN.md ("Memory orderings").

/// A node of the EFRB tree (the paper's `Internal` and `Leaf` types fused;
/// Figure 7 lines 5–13).
pub struct Node<K, V> {
    /// Immutable key (real or sentinel); set at allocation, never changed.
    pub(crate) key: SentinelKey<K>,
    /// Auxiliary data; `Some` only for leaves holding real keys.
    pub(crate) value: Option<V>,
    /// Immutable discriminant.
    pub(crate) is_leaf: bool,
    /// The update field: `state` in the 2 tag bits, Info pointer above
    /// (Figure 7 lines 1–4: "stored in one CAS word").
    pub(crate) update: Atomic<Info<K, V>>,
    /// Left child (internal nodes only; never null once published).
    pub(crate) left: Atomic<Node<K, V>>,
    /// Right child (internal nodes only; never null once published).
    pub(crate) right: Atomic<Node<K, V>>,
}

// SAFETY: nodes are immutable except through their atomic fields; sharing
// them across threads is exactly the algorithm's design, provided keys and
// values can be shared.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for Node<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for Node<K, V> {}

impl<K, V> Node<K, V> {
    /// A leaf node; `value` is `None` for sentinel leaves.
    pub(crate) fn leaf(key: SentinelKey<K>, value: Option<V>) -> Node<K, V> {
        Node {
            key,
            value,
            is_leaf: true,
            update: Atomic::null(),
            left: Atomic::null(),
            right: Atomic::null(),
        }
    }

    /// An internal node with the given children (raw pointers to already-
    /// allocated nodes; ownership conceptually transfers to the tree once
    /// this node is published).
    pub(crate) fn internal(
        key: SentinelKey<K>,
        left: *const Node<K, V>,
        right: *const Node<K, V>,
    ) -> Node<K, V> {
        let node = Node {
            key,
            value: None,
            is_leaf: false,
            update: Atomic::null(),
            left: Atomic::null(),
            right: Atomic::null(),
        };
        // SAFETY: plain initialization stores before publication.
        unsafe {
            node.left
                .store(Shared::from_data(left as usize), Ordering::Relaxed);
            node.right
                .store(Shared::from_data(right as usize), Ordering::Relaxed);
        }
        node
    }

    /// Loads this internal node's update word.
    ///
    /// `Acquire`: a non-Clean word's Info record is dereferenced by helpers,
    /// so this load must synchronize with the `Release` flag CAS that
    /// published the record.
    pub(crate) fn load_update<'g>(&self, guard: &'g Guard) -> UpdateRef<'g, K, V> {
        debug_assert!(!self.is_leaf, "leaves have no update field");
        self.update.load(Ordering::Acquire, guard)
    }

    /// Loads a child pointer. Internal nodes' children are never null.
    ///
    /// `Acquire`: the child is dereferenced by every traversal, so this load
    /// must synchronize with the `Release` ichild/dchild CAS that spliced
    /// the node in (which is what makes its initialization visible).
    pub(crate) fn load_child<'g>(&self, left: bool, guard: &'g Guard) -> Shared<'g, Node<K, V>> {
        debug_assert!(!self.is_leaf, "leaves have no children");
        if left {
            self.left.load(Ordering::Acquire, guard)
        } else {
            self.right.load(Ordering::Acquire, guard)
        }
    }
}

impl<K: fmt::Debug, V> fmt::Debug for Node<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct(if self.is_leaf { "Leaf" } else { "Internal" })
            .field("key", &self.key)
            .finish_non_exhaustive()
    }
}

/// A loaded update word: an Info pointer (possibly null) plus a [`State`]
/// in the tag bits.
pub(crate) type UpdateRef<'g, K, V> = Shared<'g, Info<K, V>>;

/// Extension helpers for update words.
pub(crate) trait UpdateWordExt {
    /// The state encoded in the tag bits.
    fn state(&self) -> State;
}

impl<K, V> UpdateWordExt for UpdateRef<'_, K, V> {
    fn state(&self) -> State {
        State::from_tag(self.tag())
    }
}

/// An Info record: "enough information for other processes to help complete
/// the operation" (Section 3). Published by flag CAS steps; every flag
/// stores a pointer to a *fresh* record.
pub enum Info<K, V> {
    /// Published by an `iflag` CAS (Figure 7 lines 14–16).
    Insert(IInfo<K, V>),
    /// Published by a `dflag` CAS (Figure 7 lines 17–19).
    Delete(DInfo<K, V>),
}

// SAFETY: Info records hold raw pointers into the tree; they are shared
// between threads by design, protected by the epoch collector.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for Info<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for Info<K, V> {}

impl<K, V> Info<K, V> {
    /// Views this record as an `IInfo`.
    ///
    /// # Panics
    ///
    /// Panics if this is a `DInfo`; callers dispatch on the state tag,
    /// which the proof shows always agrees with the record type.
    pub(crate) fn as_insert(&self) -> &IInfo<K, V> {
        match self {
            Info::Insert(i) => i,
            Info::Delete(_) => panic!("IFlag state with DInfo record"),
        }
    }

    /// Views this record as a `DInfo`.
    ///
    /// # Panics
    ///
    /// Panics if this is an `IInfo`.
    pub(crate) fn as_delete(&self) -> &DInfo<K, V> {
        match self {
            Info::Delete(d) => d,
            Info::Insert(_) => panic!("DFlag/Mark state with IInfo record"),
        }
    }
}

impl<K, V> fmt::Debug for Info<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Info::Insert(_) => f.write_str("Info::Insert"),
            Info::Delete(_) => f.write_str("Info::Delete"),
        }
    }
}

/// What an insertion's helpers need (Figure 7 lines 14–16): the parent to
/// unflag, the leaf to replace, and the replacement subtree.
pub struct IInfo<K, V> {
    /// The flagged parent whose child pointer changes.
    pub(crate) p: *const Node<K, V>,
    /// The leaf being replaced.
    pub(crate) l: *const Node<K, V>,
    /// The new three-node subtree's root.
    pub(crate) new_internal: *const Node<K, V>,
}

/// What a deletion's helpers need (Figure 7 lines 17–19): the grandparent
/// (flagged), parent (to mark), leaf (to delete), and the parent's update
/// word as seen by the deleter's `Search` (`pupdate`), used as the expected
/// value of the mark CAS.
pub struct DInfo<K, V> {
    /// The flagged grandparent whose child pointer changes.
    pub(crate) gp: *const Node<K, V>,
    /// The parent, to be marked and spliced out.
    pub(crate) p: *const Node<K, V>,
    /// The leaf being deleted.
    pub(crate) l: *const Node<K, V>,
    /// Copy of `p`'s update word (pointer bits + state tag) observed by the
    /// deleter's `Search`; the paper's `pupdate` field.
    pub(crate) pupdate: usize,
}

impl<K, V> DInfo<K, V> {
    /// Reconstructs the stored `pupdate` word as a `Shared` usable as the
    /// expected value of the mark CAS.
    ///
    /// Sound to *compare* under any guard; only dereferenced (via `Help`)
    /// by code that re-read the live word.
    pub(crate) fn pupdate_word<'g>(&self, _guard: &'g Guard) -> UpdateRef<'g, K, V> {
        // SAFETY: the word was produced by `Shared::into_data` of an update
        // word; we use it as a CAS comparand.
        unsafe { Shared::from_data(self.pupdate) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbbst_reclaim::{Collector, Owned};

    #[test]
    fn info_alignment_leaves_room_for_state_tags() {
        // Two tag bits require 4-byte alignment; Info holds pointers, so it
        // is at least machine-word aligned.
        assert!(std::mem::align_of::<Info<u64, u64>>() >= 4);
        assert!(nbbst_reclaim::low_bits::<Info<u64, u64>>() >= 3);
    }

    #[test]
    fn leaf_constructor_sets_discriminant() {
        let n: Node<u64, u64> = Node::leaf(SentinelKey::Key(5), Some(50));
        assert!(n.is_leaf);
        assert_eq!(n.key, SentinelKey::Key(5));
        assert_eq!(n.value, Some(50));
    }

    #[test]
    fn internal_constructor_links_children() {
        let collector = Collector::new();
        let guard = collector.pin();
        let l = Box::into_raw(Box::new(Node::<u64, u64>::leaf(SentinelKey::Inf1, None)));
        let r = Box::into_raw(Box::new(Node::<u64, u64>::leaf(SentinelKey::Inf2, None)));
        let n = Node::internal(SentinelKey::Inf2, l, r);
        assert!(!n.is_leaf);
        assert_eq!(n.load_child(true, &guard).as_raw(), l as *const _);
        assert_eq!(n.load_child(false, &guard).as_raw(), r as *const _);
        assert_eq!(n.load_update(&guard).state(), State::Clean);
        assert!(n.load_update(&guard).is_null());
        drop(guard);
        unsafe {
            drop(Box::from_raw(l));
            drop(Box::from_raw(r));
        }
    }

    #[test]
    fn update_word_state_roundtrips_through_tags() {
        let collector = Collector::new();
        let guard = collector.pin();
        let n: Node<u64, u64> =
            Node::internal(SentinelKey::Inf2, std::ptr::null(), std::ptr::null());
        let clean = n.load_update(&guard);
        assert_eq!(clean.state(), State::Clean);

        let info = Owned::new(Info::<u64, u64>::Insert(IInfo {
            p: std::ptr::null(),
            l: std::ptr::null(),
            new_internal: std::ptr::null(),
        }))
        .with_tag(State::IFlag.tag());
        n.update
            .compare_exchange(clean, info, Ordering::Release, Ordering::Relaxed, &guard)
            .expect("flag an unflagged node");
        let flagged = n.load_update(&guard);
        assert_eq!(flagged.state(), State::IFlag);
        assert!(!flagged.is_null());
        unsafe { guard.defer_destroy(flagged) };
    }

    #[test]
    #[should_panic(expected = "IFlag state with DInfo record")]
    fn as_insert_rejects_dinfo() {
        let d: Info<u64, u64> = Info::Delete(DInfo {
            gp: std::ptr::null(),
            p: std::ptr::null(),
            l: std::ptr::null(),
            pupdate: 0,
        });
        let _ = d.as_insert();
    }
}
