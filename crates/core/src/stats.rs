//! Operation counters instrumenting every CAS type of Figure 4.
//!
//! The paper's Figure 4 is a state machine over `{Clean, IFlag, DFlag,
//! Mark}` whose transitions are the seven CAS kinds (`iflag`, `ichild`,
//! `iunflag`, `dflag`, `mark`, `dchild`/`dunflag`, `backtrack`). A
//! [`TreeStats`] records how often each succeeds, plus helping and retry
//! activity. [`StatsSnapshot::check_figure4`] verifies, at quiescence, the
//! arithmetic identities the state machine implies — the executable
//! reproduction of Figure 4.
//!
//! Counters are optional (see `NbBst::with_stats`) and use relaxed
//! increments; they are for experiments, not for synchronization.

use std::fmt;
// `Counter*` alias: the nbbst-lint facade pass recognizes it as the
// documented instrumentation exclusion — these never synchronize and
// deliberately stay std atomics under `--cfg loom` (see
// nbbst-reclaim's `primitives` module).
use std::sync::atomic::{AtomicU64 as CounterU64, Ordering};

/// The counter word: a std atomic even under loom (instrumentation only).
pub(crate) type Counter = CounterU64;

macro_rules! stats_fields {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Live counters attached to a tree (all `u64`, relaxed).
        #[derive(Debug, Default)]
        pub struct TreeStats {
            $( $(#[$doc])* pub(crate) $name: Counter, )+
        }

        /// A point-in-time copy of [`TreeStats`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        #[allow(missing_docs)]
        pub struct StatsSnapshot {
            $( $(#[$doc])* pub $name: u64, )+
        }

        impl TreeStats {
            /// Copies all counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )+
                }
            }
        }

        impl fmt::Display for StatsSnapshot {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                $( writeln!(f, "{:<22} {:>12}", stringify!($name), self.$name)?; )+
                Ok(())
            }
        }
    };
}

stats_fields! {
    /// Completed `Find` calls.
    finds,
    /// Completed `Insert` calls (either outcome).
    inserts,
    /// Completed `Delete` calls (either outcome).
    deletes,
    /// `Insert` calls that returned `true`.
    inserts_true,
    /// `Delete` calls that returned `true`.
    deletes_true,
    /// `Search` traversals performed (one per attempt).
    searches,
    /// Insert attempts abandoned and retried.
    insert_retries,
    /// Delete attempts abandoned and retried.
    delete_retries,
    /// iflag CAS attempts (line 56).
    iflag_attempts,
    /// Successful iflag CAS steps (Clean -> IFlag).
    iflag_success,
    /// Successful ichild CAS steps (lines 115/117 via HelpInsert).
    ichild_success,
    /// Successful iunflag CAS steps (IFlag -> Clean).
    iunflag_success,
    /// dflag CAS attempts (line 81).
    dflag_attempts,
    /// Successful dflag CAS steps (Clean -> DFlag).
    dflag_success,
    /// mark CAS attempts (line 91).
    mark_attempts,
    /// Successful mark CAS steps (Clean -> Mark on the parent).
    mark_success,
    /// Successful dchild CAS steps (line 105).
    dchild_success,
    /// Successful dunflag CAS steps (DFlag -> Clean, line 106).
    dunflag_success,
    /// Successful backtrack CAS steps (DFlag -> Clean, line 98).
    backtrack_success,
    /// Calls into the general `Help` routine (lines 107–112).
    helps,
    /// Calls into `HelpInsert` (own operation or helping).
    help_insert_calls,
    /// Calls into `HelpDelete`.
    help_delete_calls,
    /// Calls into `HelpMarked`.
    help_marked_calls,
    /// Nodes retired to the collector.
    nodes_retired,
    /// Info records retired to the collector.
    infos_retired,
}

impl StatsSnapshot {
    /// Verifies the Figure 4 state-machine identities at quiescence (no
    /// operation in flight):
    ///
    /// * every insertion circuit runs `iflag → ichild → iunflag` exactly
    ///   once each: the three counts are equal;
    /// * every deletion circuit that leaves `DFlag` does so by exactly one
    ///   of `mark` (continuing to `dchild`, `dunflag`) or `backtrack`:
    ///   `dflag = mark + backtrack`, and `mark = dchild = dunflag`;
    /// * successful updates linearize at their child CAS:
    ///   `inserts_true = ichild` and `deletes_true = dchild`;
    /// * a fresh flag is installed per circuit, never reused:
    ///   successes never exceed attempts.
    ///
    /// # Errors
    ///
    /// Returns which identity failed.
    pub fn check_figure4(&self) -> Result<(), String> {
        self.check_figure4_inner(false)
    }

    /// [`StatsSnapshot::check_figure4`], but tolerating operations that
    /// were deliberately *abandoned* mid-circuit (crash-injection tests):
    /// a delete abandoned before its mark CAS is completed by helpers, so
    /// its `dchild` has no matching `deletes_true`; the two
    /// completed-operation identities therefore relax to `<=`.
    ///
    /// # Errors
    ///
    /// Returns which identity failed.
    pub fn check_figure4_allowing_abandoned(&self) -> Result<(), String> {
        self.check_figure4_inner(true)
    }

    fn check_figure4_inner(&self, allow_abandoned: bool) -> Result<(), String> {
        let eq = |name: &str, a: u64, b: u64| {
            if a == b {
                Ok(())
            } else {
                Err(format!("figure-4 identity violated: {name}: {a} != {b}"))
            }
        };
        let le = |name: &str, a: u64, b: u64| {
            if a <= b {
                Ok(())
            } else {
                Err(format!("figure-4 identity violated: {name}: {a} > {b}"))
            }
        };
        if allow_abandoned {
            // Crashed circuits may be stalled at any point, so each step of
            // a circuit happens at most as often as the one before it; and
            // completed-op counts trail their child CASes.
            le("ichild <= iflag", self.ichild_success, self.iflag_success)?;
            le(
                "iunflag <= ichild",
                self.iunflag_success,
                self.ichild_success,
            )?;
            le(
                "mark + backtrack <= dflag",
                self.mark_success + self.backtrack_success,
                self.dflag_success,
            )?;
            le("dchild <= mark", self.dchild_success, self.mark_success)?;
            le(
                "dunflag <= dchild",
                self.dunflag_success,
                self.dchild_success,
            )?;
            le(
                "inserts_true <= iflag",
                self.inserts_true,
                self.iflag_success,
            )?;
            le("deletes_true <= mark", self.deletes_true, self.mark_success)?;
        } else {
            eq("iflag = ichild", self.iflag_success, self.ichild_success)?;
            eq(
                "ichild = iunflag",
                self.ichild_success,
                self.iunflag_success,
            )?;
            eq(
                "dflag = mark + backtrack",
                self.dflag_success,
                self.mark_success + self.backtrack_success,
            )?;
            eq("mark = dchild", self.mark_success, self.dchild_success)?;
            eq(
                "dchild = dunflag",
                self.dchild_success,
                self.dunflag_success,
            )?;
            eq(
                "inserts_true = ichild",
                self.inserts_true,
                self.ichild_success,
            )?;
            eq(
                "deletes_true = dchild",
                self.deletes_true,
                self.dchild_success,
            )?;
        }
        if self.iflag_success > self.iflag_attempts {
            return Err("iflag successes exceed attempts".into());
        }
        if self.dflag_success > self.dflag_attempts {
            return Err("dflag successes exceed attempts".into());
        }
        if self.mark_success > self.mark_attempts {
            return Err("mark successes exceed attempts".into());
        }
        Ok(())
    }

    /// Helping performed per completed update — the "conservative helping"
    /// metric of experiment T9.
    pub fn helps_per_update(&self) -> f64 {
        let updates = self.inserts + self.deletes;
        if updates == 0 {
            0.0
        } else {
            self.helps as f64 / updates as f64
        }
    }

    /// Field-wise difference (`self - earlier`), for measuring one phase of
    /// a long run.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            finds: self.finds - earlier.finds,
            inserts: self.inserts - earlier.inserts,
            deletes: self.deletes - earlier.deletes,
            inserts_true: self.inserts_true - earlier.inserts_true,
            deletes_true: self.deletes_true - earlier.deletes_true,
            searches: self.searches - earlier.searches,
            insert_retries: self.insert_retries - earlier.insert_retries,
            delete_retries: self.delete_retries - earlier.delete_retries,
            iflag_attempts: self.iflag_attempts - earlier.iflag_attempts,
            iflag_success: self.iflag_success - earlier.iflag_success,
            ichild_success: self.ichild_success - earlier.ichild_success,
            iunflag_success: self.iunflag_success - earlier.iunflag_success,
            dflag_attempts: self.dflag_attempts - earlier.dflag_attempts,
            dflag_success: self.dflag_success - earlier.dflag_success,
            mark_attempts: self.mark_attempts - earlier.mark_attempts,
            mark_success: self.mark_success - earlier.mark_success,
            dchild_success: self.dchild_success - earlier.dchild_success,
            dunflag_success: self.dunflag_success - earlier.dunflag_success,
            backtrack_success: self.backtrack_success - earlier.backtrack_success,
            helps: self.helps - earlier.helps,
            help_insert_calls: self.help_insert_calls - earlier.help_insert_calls,
            help_delete_calls: self.help_delete_calls - earlier.help_delete_calls,
            help_marked_calls: self.help_marked_calls - earlier.help_marked_calls,
            nodes_retired: self.nodes_retired - earlier.nodes_retired,
            infos_retired: self.infos_retired - earlier.infos_retired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = TreeStats::default();
        s.finds.fetch_add(3, Ordering::Relaxed);
        s.iflag_success.fetch_add(2, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.finds, 3);
        assert_eq!(snap.iflag_success, 2);
    }

    #[test]
    fn figure4_accepts_consistent_counts() {
        let snap = StatsSnapshot {
            iflag_attempts: 5,
            iflag_success: 4,
            ichild_success: 4,
            iunflag_success: 4,
            inserts_true: 4,
            dflag_attempts: 4,
            dflag_success: 3,
            mark_attempts: 3,
            mark_success: 2,
            backtrack_success: 1,
            dchild_success: 2,
            dunflag_success: 2,
            deletes_true: 2,
            ..Default::default()
        };
        snap.check_figure4().unwrap();
    }

    #[test]
    fn figure4_rejects_unbalanced_insert_circuit() {
        let snap = StatsSnapshot {
            iflag_attempts: 2,
            iflag_success: 2,
            ichild_success: 1,
            ..Default::default()
        };
        let err = snap.check_figure4().unwrap_err();
        assert!(err.contains("iflag = ichild"), "{err}");
    }

    #[test]
    fn figure4_rejects_deletion_leak() {
        let snap = StatsSnapshot {
            dflag_attempts: 3,
            dflag_success: 3,
            mark_attempts: 3,
            mark_success: 1,
            backtrack_success: 1, // one DFlag never resolved
            dchild_success: 1,
            dunflag_success: 1,
            deletes_true: 1,
            ..Default::default()
        };
        let err = snap.check_figure4().unwrap_err();
        assert!(err.contains("dflag = mark + backtrack"), "{err}");
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = StatsSnapshot {
            finds: 10,
            helps: 4,
            ..Default::default()
        };
        let b = StatsSnapshot {
            finds: 3,
            helps: 1,
            ..Default::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.finds, 7);
        assert_eq!(d.helps, 3);
    }

    #[test]
    fn helps_per_update_handles_zero() {
        assert_eq!(StatsSnapshot::default().helps_per_update(), 0.0);
        let s = StatsSnapshot {
            inserts: 2,
            deletes: 2,
            helps: 6,
            ..Default::default()
        };
        assert!((s.helps_per_update() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_lists_every_counter() {
        let s = TreeStats::default().snapshot().to_string();
        assert!(s.contains("iflag_success"));
        assert!(s.contains("backtrack_success"));
        assert!(s.contains("helps"));
    }
}
