//! Operation counters instrumenting every CAS type of Figure 4.
//!
//! The paper's Figure 4 is a state machine over `{Clean, IFlag, DFlag,
//! Mark}` whose transitions are the seven CAS kinds (`iflag`, `ichild`,
//! `iunflag`, `dflag`, `mark`, `dchild`/`dunflag`, `backtrack`). A
//! [`TreeStats`] records how often each succeeds, plus helping and retry
//! activity. [`StatsSnapshot::check_figure4`] verifies, at quiescence, the
//! arithmetic identities the state machine implies — the executable
//! reproduction of Figure 4.
//!
//! Counters are optional (see `NbBst::with_stats`) and use relaxed
//! increments; they are for experiments, not for synchronization.

use std::fmt;
// `Counter*` alias: the nbbst-lint facade pass recognizes it as the
// documented instrumentation exclusion — these never synchronize and
// deliberately stay std atomics under `--cfg loom` (see
// nbbst-reclaim's `primitives` module).
use std::sync::atomic::{AtomicU64 as CounterU64, Ordering};

/// The counter word: a std atomic even under loom (instrumentation only).
pub(crate) type Counter = CounterU64;

macro_rules! stats_fields {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Live counters attached to a tree (all `u64`, relaxed).
        #[derive(Debug, Default)]
        pub struct TreeStats {
            $( $(#[$doc])* pub(crate) $name: Counter, )+
        }

        /// A point-in-time copy of [`TreeStats`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        #[allow(missing_docs)]
        pub struct StatsSnapshot {
            $( $(#[$doc])* pub $name: u64, )+
        }

        impl TreeStats {
            /// Copies all counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )+
                }
            }
        }

        impl StatsSnapshot {
            /// Field-wise sum (`self + other`) — merging per-shard (or
            /// per-phase) snapshots into one aggregate.
            ///
            /// Merging is commutative and associative, and every
            /// [`StatsSnapshot::check_figure4`] identity is *linear*
            /// (equalities and `<=` between counter sums), so identities
            /// that hold per shard at quiescence hold for the merged
            /// snapshot too.
            #[must_use]
            pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name + other.$name, )+
                }
            }

            /// Merges an iterator of snapshots (e.g. one per shard).
            pub fn merged<I: IntoIterator<Item = StatsSnapshot>>(iter: I) -> StatsSnapshot {
                iter.into_iter()
                    .fold(StatsSnapshot::default(), |acc, s| acc.merge(&s))
            }

            /// Field-wise difference (`self - earlier`), for measuring one
            /// phase of a long run.
            #[must_use]
            pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name - earlier.$name, )+
                }
            }
        }

        impl fmt::Display for StatsSnapshot {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                $( writeln!(f, "{:<22} {:>12}", stringify!($name), self.$name)?; )+
                Ok(())
            }
        }
    };
}

stats_fields! {
    /// Completed `Find` calls.
    finds,
    /// Completed `Insert` calls (either outcome).
    inserts,
    /// Completed `Delete` calls (either outcome).
    deletes,
    /// `Insert` calls that returned `true`.
    inserts_true,
    /// `Delete` calls that returned `true`.
    deletes_true,
    /// `Search` traversals performed (one per attempt).
    searches,
    /// Insert attempts abandoned and retried.
    insert_retries,
    /// Delete attempts abandoned and retried.
    delete_retries,
    /// iflag CAS attempts (line 56).
    iflag_attempts,
    /// Successful iflag CAS steps (Clean -> IFlag).
    iflag_success,
    /// Successful ichild CAS steps (lines 115/117 via HelpInsert).
    ichild_success,
    /// Successful iunflag CAS steps (IFlag -> Clean).
    iunflag_success,
    /// dflag CAS attempts (line 81).
    dflag_attempts,
    /// Successful dflag CAS steps (Clean -> DFlag).
    dflag_success,
    /// mark CAS attempts (line 91).
    mark_attempts,
    /// Successful mark CAS steps (Clean -> Mark on the parent).
    mark_success,
    /// Successful dchild CAS steps (line 105).
    dchild_success,
    /// Successful dunflag CAS steps (DFlag -> Clean, line 106).
    dunflag_success,
    /// Successful backtrack CAS steps (DFlag -> Clean, line 98).
    backtrack_success,
    /// Calls into the general `Help` routine (lines 107–112).
    helps,
    /// Calls into `HelpInsert` (own operation or helping).
    help_insert_calls,
    /// Calls into `HelpDelete`.
    help_delete_calls,
    /// Calls into `HelpMarked`.
    help_marked_calls,
    /// Nodes retired to the collector.
    nodes_retired,
    /// Info records retired to the collector.
    infos_retired,
}

impl StatsSnapshot {
    /// Verifies the Figure 4 state-machine identities at quiescence (no
    /// operation in flight):
    ///
    /// * every insertion circuit runs `iflag → ichild → iunflag` exactly
    ///   once each: the three counts are equal;
    /// * every deletion circuit that leaves `DFlag` does so by exactly one
    ///   of `mark` (continuing to `dchild`, `dunflag`) or `backtrack`:
    ///   `dflag = mark + backtrack`, and `mark = dchild = dunflag`;
    /// * successful updates linearize at their child CAS:
    ///   `inserts_true = ichild` and `deletes_true = dchild`;
    /// * a fresh flag is installed per circuit, never reused:
    ///   successes never exceed attempts.
    ///
    /// # Errors
    ///
    /// Returns which identity failed.
    pub fn check_figure4(&self) -> Result<(), String> {
        self.check_figure4_inner(false)
    }

    /// [`StatsSnapshot::check_figure4`], but tolerating operations that
    /// were deliberately *abandoned* mid-circuit (crash-injection tests):
    /// a delete abandoned before its mark CAS is completed by helpers, so
    /// its `dchild` has no matching `deletes_true`; the two
    /// completed-operation identities therefore relax to `<=`.
    ///
    /// # Errors
    ///
    /// Returns which identity failed.
    pub fn check_figure4_allowing_abandoned(&self) -> Result<(), String> {
        self.check_figure4_inner(true)
    }

    fn check_figure4_inner(&self, allow_abandoned: bool) -> Result<(), String> {
        let eq = |name: &str, a: u64, b: u64| {
            if a == b {
                Ok(())
            } else {
                Err(format!("figure-4 identity violated: {name}: {a} != {b}"))
            }
        };
        let le = |name: &str, a: u64, b: u64| {
            if a <= b {
                Ok(())
            } else {
                Err(format!("figure-4 identity violated: {name}: {a} > {b}"))
            }
        };
        if allow_abandoned {
            // Crashed circuits may be stalled at any point, so each step of
            // a circuit happens at most as often as the one before it; and
            // completed-op counts trail their child CASes.
            le("ichild <= iflag", self.ichild_success, self.iflag_success)?;
            le(
                "iunflag <= ichild",
                self.iunflag_success,
                self.ichild_success,
            )?;
            le(
                "mark + backtrack <= dflag",
                self.mark_success + self.backtrack_success,
                self.dflag_success,
            )?;
            le("dchild <= mark", self.dchild_success, self.mark_success)?;
            le(
                "dunflag <= dchild",
                self.dunflag_success,
                self.dchild_success,
            )?;
            le(
                "inserts_true <= iflag",
                self.inserts_true,
                self.iflag_success,
            )?;
            le("deletes_true <= mark", self.deletes_true, self.mark_success)?;
        } else {
            eq("iflag = ichild", self.iflag_success, self.ichild_success)?;
            eq(
                "ichild = iunflag",
                self.ichild_success,
                self.iunflag_success,
            )?;
            eq(
                "dflag = mark + backtrack",
                self.dflag_success,
                self.mark_success + self.backtrack_success,
            )?;
            eq("mark = dchild", self.mark_success, self.dchild_success)?;
            eq(
                "dchild = dunflag",
                self.dchild_success,
                self.dunflag_success,
            )?;
            eq(
                "inserts_true = ichild",
                self.inserts_true,
                self.ichild_success,
            )?;
            eq(
                "deletes_true = dchild",
                self.deletes_true,
                self.dchild_success,
            )?;
        }
        if self.iflag_success > self.iflag_attempts {
            return Err("iflag successes exceed attempts".into());
        }
        if self.dflag_success > self.dflag_attempts {
            return Err("dflag successes exceed attempts".into());
        }
        if self.mark_success > self.mark_attempts {
            return Err("mark successes exceed attempts".into());
        }
        Ok(())
    }

    /// Helping performed per completed update — the "conservative helping"
    /// metric of experiment T9.
    pub fn helps_per_update(&self) -> f64 {
        let updates = self.inserts + self.deletes;
        if updates == 0 {
            0.0
        } else {
            self.helps as f64 / updates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = TreeStats::default();
        s.finds.fetch_add(3, Ordering::Relaxed);
        s.iflag_success.fetch_add(2, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.finds, 3);
        assert_eq!(snap.iflag_success, 2);
    }

    #[test]
    fn figure4_accepts_consistent_counts() {
        let snap = StatsSnapshot {
            iflag_attempts: 5,
            iflag_success: 4,
            ichild_success: 4,
            iunflag_success: 4,
            inserts_true: 4,
            dflag_attempts: 4,
            dflag_success: 3,
            mark_attempts: 3,
            mark_success: 2,
            backtrack_success: 1,
            dchild_success: 2,
            dunflag_success: 2,
            deletes_true: 2,
            ..Default::default()
        };
        snap.check_figure4().unwrap();
    }

    #[test]
    fn figure4_rejects_unbalanced_insert_circuit() {
        let snap = StatsSnapshot {
            iflag_attempts: 2,
            iflag_success: 2,
            ichild_success: 1,
            ..Default::default()
        };
        let err = snap.check_figure4().unwrap_err();
        assert!(err.contains("iflag = ichild"), "{err}");
    }

    #[test]
    fn figure4_rejects_deletion_leak() {
        let snap = StatsSnapshot {
            dflag_attempts: 3,
            dflag_success: 3,
            mark_attempts: 3,
            mark_success: 1,
            backtrack_success: 1, // one DFlag never resolved
            dchild_success: 1,
            dunflag_success: 1,
            deletes_true: 1,
            ..Default::default()
        };
        let err = snap.check_figure4().unwrap_err();
        assert!(err.contains("dflag = mark + backtrack"), "{err}");
    }

    #[test]
    fn merge_adds_fieldwise_and_is_commutative() {
        let a = StatsSnapshot {
            finds: 10,
            iflag_success: 3,
            nodes_retired: 7,
            ..Default::default()
        };
        let b = StatsSnapshot {
            finds: 5,
            iflag_success: 2,
            helps: 4,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.finds, 15);
        assert_eq!(m.iflag_success, 5);
        assert_eq!(m.nodes_retired, 7);
        assert_eq!(m.helps, 4);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn merged_folds_many_and_preserves_figure4() {
        // Each per-shard snapshot satisfies the Figure-4 identities; the
        // identities are linear, so the merged snapshot must too.
        let shard = |n: u64| StatsSnapshot {
            iflag_attempts: n + 1,
            iflag_success: n,
            ichild_success: n,
            iunflag_success: n,
            inserts_true: n,
            dflag_attempts: n,
            dflag_success: n,
            mark_attempts: n,
            mark_success: n,
            dchild_success: n,
            dunflag_success: n,
            deletes_true: n,
            ..Default::default()
        };
        let parts: Vec<StatsSnapshot> = (1..=4).map(shard).collect();
        for p in &parts {
            p.check_figure4().unwrap();
        }
        let total = StatsSnapshot::merged(parts);
        assert_eq!(total.iflag_success, 1 + 2 + 3 + 4);
        assert_eq!(total.iflag_attempts, 2 + 3 + 4 + 5);
        total.check_figure4().unwrap();
    }

    #[test]
    fn merge_then_delta_round_trips() {
        let a = StatsSnapshot {
            finds: 9,
            deletes: 2,
            ..Default::default()
        };
        let b = StatsSnapshot {
            finds: 4,
            mark_success: 1,
            ..Default::default()
        };
        assert_eq!(a.merge(&b).delta(&b), a);
        assert_eq!(a.merge(&b).delta(&a), b);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = StatsSnapshot {
            finds: 10,
            helps: 4,
            ..Default::default()
        };
        let b = StatsSnapshot {
            finds: 3,
            helps: 1,
            ..Default::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.finds, 7);
        assert_eq!(d.helps, 3);
    }

    #[test]
    fn helps_per_update_handles_zero() {
        assert_eq!(StatsSnapshot::default().helps_per_update(), 0.0);
        let s = StatsSnapshot {
            inserts: 2,
            deletes: 2,
            helps: 6,
            ..Default::default()
        };
        assert!((s.helps_per_update() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_lists_every_counter() {
        let s = TreeStats::default().snapshot().to_string();
        assert!(s.contains("iflag_success"));
        assert!(s.contains("backtrack_success"));
        assert!(s.contains("helps"));
    }
}
