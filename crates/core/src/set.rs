//! `NbSet` — the paper's dictionary as a pure ordered *set*.
//!
//! The paper's abstract data type is a set of keys ("a dictionary
//! maintains a set of keys drawn from a totally ordered universe"), with
//! auxiliary values as an optional add-on. [`NbSet`] is that set view:
//! a thin wrapper over [`NbBst<K, ()>`] with set-shaped method names.

use crate::NbBst;
use std::fmt;
use std::ops::Bound;

/// A lock-free ordered set (the paper's dictionary, value-free).
///
/// # Examples
///
/// ```
/// use nbbst_core::NbSet;
///
/// let s: NbSet<u64> = NbSet::new();
/// assert!(s.insert(3));
/// assert!(s.insert(1));
/// assert!(!s.insert(3));          // already present
/// assert!(s.contains(&1));
/// assert_eq!(s.min(), Some(1));
/// assert!(s.remove(&1));
/// assert_eq!(s.iter_snapshot(), vec![3]);
/// ```
pub struct NbSet<K> {
    map: NbBst<K, ()>,
}

impl<K: Ord + Clone> NbSet<K> {
    /// Creates an empty set.
    pub fn new() -> NbSet<K> {
        NbSet { map: NbBst::new() }
    }

    /// Adds `key`; returns `false` if it was already present.
    pub fn insert(&self, key: K) -> bool {
        self.map.insert_entry(key, ()).is_ok()
    }

    /// Removes `key`; returns `true` iff it was present.
    pub fn remove(&self, key: &K) -> bool {
        self.map.remove_key(key)
    }

    /// The paper's `Find(k)`.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Smallest element, if any.
    pub fn min(&self) -> Option<K> {
        self.map.min_key()
    }

    /// Largest element, if any.
    pub fn max(&self) -> Option<K> {
        self.map.max_key()
    }

    /// In-order snapshot of the elements (weakly consistent; exact at
    /// quiescence).
    pub fn iter_snapshot(&self) -> Vec<K> {
        self.map.keys_snapshot()
    }

    /// Elements within bounds, in order (weakly consistent).
    pub fn range_snapshot(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K> {
        self.map
            .range_snapshot(lo, hi)
            .into_iter()
            .map(|(k, ())| k)
            .collect()
    }

    /// Element count by traversal (quiescent).
    pub fn len_slow(&self) -> usize {
        self.map.len_slow()
    }

    /// `true` iff empty (quiescent).
    pub fn is_empty_slow(&self) -> bool {
        self.len_slow() == 0
    }

    /// The underlying map, for advanced use (stats, invariants, raw ops).
    pub fn as_map(&self) -> &NbBst<K, ()> {
        &self.map
    }
}

impl<K: Ord + Clone> Default for NbSet<K> {
    fn default() -> Self {
        NbSet::new()
    }
}

impl<K: Ord + Clone> FromIterator<K> for NbSet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let set = NbSet::new();
        for k in iter {
            set.insert(k);
        }
        set
    }
}

impl<K: Ord + Clone + fmt::Debug> fmt::Debug for NbSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter_snapshot()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics() {
        let s: NbSet<u64> = [3u64, 1, 4, 1, 5].into_iter().collect();
        assert_eq!(s.iter_snapshot(), vec![1, 3, 4, 5]);
        assert_eq!(s.len_slow(), 4);
        assert!(s.remove(&4));
        assert!(!s.remove(&4));
        assert!(!s.is_empty_slow());
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(5));
    }

    #[test]
    fn range_view() {
        let s: NbSet<u64> = (0..20).collect();
        let mid = s.range_snapshot(Bound::Included(&5), Bound::Excluded(&10));
        assert_eq!(mid, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_set_union() {
        let s: NbSet<u64> = NbSet::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = &s;
                scope.spawn(move || {
                    // Overlapping ranges: duplicates must collapse.
                    for k in (t * 100)..(t * 100 + 200) {
                        s.insert(k % 500);
                    }
                });
            }
        });
        let elems = s.iter_snapshot();
        let mut dedup = elems.clone();
        dedup.dedup();
        assert_eq!(elems, dedup, "no duplicate elements");
        s.as_map().check_invariants().unwrap();
    }

    #[test]
    fn debug_renders_as_set() {
        let s: NbSet<u64> = [2u64, 1].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 2}");
    }
}
