//! The non-blocking BST: `Search`, `Find`, `Insert`, `Delete` and the
//! helping routines, line-for-line against the paper's Figures 8 and 9.
//!
//! Each public operation pins the epoch collector once per *attempt* (the
//! paper's retry loop iterations), so every pointer read during an attempt
//! — including Info records published by other threads — stays live for
//! the whole attempt. Retired nodes and Info records are handed to the
//! collector at exactly the points the paper's Section 6 prescribes
//! (child CAS for nodes, unflag/backtrack CAS for Info records).

use crate::node::{DInfo, IInfo, Info, Node, UpdateRef, UpdateWordExt};
use crate::state::State;
use crate::stats::{StatsSnapshot, TreeStats};
use nbbst_dictionary::{real_vs_node, ConcurrentMap, SentinelKey};
use nbbst_reclaim::{Collector, Guard, Owned, Shared};
use std::cmp::Ordering as CmpOrdering;
use std::fmt;
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::Arc;

/// The non-blocking binary search tree of Ellen, Fatourou, Ruppert and
/// van Breugel (PODC 2010).
///
/// A linearizable, lock-free dictionary built from single-word CAS:
///
/// * `Find` only reads shared memory;
/// * `Insert` completes after flagging **one** node; `Delete` after
///   flagging/marking **two** — so updates to different parts of the tree
///   run fully concurrently;
/// * any number of threads may crash (stop taking steps) at any point and
///   the remaining threads still make progress, because every flag carries
///   an *Info record* that lets others finish the stalled operation.
///
/// # Type parameters
///
/// `K: Ord + Clone` — keys are cloned into routing nodes (the paper's
/// internal nodes duplicate leaf keys). `V: Clone` — an insertion next to
/// leaf `l` creates a *new sibling* copy of `l` (Figure 1), which copies
/// `l`'s value.
///
/// # Examples
///
/// ```
/// use nbbst_core::NbBst;
/// use nbbst_dictionary::ConcurrentMap;
///
/// let tree = NbBst::new();
/// assert!(tree.insert(10u64, "ten"));
/// assert!(tree.insert(20, "twenty"));
/// assert!(!tree.insert(10, "TEN"));
/// assert_eq!(tree.get(&10), Some("ten"));
/// assert!(tree.remove(&10));
/// assert!(!tree.contains(&10));
/// ```
///
/// Concurrent use — the tree is `Sync`; share it by reference:
///
/// ```
/// use nbbst_core::NbBst;
/// use nbbst_dictionary::ConcurrentMap;
///
/// let tree: NbBst<u64, u64> = NbBst::new();
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let tree = &tree;
///         s.spawn(move || {
///             for i in 0..100 {
///                 tree.insert(t * 100 + i, i);
///             }
///         });
///     }
/// });
/// assert_eq!(tree.quiescent_len(), 400);
/// ```
pub struct NbBst<K, V> {
    /// "The shared variable Root is a pointer to the root of the tree, and
    /// this pointer is never changed" (Section 4.1).
    root: Box<Node<K, V>>,
    collector: Collector,
    stats: Option<Arc<TreeStats>>,
}

/// What the paper's `Search(k)` returns (Figure 8 lines 23–35): the leaf
/// reached, the last two internal nodes on the path, and copies of their
/// update words.
pub(crate) struct SearchResult<'g, K, V> {
    /// Grandparent of `l`; null when the search took a single step (which
    /// by postcondition (4) only happens when `l` is the `∞1` leaf).
    pub(crate) gp: Shared<'g, Node<K, V>>,
    /// Parent of `l` (always an internal node).
    pub(crate) p: Shared<'g, Node<K, V>>,
    /// The leaf reached.
    pub(crate) l: Shared<'g, Node<K, V>>,
    /// Copy of `p`'s update word read during the traversal.
    pub(crate) pupdate: UpdateRef<'g, K, V>,
    /// Copy of `gp`'s update word read during the traversal.
    pub(crate) gpupdate: UpdateRef<'g, K, V>,
}

impl<K, V> NbBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Creates the initial tree of Figure 6(a): an internal root keyed
    /// `∞2` whose children are the `∞1` and `∞2` sentinel leaves.
    pub fn new() -> NbBst<K, V> {
        let left = Box::into_raw(Box::new(Node::leaf(SentinelKey::Inf1, None)));
        let right = Box::into_raw(Box::new(Node::leaf(SentinelKey::Inf2, None)));
        NbBst {
            root: Box::new(Node::internal(SentinelKey::Inf2, left, right)),
            collector: Collector::new(),
            stats: None,
        }
    }

    /// Like [`NbBst::new`], with Figure-4 CAS counters attached
    /// (see [`NbBst::stats`]).
    pub fn with_stats() -> NbBst<K, V> {
        let mut t = NbBst::new();
        t.stats = Some(Arc::new(TreeStats::default()));
        t
    }

    /// Like [`NbBst::new`], but retiring into `collector` instead of a
    /// fresh private one — the constructor path for *sharded* frontends,
    /// where every shard clones one collector so that any thread pinned on
    /// any shard can steal and free garbage published by all of them (the
    /// evictable-bag registry is collector-global; DESIGN.md §10/§11).
    ///
    /// Sharing a collector is purely a reclamation-domain choice: trees
    /// never see each other's nodes, so the protocol is unaffected. The
    /// final teardown runs when the **last** clone of `collector` drops.
    pub fn with_collector(collector: Collector) -> NbBst<K, V> {
        let mut t = NbBst::new();
        t.collector = collector;
        t
    }

    /// [`NbBst::with_collector`] with Figure-4 counters attached
    /// (see [`NbBst::stats`]).
    pub fn with_stats_and_collector(collector: Collector) -> NbBst<K, V> {
        let mut t = NbBst::with_collector(collector);
        t.stats = Some(Arc::new(TreeStats::default()));
        t
    }

    /// Like [`NbBst::new`], but **leaking** every removed node and Info
    /// record instead of reclaiming them — the paper's literal
    /// fresh-allocations memory model (Section 4.1), provided for the
    /// reclamation-overhead ablation (experiment T8). Memory use grows
    /// without bound under update workloads.
    pub fn new_leaky() -> NbBst<K, V> {
        let mut t = NbBst::new();
        t.collector = Collector::new_leaky();
        t
    }

    /// A snapshot of the CAS/helping counters, if this tree was built with
    /// [`NbBst::with_stats`].
    pub fn stats(&self) -> Option<StatsSnapshot> {
        self.stats.as_ref().map(|s| s.snapshot())
    }

    /// The tree's epoch collector (exposed for tests and reclamation
    /// experiments).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    #[inline]
    fn bump(&self, f: impl FnOnce(&TreeStats) -> &crate::stats::Counter) {
        if let Some(s) = &self.stats {
            f(s).fetch_add(1, AtomicOrdering::Relaxed);
        }
    }

    /// Counter access for the stepped drivers in [`crate::raw`], which
    /// perform the same CAS steps outside the normal code paths.
    #[inline]
    pub(crate) fn bump_stat(&self, f: impl FnOnce(&TreeStats) -> &crate::stats::Counter) {
        self.bump(f);
    }

    /// Pins the collector for one operation attempt.
    pub(crate) fn pin(&self) -> Guard {
        self.collector.pin()
    }

    /// The root node (never changes; Section 4.1).
    pub(crate) fn root(&self) -> &Node<K, V> {
        &self.root
    }

    // ------------------------------------------------------------------
    // Search (Figure 8, lines 23–35)
    // ------------------------------------------------------------------

    /// Traverses one branch from the root to a leaf, recording the last two
    /// internal nodes and their update words.
    pub(crate) fn search<'g>(&self, key: &K, guard: &'g Guard) -> SearchResult<'g, K, V> {
        self.bump(|s| &s.searches);
        let mut gp: Shared<'g, Node<K, V>> = Shared::null();
        let mut p: Shared<'g, Node<K, V>> = Shared::null();
        // SAFETY: the root lives as long as `self`.
        let mut l: Shared<'g, Node<K, V>> =
            unsafe { Shared::from_data(&*self.root as *const Node<K, V> as usize) };
        let mut gpupdate: UpdateRef<'g, K, V> = Shared::null();
        let mut pupdate: UpdateRef<'g, K, V> = Shared::null();

        loop {
            // SAFETY: `l` was read (under `guard`) from a child pointer of
            // a node reached from the root, or is the root itself.
            let l_ref = unsafe { l.deref() };
            if l_ref.is_leaf {
                break;
            }
            gp = p; //                                 line 28
            p = l; //                                  line 29
            gpupdate = pupdate; //                     line 30
            pupdate = l_ref.load_update(guard); //     line 31
            let go_left = real_vs_node(key, &l_ref.key) == CmpOrdering::Less;
            l = l_ref.load_child(go_left, guard); //   line 32
        }
        SearchResult {
            gp,
            p,
            l,
            pupdate,
            gpupdate,
        }
    }

    // ------------------------------------------------------------------
    // Find (Figure 8, lines 36–40)
    // ------------------------------------------------------------------

    /// The paper's `Find(k)`: `true` iff `k` is in the dictionary.
    ///
    /// Performs only reads of shared memory.
    pub fn contains_key(&self, key: &K) -> bool {
        let guard = self.pin();
        let s = self.search(key, &guard);
        self.bump(|st| &st.finds);
        // SAFETY: `l` points to a leaf protected by `guard`.
        unsafe { s.l.deref() }.key.as_key() == Some(key)
    }

    /// Like [`NbBst::contains_key`], returning a clone of the stored value.
    pub fn get_cloned(&self, key: &K) -> Option<V> {
        let guard = self.pin();
        let s = self.search(key, &guard);
        self.bump(|st| &st.finds);
        // SAFETY: `l` points to a leaf protected by `guard`.
        let l_ref = unsafe { s.l.deref() };
        if l_ref.key.as_key() == Some(key) {
            l_ref.value.clone()
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Insert (Figure 8, lines 41–68)
    // ------------------------------------------------------------------

    /// Adds `key` with `value`; on duplicate, returns ownership of both.
    ///
    /// # Errors
    ///
    /// `Err((key, value))` if the key was already present (the paper's
    /// `Insert` returns `False`; we additionally hand the inputs back).
    pub fn insert_entry(&self, key: K, value: V) -> Result<(), (K, V)> {
        // Line 44: the new leaf is allocated once, before the retry loop.
        let new_leaf = Box::into_raw(Box::new(Node::leaf(
            SentinelKey::Key(key.clone()),
            Some(value),
        )));

        loop {
            let guard = self.pin();
            let s = self.search(&key, &guard); //                       line 49
                                               // SAFETY: `l` points to a leaf protected by `guard`.
            let l_ref = unsafe { s.l.deref() };
            if l_ref.key.as_key() == Some(&key) {
                // Line 50: cannot insert a duplicate key. Recover the
                // never-published leaf's contents.
                self.bump(|st| &st.inserts);
                // SAFETY: `new_leaf` was never published.
                let leaf = unsafe { Box::from_raw(new_leaf) };
                let v = leaf.value.expect("fresh leaf carries its value");
                let SentinelKey::Key(k) = leaf.key else {
                    unreachable!("fresh leaf has a real key")
                };
                return Err((k, v));
            }
            if s.pupdate.state() != State::Clean {
                // Line 51: help the operation blocking the parent, retry.
                self.help(s.pupdate, &guard);
                self.bump(|st| &st.insert_retries);
                continue;
            }

            // Lines 52–54: build the replacement subtree of Figure 1.
            let new_sibling =
                Box::into_raw(Box::new(Node::leaf(l_ref.key.clone(), l_ref.value.clone())));
            let new_key = SentinelKey::Key(key.clone());
            let (routing, left, right) = if new_key < l_ref.key {
                (
                    l_ref.key.clone(),
                    new_leaf as *const _,
                    new_sibling as *const _,
                )
            } else {
                (new_key, new_sibling as *const _, new_leaf as *const _)
            };
            let new_internal = Box::into_raw(Box::new(Node::internal(routing, left, right)));

            // Line 55: fresh IInfo record.
            let op = Owned::new(Info::Insert(IInfo {
                p: s.p.as_raw(),
                l: s.l.as_raw(),
                new_internal,
            }))
            .with_tag(State::IFlag.tag());

            // Line 56: the iflag CAS.
            self.bump(|st| &st.iflag_attempts);
            // SAFETY: `p` was read by this search and is guard-protected.
            let p_ref = unsafe { s.p.deref() };
            // AcqRel: Release publishes the fresh IInfo record (and the
            // subtree it points to) to helpers; failure is Acquire because
            // the observed word is helped (dereferenced) below, and a
            // failed CAS must not synchronize more than a successful one,
            // so success carries the Acquire too (enforced by nbbst-lint).
            match p_ref.update.compare_exchange(
                s.pupdate,
                op,
                AtomicOrdering::AcqRel,
                AtomicOrdering::Acquire,
                &guard,
            ) {
                Ok(op_word) => {
                    // Lines 57–59: flag won; finish and report success.
                    self.bump(|st| &st.iflag_success);
                    self.help_insert(op_word, &guard);
                    self.bump(|st| &st.inserts);
                    self.bump(|st| &st.inserts_true);
                    return Ok(());
                }
                Err(e) => {
                    // Line 61: the iflag CAS failed; help whoever holds the
                    // flag and retry. The speculative nodes are ours alone.
                    // SAFETY: never published.
                    unsafe {
                        drop(Box::from_raw(new_sibling));
                        drop(Box::from_raw(new_internal));
                    }
                    drop(e.new); // the unpublished IInfo record
                    self.help(e.current, &guard);
                    self.bump(|st| &st.insert_retries);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Delete (Figure 9, lines 69–89)
    // ------------------------------------------------------------------

    /// Removes `key`; returns `true` iff it was present.
    pub fn remove_key(&self, key: &K) -> bool {
        self.remove_and(key, |_| ()).is_some()
    }

    /// Removes `key`, returning a clone of its value if it was present.
    pub fn remove_entry(&self, key: &K) -> Option<V> {
        self.remove_and(key, |v| v.cloned())?
    }

    /// Shared deletion driver; `extract` runs on the deleted leaf's value
    /// while it is still guard-protected.
    fn remove_and<R>(&self, key: &K, extract: impl Fn(Option<&V>) -> R) -> Option<R> {
        loop {
            let guard = self.pin();
            let s = self.search(key, &guard); //                        line 75
                                              // SAFETY: `l` points to a leaf protected by `guard`.
            let l_ref = unsafe { s.l.deref() };
            if l_ref.key.as_key() != Some(key) {
                // Line 76: key not in the tree.
                self.bump(|st| &st.deletes);
                return None;
            }
            if s.gpupdate.state() != State::Clean {
                // Line 77: grandparent busy; help, retry.
                self.help(s.gpupdate, &guard);
                self.bump(|st| &st.delete_retries);
                continue;
            }
            if s.pupdate.state() != State::Clean {
                // Line 78: parent busy; help, retry.
                self.help(s.pupdate, &guard);
                self.bump(|st| &st.delete_retries);
                continue;
            }

            // Line 80: fresh DInfo record. `gp` is non-null because `l`
            // holds a real key (Search postcondition 4).
            debug_assert!(!s.gp.is_null(), "real-keyed leaf has a grandparent");
            let op = Owned::new(Info::Delete(DInfo {
                gp: s.gp.as_raw(),
                p: s.p.as_raw(),
                l: s.l.as_raw(),
                pupdate: s.pupdate.into_data(),
            }))
            .with_tag(State::DFlag.tag());

            // Line 81: the dflag CAS.
            self.bump(|st| &st.dflag_attempts);
            // SAFETY: `gp` was read by this search and is guard-protected
            // (non-null was asserted above).
            let gp_ref = unsafe { s.gp.deref() };
            // AcqRel: Release publishes the fresh DInfo record; failure is
            // Acquire because the observed word is helped (dereferenced)
            // below, and success must be at least as strong on the read
            // side as failure (enforced by nbbst-lint).
            match gp_ref.update.compare_exchange(
                s.gpupdate,
                op,
                AtomicOrdering::AcqRel,
                AtomicOrdering::Acquire,
                &guard,
            ) {
                Ok(op_word) => {
                    self.bump(|st| &st.dflag_success);
                    // Clone the value before the leaf can be retired; the
                    // guard keeps `l_ref` valid either way.
                    let result = extract(l_ref.value.as_ref());
                    if self.help_delete(op_word, &guard) {
                        // Line 83: deletion completed.
                        self.bump(|st| &st.deletes);
                        self.bump(|st| &st.deletes_true);
                        return Some(result);
                    }
                    self.bump(|st| &st.delete_retries);
                }
                Err(e) => {
                    // Line 85: dflag failed; help the blocker and retry.
                    drop(e.new); // unpublished DInfo
                    self.help(e.current, &guard);
                    self.bump(|st| &st.delete_retries);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Helping (Figure 8 lines 63–68, Figure 9 lines 90–118)
    // ------------------------------------------------------------------

    /// `Help(u)` (lines 107–112): dispatch on the state packed in `u`.
    pub(crate) fn help(&self, u: UpdateRef<'_, K, V>, guard: &Guard) {
        self.bump(|st| &st.helps);
        match u.state() {
            State::IFlag => self.help_insert(u, guard),
            State::Mark => self.help_marked(u, guard),
            State::DFlag => {
                let _ = self.help_delete(u, guard);
            }
            State::Clean => {}
        }
    }

    /// `HelpInsert(op)` (lines 63–68): perform the ichild and iunflag CAS
    /// steps described by an IInfo record.
    pub(crate) fn help_insert(&self, op: UpdateRef<'_, K, V>, guard: &Guard) {
        self.bump(|st| &st.help_insert_calls);
        let op = op.with_tag(0);
        // SAFETY: `op` was read from (or just installed into) an update
        // word under `guard`; Info records are retired only after their
        // unflag CAS, so it is live here.
        let info = unsafe { op.deref() }.as_insert();
        // SAFETY: nodes referenced by a live Info record are retired no
        // earlier than the record's circuit completes.
        let p = unsafe { &*info.p };
        let l: Shared<'_, Node<K, V>> = unsafe { Shared::from_data(info.l as usize) };
        // SAFETY: as above — named by a live Info record.
        let new: Shared<'_, Node<K, V>> = unsafe { Shared::from_data(info.new_internal as usize) };

        // Line 66: the ichild CAS (via CAS-Child). At most one helper's CAS
        // succeeds; that helper retires the replaced leaf.
        if self.cas_child(p, l, new, guard) {
            self.bump(|st| &st.ichild_success);
            self.bump(|st| &st.nodes_retired);
            // SAFETY: `l` has just been unlinked by our CAS and is retired
            // exactly once (only the successful CASer reaches this).
            unsafe { guard.defer_destroy(l) };
        }

        // Line 67: the iunflag CAS. The winner retires the Info record
        // (Section 6: "retirement ... could be performed when an unflag ...
        // CAS takes place").
        let expected = op.with_tag(State::IFlag.tag());
        let clean = op.with_tag(State::Clean.tag());
        // Release: a thread that Acquire-loads the Clean word must also see
        // the ichild splice that preceded it. The failure value is ignored.
        if p.update
            .compare_exchange(
                expected,
                clean,
                AtomicOrdering::Release,
                AtomicOrdering::Relaxed,
                guard,
            )
            .is_ok()
        {
            self.bump(|st| &st.iunflag_success);
            self.bump(|st| &st.infos_retired);
            // SAFETY: one retire per circuit (unique unflag winner); the
            // word now holds the pointer only as an inert comparand.
            unsafe { guard.defer_destroy(op) };
        }
    }

    /// `HelpDelete(op)` (lines 90–99): try to mark the parent; on success
    /// complete via [`NbBst::help_marked`], otherwise help the blocker and
    /// backtrack. Returns whether the deletion completed.
    pub(crate) fn help_delete(&self, op: UpdateRef<'_, K, V>, guard: &Guard) -> bool {
        self.bump(|st| &st.help_delete_calls);
        let op = op.with_tag(0);
        // SAFETY: as in `help_insert` — live until its circuit's unflag or
        // backtrack CAS retires it.
        let info = unsafe { op.deref() }.as_delete();
        let p = unsafe { &*info.p };
        // SAFETY: as above — named by a live Info record.
        let gp = unsafe { &*info.gp };

        // Line 91: the mark CAS, expecting the pupdate word the deleter's
        // Search observed.
        let expected = info.pupdate_word(guard);
        let mark_word = op.with_tag(State::Mark.tag());
        self.bump(|st| &st.mark_attempts);
        // AcqRel: Release publishes the Mark (pointing at the already-
        // published DInfo); failure is Acquire because the observed word is
        // helped (dereferenced) in the backtrack arm below, and success
        // must be at least as strong on the read side as failure
        // (enforced by nbbst-lint).
        let outcome = p.update.compare_exchange(
            expected,
            mark_word,
            AtomicOrdering::AcqRel,
            AtomicOrdering::Acquire,
            guard,
        );

        let marked_by_us = outcome.is_ok();
        let already_marked_for_op = matches!(&outcome, Err(e) if e.current == mark_word);
        if marked_by_us {
            self.bump(|st| &st.mark_success);
        }
        if marked_by_us || already_marked_for_op {
            // Line 92: `op→p` is successfully marked (by us or a helper of
            // this same operation); complete the deletion.
            self.help_marked(op, guard); //                line 93
            true //                                        line 94
        } else {
            let current = match outcome {
                Err(e) => e.current,
                Ok(_) => unreachable!("handled above"),
            };
            // Line 97: help the operation that caused the failure.
            self.help(current, guard);
            // Line 98: the backtrack CAS removes our flag so the Delete
            // can retry from scratch.
            let dflag = op.with_tag(State::DFlag.tag());
            let clean = op.with_tag(State::Clean.tag());
            // Release pairs with the Acquire loads of helpers that observe
            // Clean; the failure value is ignored.
            if gp
                .update
                .compare_exchange(
                    dflag,
                    clean,
                    AtomicOrdering::Release,
                    AtomicOrdering::Relaxed,
                    guard,
                )
                .is_ok()
            {
                self.bump(|st| &st.backtrack_success);
                self.bump(|st| &st.infos_retired);
                // SAFETY: backtrack and dunflag are mutually exclusive for
                // one DInfo (the paper's Section 5 argument), so this is
                // the record's unique retirement.
                unsafe { guard.defer_destroy(op) };
            }
            false //                                       line 99
        }
    }

    /// `HelpMarked(op)` (lines 100–106): splice the marked parent out of
    /// the tree (dchild CAS) and unflag the grandparent (dunflag CAS).
    pub(crate) fn help_marked(&self, op: UpdateRef<'_, K, V>, guard: &Guard) {
        self.bump(|st| &st.help_marked_calls);
        let op = op.with_tag(0);
        // SAFETY: `op` is a live, guard-protected DInfo record (retired
        // only by its circuit's dunflag or backtrack winner), and the
        // nodes it names outlive it.
        let info = unsafe { op.deref() }.as_delete();
        let p = unsafe { &*info.p };
        let gp = unsafe { &*info.gp };

        // Lines 103–104: `other` := the sibling of the leaf being deleted.
        // `p` is marked, so its child pointers are frozen; both loads see
        // final values.
        let right = p.load_child(false, guard);
        let other = if right.as_raw() == info.l {
            p.load_child(true, guard)
        } else {
            right
        };

        // Line 105: the dchild CAS. The unique winner retires the two
        // removed nodes (the marked parent and the deleted leaf).
        // SAFETY: both nodes are named by the live DInfo record above.
        let p_shared: Shared<'_, Node<K, V>> = unsafe { Shared::from_data(info.p as usize) };
        let l_shared: Shared<'_, Node<K, V>> = unsafe { Shared::from_data(info.l as usize) };
        if self.cas_child(gp, p_shared, other, guard) {
            self.bump(|st| &st.dchild_success);
            self.bump(|st| &st.nodes_retired);
            self.bump(|st| &st.nodes_retired);
            // SAFETY: our CAS unlinked `p` (and with it the leaf `l`);
            // unique retirement as only one dchild per circuit succeeds.
            unsafe {
                guard.defer_destroy(p_shared);
                guard.defer_destroy(l_shared);
            }
        }

        // Line 106: the dunflag CAS; winner retires the DInfo record.
        let dflag = op.with_tag(State::DFlag.tag());
        let clean = op.with_tag(State::Clean.tag());
        // Release: a thread that Acquire-loads the Clean word must also see
        // the dchild splice that preceded it. The failure value is ignored.
        if gp
            .update
            .compare_exchange(
                dflag,
                clean,
                AtomicOrdering::Release,
                AtomicOrdering::Relaxed,
                guard,
            )
            .is_ok()
        {
            self.bump(|st| &st.dunflag_success);
            self.bump(|st| &st.infos_retired);
            // SAFETY: unique retirement (unique dunflag winner; backtrack
            // cannot also succeed once the mark CAS succeeded).
            unsafe { guard.defer_destroy(op) };
        }
    }

    /// `CAS-Child(parent, old, new)` (lines 113–118): pick the left or
    /// right child slot by comparing keys, then CAS it.
    pub(crate) fn cas_child(
        &self,
        parent: &Node<K, V>,
        old: Shared<'_, Node<K, V>>,
        new: Shared<'_, Node<K, V>>,
        guard: &Guard,
    ) -> bool {
        // SAFETY: `new` is either a freshly built (unpublished) subtree or
        // a node read under `guard`.
        let new_ref = unsafe { new.deref() };
        let slot = if new_ref.key < parent.key {
            &parent.left //                                line 115
        } else {
            &parent.right //                               line 117
        };
        // Release publishes the spliced node's initialization (for ichild,
        // the whole fresh subtree) to Acquire-loading traversals; the
        // failure value is ignored (a helper already did the splice).
        slot.compare_exchange(
            old,
            new,
            AtomicOrdering::Release,
            AtomicOrdering::Relaxed,
            guard,
        )
        .is_ok()
    }
}

#[cfg(test)]
impl NbBst<u64, u64> {
    /// Builds, in O(n) time, exactly the tree that
    /// `insert_entry(0, 0) .. insert_entry(n-1, n-1)` produces: a
    /// right-leaning path of depth `n + 1` under the sentinel spine
    /// (the tree is never rebalanced, so ascending inserts degenerate).
    ///
    /// Test-only: the public-API build walks the whole existing path per
    /// insert and is therefore Θ(n²) — minutes of wall clock at the
    /// 100 000-key scale the stack-overflow regression tests need.
    /// `degenerate_constructor_matches_real_inserts` locks this
    /// constructor against the real insert path shape-for-shape.
    pub(crate) fn degenerate_ascending(n: u64) -> NbBst<u64, u64> {
        assert!(n >= 1, "a degenerate path needs at least one key");
        // Innermost: the deepest leaf holds the largest key. Each wrap
        // `internal(k) { left: leaf(k-1), right: <deeper chain> }`
        // mirrors one ascending insert (routing key = the larger key).
        let mut cur = Box::into_raw(Box::new(Node::leaf(SentinelKey::Key(n - 1), Some(n - 1))));
        for k in (1..n).rev() {
            let left = Box::into_raw(Box::new(Node::leaf(SentinelKey::Key(k - 1), Some(k - 1))));
            cur = Box::into_raw(Box::new(Node::internal(SentinelKey::Key(k), left, cur)));
        }
        let inf1 = Box::into_raw(Box::new(Node::leaf(SentinelKey::Inf1, None)));
        let under_root = Box::into_raw(Box::new(Node::internal(SentinelKey::Inf1, cur, inf1)));
        let inf2 = Box::into_raw(Box::new(Node::leaf(SentinelKey::Inf2, None)));
        NbBst {
            root: Box::new(Node::internal(SentinelKey::Inf2, under_root, inf2)),
            collector: Collector::new(),
            stats: None,
        }
    }
}

impl<K, V> Default for NbBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    fn default() -> Self {
        NbBst::new()
    }
}

impl<K, V> ConcurrentMap<K, V> for NbBst<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_entry(key, value).is_ok()
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_key(key)
    }

    fn contains(&self, key: &K) -> bool {
        self.contains_key(key)
    }

    fn get(&self, key: &K) -> Option<V> {
        self.get_cloned(key)
    }

    fn quiescent_len(&self) -> usize {
        self.len_slow()
    }
}

impl<K, V> fmt::Debug for NbBst<K, V>
where
    K: Ord + Clone + fmt::Debug,
    V: Clone,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NbBst")
            .field("len", &self.len_slow())
            .finish_non_exhaustive()
    }
}

impl<K, V> Drop for NbBst<K, V> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent operations. Free (1) every node still
        // reachable from the root, (2) every Info record still *flagged*
        // into a reachable node (a non-Clean state means its circuit never
        // reached the unflag/backtrack CAS that would have retired it —
        // e.g. a "crashed" stepped operation), and (3) for stalled inserts,
        // the speculative subtree that was never installed.
        //
        // Info pointers under a Clean state were already retired by their
        // circuit's winner and are freed by the collector, not here.
        use std::collections::HashSet;

        let mut reachable: Vec<*mut Node<K, V>> = Vec::new();
        let mut reachable_set: HashSet<*const Node<K, V>> = HashSet::new();
        let mut flagged_infos: HashSet<*mut Info<K, V>> = HashSet::new();

        // The root Box frees itself; walk its children.
        let mut stack: Vec<*mut Node<K, V>> = Vec::new();
        {
            let root = &*self.root;
            collect_node_edges(root, &mut stack, &mut flagged_infos);
        }
        while let Some(n) = stack.pop() {
            if !reachable_set.insert(n as *const _) {
                continue;
            }
            reachable.push(n);
            // SAFETY: teardown; we own everything.
            let node = unsafe { &*n };
            if !node.is_leaf {
                collect_node_edges(node, &mut stack, &mut flagged_infos);
            }
        }

        // Free stalled-insert speculative subtrees (IInfo whose
        // new_internal never made it into the tree).
        for &info in &flagged_infos {
            // SAFETY: flagged Info records were never retired (their state
            // is not Clean), so we uniquely own them at teardown.
            if let Info::Insert(iinfo) = unsafe { &*info } {
                let ni = iinfo.new_internal;
                if !reachable_set.contains(&(ni as *const _)) {
                    // SAFETY: never published; the subtree is exactly the
                    // fresh internal node and its two fresh leaves.
                    unsafe {
                        let guard = nbbst_reclaim::unprotected();
                        let internal = Box::from_raw(ni as *mut Node<K, V>);
                        // Relaxed: teardown holds exclusive access.
                        let l = internal.left.load(AtomicOrdering::Relaxed, &guard);
                        let r = internal.right.load(AtomicOrdering::Relaxed, &guard);
                        // One of the children may be reachable... it cannot
                        // be: new_internal's children are the fresh leaf and
                        // fresh sibling, allocated by the stalled insert.
                        drop(Box::from_raw(l.as_raw() as *mut Node<K, V>));
                        drop(Box::from_raw(r.as_raw() as *mut Node<K, V>));
                    }
                }
            }
        }
        for info in flagged_infos {
            // SAFETY: unique ownership as argued above.
            unsafe { drop(Box::from_raw(info)) };
        }
        for n in reachable {
            // SAFETY: each reachable node collected exactly once.
            unsafe { drop(Box::from_raw(n)) };
        }
        // The collector (dropped after this) frees everything that was
        // retired during normal operation.
    }
}

/// Teardown helper: pushes a node's children and records its flagged Info
/// pointer, if any.
fn collect_node_edges<K, V>(
    node: &Node<K, V>,
    stack: &mut Vec<*mut Node<K, V>>,
    flagged_infos: &mut std::collections::HashSet<*mut Info<K, V>>,
) {
    // SAFETY: teardown-only, single-threaded.
    let guard = unsafe { nbbst_reclaim::unprotected() };
    // Relaxed: teardown holds exclusive access.
    let l = node.left.load(AtomicOrdering::Relaxed, &guard);
    let r = node.right.load(AtomicOrdering::Relaxed, &guard);
    if !l.is_null() {
        stack.push(l.as_raw() as *mut Node<K, V>);
    }
    if !r.is_null() {
        stack.push(r.as_raw() as *mut Node<K, V>);
    }
    let u = node.update.load(AtomicOrdering::Relaxed, &guard);
    if State::from_tag(u.tag()) != State::Clean && !u.is_null() {
        flagged_infos.insert(u.as_raw() as *mut Info<K, V>);
    }
}
