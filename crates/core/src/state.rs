//! The four-valued `state` field of the paper's `Update` word.
//!
//! The paper packs `{Clean, IFlag, DFlag, Mark}` together with an Info
//! pointer into a single CAS word (Section 3: "the two lowest-order bits of
//! a pointer can be used to store the state"). We realize that with the
//! tag bits of [`nbbst_reclaim::Shared`]: an update field is an
//! `Atomic<Info<K, V>>` whose 2-bit tag is the [`State`].

use std::fmt;

/// The state half of an update word (Figure 7, lines 1–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum State {
    /// No operation holds this node; its child pointers may be flagged.
    Clean,
    /// An `Insert` has flagged this node and will change one of its child
    /// pointers (an `IInfo` pointer accompanies the state).
    IFlag,
    /// A `Delete` has flagged this node (the grandparent of the leaf being
    /// deleted); a `DInfo` pointer accompanies the state.
    DFlag,
    /// This node is permanently marked for deletion; its child pointers
    /// will never change again.
    Mark,
}

impl State {
    /// The tag value stored in the low bits of the update word.
    pub const fn tag(self) -> usize {
        match self {
            State::Clean => 0,
            State::IFlag => 1,
            State::DFlag => 2,
            State::Mark => 3,
        }
    }

    /// Decodes a 2-bit tag.
    ///
    /// # Panics
    ///
    /// Panics if `tag > 3`; update words only ever carry 2 tag bits.
    pub fn from_tag(tag: usize) -> State {
        match tag {
            0 => State::Clean,
            1 => State::IFlag,
            2 => State::DFlag,
            3 => State::Mark,
            _ => panic!("invalid state tag {tag}"),
        }
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            State::Clean => "Clean",
            State::IFlag => "IFlag",
            State::DFlag => "DFlag",
            State::Mark => "Mark",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        for s in [State::Clean, State::IFlag, State::DFlag, State::Mark] {
            assert_eq!(State::from_tag(s.tag()), s);
        }
    }

    #[test]
    fn tags_fit_in_two_bits() {
        for s in [State::Clean, State::IFlag, State::DFlag, State::Mark] {
            assert!(s.tag() <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "invalid state tag")]
    fn invalid_tag_panics() {
        State::from_tag(4);
    }

    #[test]
    fn display_names() {
        assert_eq!(State::Clean.to_string(), "Clean");
        assert_eq!(State::Mark.to_string(), "Mark");
    }
}
