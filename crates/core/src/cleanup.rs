//! The Section 6 "cleaning search": a `Find` variant that helps remove
//! marked nodes it passes.
//!
//! "Hazard pointers may be applicable to a slightly modified version of
//! our implementation, where a Search helps Delete operations to perform
//! their dchild CAS steps to remove from the tree marked nodes that the
//! Search encounters" (Section 6). This module implements that modified
//! Search. The tree's reclamation here is epochs, not hazard pointers, so
//! the modification is not *required* for safety — it is provided as the
//! paper's proposed extension, and it also shortens paths behind stalled
//! deleters (a marked node sits on every search path through it until
//! someone performs its dchild CAS).
//!
//! Trade-off: the cleaning search reads every internal node's update word
//! (a second cache line per hop), where the plain `Search` reads only the
//! child pointer; the `f4_stats_overhead`-style cost comparison lives in
//! this module's tests and the micro benches.

use crate::node::{Node, UpdateWordExt};
use crate::state::State;
use crate::tree::NbBst;
use nbbst_dictionary::real_vs_node;
use std::cmp::Ordering as CmpOrdering;

impl<K, V> NbBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// `Find(k)` that additionally completes the deletion of any marked
    /// node it traverses (the paper's Section 6 modification).
    ///
    /// Returns the same answer `contains_key` would; as a side effect,
    /// marked-but-not-yet-spliced nodes on the search path are physically
    /// removed (their `dchild`/`dunflag` CAS steps are performed).
    ///
    /// # Examples
    ///
    /// ```
    /// use nbbst_core::NbBst;
    ///
    /// let t: NbBst<u64, u64> = NbBst::new();
    /// t.insert_entry(1, 1).unwrap();
    /// assert!(t.contains_with_cleanup(&1));
    /// assert!(!t.contains_with_cleanup(&2));
    /// ```
    pub fn contains_with_cleanup(&self, key: &K) -> bool {
        let guard = self.pin();
        let mut cur: &Node<K, V> = self.root();
        loop {
            if cur.is_leaf {
                return cur.key.as_key() == Some(key);
            }
            let update = cur.load_update(&guard);
            if update.state() == State::Mark {
                // `cur` is marked: its deletion is unfinished. Complete the
                // dchild + dunflag steps on the deleter's behalf, then
                // restart from the root — `cur` is now off the path.
                self.help_marked(update, &guard);
                cur = self.root();
                continue;
            }
            let go_left = real_vs_node(key, &cur.key) == CmpOrdering::Less;
            // SAFETY: reachable child under pin.
            cur = unsafe { cur.load_child(go_left, &guard).deref() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::{MarkOutcome, RawDelete};

    fn tree(keys: &[u64]) -> NbBst<u64, u64> {
        let t = NbBst::with_stats();
        for &k in keys {
            t.insert_entry(k, k).unwrap();
        }
        t
    }

    #[test]
    fn behaves_like_contains_on_quiet_trees() {
        let t = tree(&[2, 4, 6, 8]);
        for k in 0..10u64 {
            assert_eq!(t.contains_with_cleanup(&k), t.contains_key(&k), "key {k}");
        }
    }

    #[test]
    fn cleaning_search_finishes_a_stalled_deletion() {
        let t = tree(&[10, 20, 30]);
        // Crash a delete between mark and dchild: a marked node stays on
        // the search path for 20 and 30.
        let mut del = RawDelete::new(&t, 20);
        assert!(del.search().is_ready());
        assert!(del.flag());
        assert_eq!(del.mark(), MarkOutcome::Marked);
        del.abandon();

        let before = t.stats().unwrap();
        // The deletion linearizes at its dchild CAS, which has NOT run:
        // the plain Find still sees the key and leaves the corpse alone.
        assert!(t.contains_key(&20));
        assert_eq!(t.stats().unwrap().dchild_success, before.dchild_success);

        // The cleaning search performs the dchild + dunflag steps when it
        // hits the marked parent, then restarts — and no longer finds 20.
        assert!(!t.contains_with_cleanup(&20));
        let after = t.stats().unwrap();
        assert_eq!(after.dchild_success, before.dchild_success + 1);
        assert_eq!(after.dunflag_success, before.dunflag_success + 1);
        t.check_invariants().unwrap();
        assert!(t.contains_key(&10) && t.contains_key(&30));
    }

    #[test]
    fn cleaning_search_survives_concurrent_churn() {
        let t = tree(&(0..64).collect::<Vec<_>>());
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 0..5_000u64 {
                    let k = (i * 13) % 64;
                    if i % 2 == 0 {
                        t.remove_key(&k);
                    } else {
                        t.insert_entry(k, k).ok();
                    }
                }
            });
            for i in 0..5_000u64 {
                let k = (i * 7) % 64;
                // Answers must agree with *some* recent state; here we only
                // require no crash/corruption and self-consistency.
                let _ = t.contains_with_cleanup(&k);
            }
            writer.join().unwrap();
        });
        t.check_invariants().unwrap();
        t.stats()
            .unwrap()
            .check_figure4_allowing_abandoned()
            .unwrap();
    }

    #[test]
    fn figure4_identities_hold_when_searches_perform_dchild() {
        // The cleaning search's dchild counts exactly once per circuit,
        // keeping the identities intact even when it races the deleter.
        let t = tree(&[1, 2, 3, 4, 5]);
        for k in [2u64, 4] {
            let mut del = RawDelete::new(&t, k);
            assert!(del.search().is_ready());
            assert!(del.flag());
            assert_eq!(del.mark(), MarkOutcome::Marked);
            del.abandon();
            assert!(!t.contains_with_cleanup(&k));
        }
        t.check_invariants().unwrap();
        t.stats()
            .unwrap()
            .check_figure4_allowing_abandoned()
            .unwrap();
    }
}
