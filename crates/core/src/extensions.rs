//! API extensions beyond the paper's three operations.
//!
//! The paper notes the dictionary "can also store auxiliary data with
//! each key"; these conveniences make that practical in Rust without
//! changing the algorithm: zero-clone guarded reads, bounded range
//! snapshots (using the BST order), min/max queries, streaming in-order
//! visitors, and the standard collection traits.
//!
//! All snapshot-style views are **weakly consistent** (exact at
//! quiescence), like the views in [`crate::view`], and — also like
//! [`crate::view`] — every traversal here is **iterative** (explicit
//! heap stack via the in-order cursor), so snapshots cost O(1) call
//! stack even on the degenerate O(n)-deep trees that ordered insertion
//! produces in this never-rebalanced structure. Point reads
//! ([`NbBst::get_with`], [`NbBst::min_key`], [`NbBst::max_key`]) are
//! linearizable: they are `Find`s (a min/max query is a `Search` steered
//! hard left/right, reaching a leaf that was on its search path).

use crate::tree::NbBst;
use crate::view::InorderCursor;
use nbbst_dictionary::SentinelKey;
use std::ops::Bound;

fn in_lo<K: Ord>(k: &K, lo: Bound<&K>) -> bool {
    match lo {
        Bound::Unbounded => true,
        Bound::Included(b) => k >= b,
        Bound::Excluded(b) => k > b,
    }
}

fn in_hi<K: Ord>(k: &K, hi: Bound<&K>) -> bool {
    match hi {
        Bound::Unbounded => true,
        Bound::Included(b) => k <= b,
        Bound::Excluded(b) => k < b,
    }
}

impl<K, V> NbBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Applies `f` to the value stored under `key` without cloning it.
    ///
    /// The reference is valid only inside `f` (it is protected by an
    /// epoch pin for the duration of the call).
    ///
    /// # Examples
    ///
    /// ```
    /// use nbbst_core::NbBst;
    ///
    /// let t: NbBst<u64, String> = NbBst::new();
    /// t.insert_entry(1, "payload".to_string()).unwrap();
    /// let len = t.get_with(&1, |v| v.len());
    /// assert_eq!(len, Some(7));
    /// ```
    pub fn get_with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        let guard = self.pin();
        let s = self.search(key, &guard);
        // SAFETY: leaf protected by `guard`.
        let l_ref = unsafe { s.l.deref() };
        if l_ref.key.as_key() == Some(key) {
            l_ref.value.as_ref().map(f)
        } else {
            None
        }
    }

    /// The smallest real key (a leftmost `Search`). `None` when empty.
    pub fn min_key(&self) -> Option<K> {
        self.extreme_key(true)
    }

    /// The largest real key (a rightmost `Search` within the non-sentinel
    /// region). `None` when empty.
    pub fn max_key(&self) -> Option<K> {
        self.extreme_key(false)
    }

    fn extreme_key(&self, min: bool) -> Option<K> {
        let guard = self.pin();
        let mut cur = self.root();
        loop {
            if cur.is_leaf {
                // A sentinel leaf here means the dictionary is empty on
                // this side (min and max both land on `[∞1]` then).
                return cur.key.as_key().cloned();
            }
            // Min: always left. Max: right under real routing keys, but
            // left under sentinel routing keys — all real content is
            // strictly less than the sentinels.
            let go_left = min || cur.key.is_sentinel();
            // SAFETY: reachable child under pin.
            cur = unsafe { cur.load_child(go_left, &guard).deref() };
        }
    }

    /// All `(key, value)` clones with `lo <= key < hi` style bounds, in
    /// order, pruning subtrees outside the range. Weakly consistent;
    /// O(1) call stack regardless of tree depth.
    ///
    /// # Examples
    ///
    /// ```
    /// use nbbst_core::NbBst;
    /// use std::ops::Bound;
    ///
    /// let t: NbBst<u64, u64> = NbBst::new();
    /// for k in [1u64, 3, 5, 7, 9] {
    ///     t.insert_entry(k, k * 10).unwrap();
    /// }
    /// let mid = t.range_snapshot(Bound::Included(&3), Bound::Excluded(&9));
    /// assert_eq!(mid, vec![(3, 30), (5, 50), (7, 70)]);
    /// ```
    pub fn range_snapshot(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.for_each_in_range(lo, hi, |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Applies `f` to every `(key, value)` in ascending key order without
    /// cloning or materializing the whole snapshot. Weakly consistent,
    /// O(1) call stack; the references are valid only inside `f` (the
    /// tree is pinned for the duration of the call).
    ///
    /// # Examples
    ///
    /// ```
    /// use nbbst_core::NbBst;
    ///
    /// let t: NbBst<u64, u64> = (0u64..5).map(|k| (k, k * k)).collect();
    /// let mut sum = 0;
    /// t.for_each_entry(|_, v| sum += *v);
    /// assert_eq!(sum, 0 + 1 + 4 + 9 + 16);
    /// ```
    pub fn for_each_entry(&self, mut f: impl FnMut(&K, &V)) {
        self.for_each_in_range(Bound::Unbounded, Bound::Unbounded, |k, v| f(k, v));
    }

    /// [`NbBst::for_each_entry`] restricted to `[lo, hi]`-style bounds,
    /// pruning subtrees outside the range during the descent.
    pub fn for_each_in_range(&self, lo: Bound<&K>, hi: Bound<&K>, mut f: impl FnMut(&K, &V)) {
        let guard = self.pin();
        let mut cursor = InorderCursor::with_bounds(self.root(), &guard, lo, hi);
        while let Some(leaf) = cursor.next_leaf() {
            if let SentinelKey::Key(k) = &leaf.key {
                // The cursor prunes whole subtrees; leaves of partially
                // overlapping subtrees still need the exact bound check.
                if in_lo(k, lo) && in_hi(k, hi) {
                    let v = leaf.value.as_ref().expect("real leaf has value");
                    f(k, v);
                }
            }
        }
    }

    /// Bulk-inserts from an iterator, skipping duplicates; returns how
    /// many keys were newly inserted.
    pub fn insert_all<I: IntoIterator<Item = (K, V)>>(&self, iter: I) -> usize {
        iter.into_iter()
            .map(|(k, v)| usize::from(self.insert_entry(k, v).is_ok()))
            .sum()
    }
}

impl<K, V> FromIterator<(K, V)> for NbBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let tree = NbBst::new();
        tree.insert_all(iter);
        tree
    }
}

impl<K, V> Extend<(K, V)> for NbBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        self.insert_all(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(keys: &[u64]) -> NbBst<u64, u64> {
        keys.iter().map(|&k| (k, k * 10)).collect()
    }

    #[test]
    fn get_with_avoids_clone() {
        let t: NbBst<u64, Vec<u64>> = NbBst::new();
        t.insert_entry(1, vec![1, 2, 3]).unwrap();
        assert_eq!(t.get_with(&1, |v| v.iter().sum::<u64>()), Some(6));
        assert_eq!(t.get_with(&2, |v| v.len()), None);
    }

    #[test]
    fn min_max_on_various_sizes() {
        let t = tree(&[]);
        assert_eq!(t.min_key(), None);
        assert_eq!(t.max_key(), None);

        let t = tree(&[5]);
        assert_eq!(t.min_key(), Some(5));
        assert_eq!(t.max_key(), Some(5));

        let t = tree(&[9, 2, 7, 4, 11, 3]);
        assert_eq!(t.min_key(), Some(2));
        assert_eq!(t.max_key(), Some(11));

        t.remove_key(&11);
        t.remove_key(&2);
        assert_eq!(t.min_key(), Some(3));
        assert_eq!(t.max_key(), Some(9));
    }

    #[test]
    fn range_snapshot_bounds() {
        let t = tree(&[1, 3, 5, 7, 9]);
        let all = t.range_snapshot(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(
            all.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![1, 3, 5, 7, 9]
        );

        let inc = t.range_snapshot(Bound::Included(&3), Bound::Included(&7));
        assert_eq!(inc, vec![(3, 30), (5, 50), (7, 70)]);

        let exc = t.range_snapshot(Bound::Excluded(&3), Bound::Excluded(&7));
        assert_eq!(exc, vec![(5, 50)]);

        let empty = t.range_snapshot(Bound::Included(&4), Bound::Excluded(&5));
        assert!(empty.is_empty());
    }

    #[test]
    fn for_each_visits_in_order_and_respects_bounds() {
        let t = tree(&[8, 2, 6, 4, 10]);
        let mut keys = Vec::new();
        t.for_each_entry(|k, v| {
            assert_eq!(*v, k * 10);
            keys.push(*k);
        });
        assert_eq!(keys, vec![2, 4, 6, 8, 10]);

        let mut ranged = Vec::new();
        t.for_each_in_range(Bound::Included(&4), Bound::Excluded(&10), |k, _| {
            ranged.push(*k)
        });
        assert_eq!(ranged, vec![4, 6, 8]);
    }

    #[test]
    fn range_matches_btreemap_on_random_data() {
        use std::collections::BTreeMap;
        let mut reference = BTreeMap::new();
        let t: NbBst<u64, u64> = NbBst::new();
        let mut x = 42u64;
        for _ in 0..300 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 128;
            t.insert_entry(k, k).ok();
            reference.entry(k).or_insert(k);
        }
        // (BTreeMap::range panics on inverted bounds; our snapshot just
        // returns empty — checked separately below.)
        assert!(t
            .range_snapshot(Bound::Included(&100), Bound::Excluded(&10))
            .is_empty());
        for (lo, hi) in [(0u64, 128u64), (10, 20), (64, 64)] {
            let got: Vec<u64> = t
                .range_snapshot(Bound::Included(&lo), Bound::Excluded(&hi))
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            let want: Vec<u64> = reference.range(lo..hi).map(|(k, _)| *k).collect();
            assert_eq!(got, want, "range {lo}..{hi}");
        }
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut t: NbBst<u64, u64> = [(2u64, 20u64), (1, 10), (2, 99)].into_iter().collect();
        assert_eq!(t.len_slow(), 2);
        assert_eq!(t.get_cloned(&2), Some(20), "first write wins");
        t.extend([(3, 30), (1, 11)]);
        assert_eq!(t.len_slow(), 3);
        assert_eq!(t.get_cloned(&1), Some(10));
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_all_counts_new_keys() {
        let t: NbBst<u64, u64> = NbBst::new();
        assert_eq!(t.insert_all([(1, 1), (2, 2), (1, 9)]), 2);
    }

    #[test]
    fn range_is_safe_during_concurrent_updates() {
        let t = tree(&(0..256).collect::<Vec<_>>());
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 0..2_000u64 {
                    let k = (i * 37) % 256;
                    if i % 2 == 0 {
                        t.remove_key(&k);
                    } else {
                        t.insert_entry(k, k).ok();
                    }
                }
            });
            for _ in 0..50 {
                let r = t.range_snapshot(Bound::Included(&64), Bound::Excluded(&192));
                // Weakly consistent but always well-formed: sorted,
                // deduplicated, within bounds.
                assert!(r.windows(2).all(|w| w[0].0 < w[1].0));
                assert!(r.iter().all(|(k, _)| (64..192).contains(k)));
            }
            writer.join().unwrap();
        });
        t.check_invariants().unwrap();
    }

    #[test]
    fn sequential_insert_tree_snapshots_use_constant_stack() {
        // The honest (public-API) form of the degenerate regression: a
        // genuinely sequential-insert tree, sized so the quadratic build
        // stays cheap, traversed inside a 192 KiB stack that the old
        // recursive walks (hundreds of bytes × 10k frames) could not fit.
        const N: u64 = 10_000;
        std::thread::Builder::new()
            .stack_size(192 * 1024)
            .spawn(|| {
                let t: NbBst<u64, u64> = NbBst::new();
                for k in 0..N {
                    t.insert_entry(k, k).unwrap();
                }
                assert_eq!(t.height(), (N + 1) as usize, "path tree: depth n+1");
                t.check_invariants().unwrap();
                let all = t.range_snapshot(Bound::Unbounded, Bound::Unbounded);
                assert_eq!(all.len(), N as usize);
                assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
                assert_eq!(t.len_slow(), N as usize);
            })
            .expect("spawn small-stack thread")
            .join()
            .expect("snapshots on a sequential-insert tree must not overflow");
    }

    #[test]
    fn range_is_safe_on_degenerate_tree_during_concurrent_updates() {
        // Regression lock under *contention*: the tree starts as a
        // sequential-insert path (depth ≈ 4096), writers churn the deep
        // end while a small-stack reader keeps snapshotting. Before the
        // iterative rewrite the reader recursed once per level and
        // overflowed its 128 KiB stack deterministically.
        const N: u64 = 4_096;
        let t: NbBst<u64, u64> = NbBst::new();
        for k in 0..N {
            t.insert_entry(k, k).unwrap();
        }
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 0..1_000u64 {
                    // Churn near the deep (large-key) end of the path.
                    let k = N - 1 - (i % 64);
                    if i % 2 == 0 {
                        t.remove_key(&k);
                    } else {
                        t.insert_entry(k, k).ok();
                    }
                }
            });
            let reader = std::thread::Builder::new()
                .stack_size(128 * 1024)
                .spawn_scoped(s, || {
                    for _ in 0..30 {
                        let r = t.range_snapshot(Bound::Included(&0), Bound::Unbounded);
                        assert!(r.windows(2).all(|w| w[0].0 < w[1].0));
                        // Keys below the churn window are never touched.
                        assert!(r.len() >= (N - 64) as usize);
                        let _ = t.height();
                    }
                })
                .expect("spawn small-stack reader");
            reader
                .join()
                .expect("degenerate-tree snapshots must not overflow under contention");
            writer.join().unwrap();
        });
        t.check_invariants().unwrap();
    }
}
