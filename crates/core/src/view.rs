//! Whole-tree views: snapshots, invariant checking and rendering.
//!
//! Everything here traverses the tree under a single epoch pin. The
//! results are *weakly consistent*: exact when the tree is quiescent (no
//! update in flight), and a correct view of some mixture of states
//! otherwise. These operations exist for validation, experiments and
//! figures — they are not part of the paper's algorithm.

use crate::node::{Node, UpdateWordExt};
use crate::state::State;
use crate::tree::NbBst;
use nbbst_dictionary::SentinelKey;
use nbbst_reclaim::Guard;
use std::fmt;

impl<K, V> NbBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Counts the real keys by traversing the whole tree. Exact only at
    /// quiescence.
    pub fn len_slow(&self) -> usize {
        let guard = self.pin();
        let mut n = 0;
        self.walk_leaves(&guard, &mut |leaf| {
            if !leaf.key.is_sentinel() {
                n += 1;
            }
        });
        n
    }

    /// In-order snapshot of the real keys. Exact only at quiescence.
    pub fn keys_snapshot(&self) -> Vec<K> {
        let guard = self.pin();
        let mut keys = Vec::new();
        self.walk_leaves(&guard, &mut |leaf| {
            if let SentinelKey::Key(k) = &leaf.key {
                keys.push(k.clone());
            }
        });
        keys
    }

    /// In-order snapshot of `(key, value)` clones. Exact only at
    /// quiescence.
    pub fn pairs_snapshot(&self) -> Vec<(K, V)> {
        let guard = self.pin();
        let mut pairs = Vec::new();
        self.walk_leaves(&guard, &mut |leaf| {
            if let SentinelKey::Key(k) = &leaf.key {
                let v = leaf.value.as_ref().expect("real leaves carry values");
                pairs.push((k.clone(), v.clone()));
            }
        });
        pairs
    }

    /// Height in edges of the longest root-to-leaf path (the initial
    /// sentinel tree has height 1). Exact only at quiescence.
    pub fn height(&self) -> usize {
        fn h<K, V>(node: &Node<K, V>, guard: &Guard) -> usize {
            if node.is_leaf {
                return 0;
            }
            let l = node.load_child(true, guard);
            let r = node.load_child(false, guard);
            // SAFETY: children of a reachable internal node, under pin.
            let (l, r) = unsafe { (l.deref(), r.deref()) };
            1 + h(l, guard).max(h(r, guard))
        }
        let guard = self.pin();
        h(self.root(), &guard)
    }

    /// In-order traversal applying `f` to every leaf. Weakly consistent.
    fn walk_leaves(&self, guard: &Guard, f: &mut impl FnMut(&Node<K, V>)) {
        fn go<K, V>(node: &Node<K, V>, guard: &Guard, f: &mut impl FnMut(&Node<K, V>)) {
            if node.is_leaf {
                f(node);
                return;
            }
            // SAFETY: reachable children under pin.
            let l = unsafe { node.load_child(true, guard).deref() };
            let r = unsafe { node.load_child(false, guard).deref() };
            go(l, guard, f);
            go(r, guard, f);
        }
        go(self.root(), guard, f);
    }

    /// Checks the structural invariants the paper's proof establishes, at
    /// quiescence:
    ///
    /// 1. the sentinel shape of Figure 6 (root keyed `∞2`, its right child
    ///    the `∞2` leaf; the `∞1` leaf present);
    /// 2. every internal node has two non-null children;
    /// 3. the BST property: left descendants `<` node key `<=` right
    ///    descendants;
    /// 4. leaf keys are distinct and in order;
    /// 5. every internal node's state is `Clean` (pass
    ///    `allow_flags = true` to skip this when deliberately-stalled
    ///    operations are present).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_invariants_allowing(false)
    }

    /// [`NbBst::check_invariants`] with flagged/marked nodes tolerated.
    pub fn check_invariants_allowing(&self, allow_flags: bool) -> Result<(), String> {
        let guard = self.pin();
        let root = self.root();
        if root.key != SentinelKey::Inf2 {
            return Err("root key is not ∞2".into());
        }
        // SAFETY: reachable under pin.
        let right = unsafe { root.load_child(false, &guard).deref() };
        if !(right.is_leaf && right.key == SentinelKey::Inf2) {
            return Err("root's right child is not the ∞2 leaf".into());
        }

        struct Ctx<'a> {
            allow_flags: bool,
            sentinel_leaves: usize,
            real_leaves: usize,
            guard: &'a Guard,
        }
        fn go<K: Ord + Clone, V>(
            node: &Node<K, V>,
            lo: Option<&SentinelKey<K>>,
            hi: Option<&SentinelKey<K>>,
            prev: &mut Option<SentinelKey<K>>,
            ctx: &mut Ctx<'_>,
        ) -> Result<(), String> {
            if let Some(lo) = lo {
                if node.key < *lo {
                    return Err("BST property violated: key below lower bound".into());
                }
            }
            if let Some(hi) = hi {
                if node.key >= *hi {
                    return Err("BST property violated: key not below upper bound".into());
                }
            }
            if node.is_leaf {
                if node.key.is_sentinel() {
                    ctx.sentinel_leaves += 1;
                } else {
                    ctx.real_leaves += 1;
                }
                if let Some(p) = prev {
                    if *p >= node.key {
                        return Err("leaf keys not strictly increasing".into());
                    }
                }
                *prev = Some(node.key.clone());
                return Ok(());
            }
            if !ctx.allow_flags {
                let state = node.load_update(ctx.guard).state();
                if state != State::Clean {
                    return Err(format!("internal node not Clean at quiescence: {state}"));
                }
            }
            let l = node.load_child(true, ctx.guard);
            let r = node.load_child(false, ctx.guard);
            if l.is_null() || r.is_null() {
                return Err("internal node with a null child".into());
            }
            // SAFETY: reachable under pin.
            let (l, r) = unsafe { (l.deref(), r.deref()) };
            go(l, lo, Some(&node.key), prev, ctx)?;
            go(r, Some(&node.key), hi, prev, ctx)
        }

        let mut ctx = Ctx {
            allow_flags,
            sentinel_leaves: 0,
            real_leaves: 0,
            guard: &guard,
        };
        let mut prev = None;
        go(root, None, None, &mut prev, &mut ctx)?;
        if ctx.sentinel_leaves != 2 {
            return Err(format!(
                "expected exactly 2 sentinel leaves, found {}",
                ctx.sentinel_leaves
            ));
        }
        Ok(())
    }

    /// Renders the tree as indented ASCII in the style of the paper's
    /// figures: internal nodes `(key state)`, leaves `[key]`.
    ///
    /// Used by the figure-regeneration binaries (F1/F2/F5/F6).
    pub fn render(&self) -> String
    where
        K: fmt::Display,
    {
        fn go<K: fmt::Display, V>(
            node: &Node<K, V>,
            prefix: &str,
            last: bool,
            guard: &Guard,
            out: &mut String,
        ) {
            let branch = if prefix.is_empty() {
                ""
            } else if last {
                "└── "
            } else {
                "├── "
            };
            if node.is_leaf {
                out.push_str(&format!("{prefix}{branch}[{}]\n", node.key));
                return;
            }
            let state = node.load_update(guard).state();
            if state == State::Clean {
                out.push_str(&format!("{prefix}{branch}({})\n", node.key));
            } else {
                out.push_str(&format!("{prefix}{branch}({} {state})\n", node.key));
            }
            let child_prefix = if prefix.is_empty() {
                String::new()
            } else {
                format!("{prefix}{}", if last { "    " } else { "│   " })
            };
            // SAFETY: reachable under pin.
            let l = unsafe { node.load_child(true, guard).deref() };
            let r = unsafe { node.load_child(false, guard).deref() };
            go(l, &child_prefix, false, guard, out);
            go(r, &child_prefix, true, guard, out);
        }
        let guard = self.pin();
        let mut out = String::new();
        go(self.root(), "", true, &guard, &mut out);
        out
    }

    /// The update-word state of the internal node with routing key `key`
    /// (first match on the search path), for schedule tests and figures.
    pub fn state_of_internal(&self, key: &K) -> Option<State> {
        let guard = self.pin();
        let mut cur = self.root();
        loop {
            if cur.is_leaf {
                return None;
            }
            if cur.key.as_key() == Some(key) {
                return Some(cur.load_update(&guard).state());
            }
            let go_left = nbbst_dictionary::real_vs_node(key, &cur.key) == std::cmp::Ordering::Less;
            // SAFETY: reachable child under pin.
            cur = unsafe { cur.load_child(go_left, &guard).deref() };
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{NbBst, State};

    fn tree(keys: &[u64]) -> NbBst<u64, u64> {
        let t = NbBst::new();
        for &k in keys {
            t.insert_entry(k, k * 2).unwrap();
        }
        t
    }

    #[test]
    fn len_and_snapshots_agree() {
        let t = tree(&[4, 2, 6, 1, 3]);
        assert_eq!(t.len_slow(), 5);
        assert_eq!(t.keys_snapshot(), vec![1, 2, 3, 4, 6]);
        assert_eq!(
            t.pairs_snapshot(),
            vec![(1, 2), (2, 4), (3, 6), (4, 8), (6, 12)]
        );
    }

    #[test]
    fn height_counts_edges() {
        let t: NbBst<u64, u64> = NbBst::new();
        assert_eq!(t.height(), 1, "figure 6(a) tree");
        t.insert_entry(1, 1).unwrap();
        assert_eq!(t.height(), 2, "one key adds one level under ∞1");
    }

    #[test]
    fn render_marks_states_and_shapes() {
        let t = tree(&[10, 20]);
        let r = t.render();
        assert!(r.contains("(∞2)"), "{r}");
        assert!(r.contains("[10]"), "{r}");
        assert!(r.contains("[∞1]"), "{r}");
        assert!(
            !r.contains("IFlag"),
            "quiet tree has no state annotations: {r}"
        );
    }

    #[test]
    fn state_of_internal_reports_clean_at_quiescence() {
        let t = tree(&[10, 20, 30]);
        // Internal routing nodes are keyed 20 and 30 after these inserts.
        assert_eq!(t.state_of_internal(&20), Some(State::Clean));
        assert_eq!(t.state_of_internal(&999), None, "no such internal");
    }

    #[test]
    fn invariant_checker_flags_inflight_states_only_when_asked() {
        use crate::raw::RawInsert;
        let t = tree(&[10]);
        let mut ins = RawInsert::new(&t, 20, 20);
        assert!(ins.search().is_ready());
        assert!(ins.flag());
        // Strict check rejects the IFlag; tolerant check accepts.
        assert!(t.check_invariants().is_err());
        t.check_invariants_allowing(true).unwrap();
        ins.complete();
        t.check_invariants().unwrap();
    }
}
