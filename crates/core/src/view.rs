//! Whole-tree views: snapshots, invariant checking and rendering.
//!
//! Everything here traverses the tree under a single epoch pin. The
//! results are *weakly consistent*: exact when the tree is quiescent (no
//! update in flight), and a correct view of some mixture of states
//! otherwise. These operations exist for validation, experiments and
//! figures — they are not part of the paper's algorithm.
//!
//! ## Every traversal is iterative (O(1) call stack)
//!
//! The paper's tree is never rebalanced, so adversarial insertion orders
//! (most commonly: sequential keys) produce root-to-leaf paths of depth
//! *n*. A recursive walk therefore overflows the thread stack within a
//! few tens of thousands of ordered inserts — long before memory or time
//! become a problem. Every whole-tree read in this module and in
//! [`crate::extensions`] drives an explicit heap-allocated stack (the
//! shared machinery is [`InorderCursor`]), so traversal depth costs heap
//! bytes, never call-stack frames. Locked by the `degenerate_*`
//! regression tests below, which walk a 100 000-deep path inside a
//! deliberately tiny (128 KiB) thread stack.

use crate::node::{Node, UpdateWordExt};
use crate::state::State;
use crate::tree::NbBst;
use nbbst_dictionary::SentinelKey;
use nbbst_reclaim::Guard;
use std::fmt;
use std::ops::Bound;

/// A pinned in-order cursor over the leaves of a subtree, with optional
/// key-range pruning — the reusable explicit-stack walk behind every
/// snapshot-style view.
///
/// Children are pushed right-then-left, so leaves pop in left-to-right
/// (ascending-key) order. The descent prunes whole subtrees that the
/// BST property places outside `[lo, hi]`; leaves from partially
/// overlapping subtrees are still yielded, so callers applying bounds
/// must filter leaf keys themselves (see `range_snapshot`).
///
/// All state lives in a heap `Vec`: advancing the cursor never recurses,
/// so arbitrarily deep (unbalanced) trees cost O(depth) heap and O(1)
/// call stack.
pub(crate) struct InorderCursor<'g, 'b, K, V> {
    stack: Vec<&'g Node<K, V>>,
    guard: &'g Guard,
    lo: Bound<&'b K>,
    hi: Bound<&'b K>,
}

impl<'g, 'b, K: Ord, V> InorderCursor<'g, 'b, K, V> {
    /// A cursor over every leaf of the subtree under `root`.
    pub(crate) fn new(root: &'g Node<K, V>, guard: &'g Guard) -> Self {
        Self::with_bounds(root, guard, Bound::Unbounded, Bound::Unbounded)
    }

    /// A cursor that skips subtrees provably outside `[lo, hi]`.
    pub(crate) fn with_bounds(
        root: &'g Node<K, V>,
        guard: &'g Guard,
        lo: Bound<&'b K>,
        hi: Bound<&'b K>,
    ) -> Self {
        InorderCursor {
            stack: vec![root],
            guard,
            lo,
            hi,
        }
    }

    /// The next leaf in ascending key order, or `None` when exhausted.
    pub(crate) fn next_leaf(&mut self) -> Option<&'g Node<K, V>> {
        while let Some(node) = self.stack.pop() {
            if node.is_leaf {
                return Some(node);
            }
            // BST property: left subtree < node.key <= right subtree.
            // Prune: skip left if everything there is below `lo`; skip
            // right if node.key is already above `hi`. Sentinel routing
            // keys cannot prune (their left subtree holds all real keys).
            let visit_left = match (&node.key, self.lo) {
                (SentinelKey::Key(nk), Bound::Included(b)) => nk > b,
                (SentinelKey::Key(nk), Bound::Excluded(b)) => nk > b,
                _ => true,
            };
            let visit_right = match (&node.key, self.hi) {
                (SentinelKey::Key(nk), Bound::Included(b)) => nk <= b,
                // Keys >= nk may still be < b.
                (SentinelKey::Key(nk), Bound::Excluded(b)) => nk <= b,
                _ => true,
            };
            // Right first so the left child pops (and yields) first.
            if visit_right {
                // SAFETY: reachable child of a reachable internal node,
                // under pin.
                let r = unsafe { node.load_child(false, self.guard).deref() };
                self.stack.push(r);
            }
            if visit_left {
                // SAFETY: reachable child under pin, as above.
                let l = unsafe { node.load_child(true, self.guard).deref() };
                self.stack.push(l);
            }
        }
        None
    }
}

impl<K, V> NbBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Counts the real keys by traversing the whole tree. Exact only at
    /// quiescence.
    pub fn len_slow(&self) -> usize {
        let guard = self.pin();
        let mut n = 0;
        self.walk_leaves(&guard, &mut |leaf| {
            if !leaf.key.is_sentinel() {
                n += 1;
            }
        });
        n
    }

    /// In-order snapshot of the real keys. Exact only at quiescence.
    pub fn keys_snapshot(&self) -> Vec<K> {
        let guard = self.pin();
        let mut keys = Vec::new();
        self.walk_leaves(&guard, &mut |leaf| {
            if let SentinelKey::Key(k) = &leaf.key {
                keys.push(k.clone());
            }
        });
        keys
    }

    /// In-order snapshot of `(key, value)` clones. Exact only at
    /// quiescence.
    pub fn pairs_snapshot(&self) -> Vec<(K, V)> {
        let guard = self.pin();
        let mut pairs = Vec::new();
        self.walk_leaves(&guard, &mut |leaf| {
            if let SentinelKey::Key(k) = &leaf.key {
                let v = leaf.value.as_ref().expect("real leaves carry values");
                pairs.push((k.clone(), v.clone()));
            }
        });
        pairs
    }

    /// Height in edges of the longest root-to-leaf path (the initial
    /// sentinel tree has height 1). Exact only at quiescence.
    pub fn height(&self) -> usize {
        let guard = self.pin();
        let mut max = 0usize;
        let mut stack: Vec<(&Node<K, V>, usize)> = vec![(self.root(), 0)];
        while let Some((node, depth)) = stack.pop() {
            if node.is_leaf {
                max = max.max(depth);
                continue;
            }
            // SAFETY: children of a reachable internal node, under pin.
            let (l, r) = unsafe {
                (
                    node.load_child(true, &guard).deref(),
                    node.load_child(false, &guard).deref(),
                )
            };
            stack.push((l, depth + 1));
            stack.push((r, depth + 1));
        }
        max
    }

    /// In-order traversal applying `f` to every leaf. Weakly consistent.
    pub(crate) fn walk_leaves(&self, guard: &Guard, f: &mut impl FnMut(&Node<K, V>)) {
        let mut cursor = InorderCursor::new(self.root(), guard);
        while let Some(leaf) = cursor.next_leaf() {
            f(leaf);
        }
    }

    /// Checks the structural invariants the paper's proof establishes, at
    /// quiescence:
    ///
    /// 1. the sentinel shape of Figure 6 (root keyed `∞2`, its right child
    ///    the `∞2` leaf; the `∞1` leaf present);
    /// 2. every internal node has two non-null children;
    /// 3. the BST property: left descendants `<` node key `<=` right
    ///    descendants;
    /// 4. leaf keys are distinct and in order;
    /// 5. every internal node's state is `Clean` (pass
    ///    `allow_flags = true` to skip this when deliberately-stalled
    ///    operations are present).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_invariants_allowing(false)
    }

    /// [`NbBst::check_invariants`] with flagged/marked nodes tolerated.
    pub fn check_invariants_allowing(&self, allow_flags: bool) -> Result<(), String> {
        let guard = self.pin();
        let root = self.root();
        if root.key != SentinelKey::Inf2 {
            return Err("root key is not ∞2".into());
        }
        // SAFETY: reachable under pin.
        let right = unsafe { root.load_child(false, &guard).deref() };
        if !(right.is_leaf && right.key == SentinelKey::Inf2) {
            return Err("root's right child is not the ∞2 leaf".into());
        }

        // Explicit-stack in-order walk carrying each node's ancestor key
        // interval; frames are (node, lower bound, upper bound). Bounds
        // borrow the keys of live ancestor nodes, which the pin keeps
        // valid for the whole walk.
        let mut sentinel_leaves = 0usize;
        let mut real_leaves = 0usize;
        let mut prev: Option<&SentinelKey<K>> = None;
        type Frame<'g, K, V> = (
            &'g Node<K, V>,
            Option<&'g SentinelKey<K>>,
            Option<&'g SentinelKey<K>>,
        );
        let mut stack: Vec<Frame<'_, K, V>> = vec![(root, None, None)];
        while let Some((node, lo, hi)) = stack.pop() {
            if let Some(lo) = lo {
                if node.key < *lo {
                    return Err("BST property violated: key below lower bound".into());
                }
            }
            if let Some(hi) = hi {
                if node.key >= *hi {
                    return Err("BST property violated: key not below upper bound".into());
                }
            }
            if node.is_leaf {
                if node.key.is_sentinel() {
                    sentinel_leaves += 1;
                } else {
                    real_leaves += 1;
                }
                if let Some(p) = prev {
                    if *p >= node.key {
                        return Err("leaf keys not strictly increasing".into());
                    }
                }
                prev = Some(&node.key);
                continue;
            }
            if !allow_flags {
                let state = node.load_update(&guard).state();
                if state != State::Clean {
                    return Err(format!("internal node not Clean at quiescence: {state}"));
                }
            }
            let l = node.load_child(true, &guard);
            let r = node.load_child(false, &guard);
            if l.is_null() || r.is_null() {
                return Err("internal node with a null child".into());
            }
            // SAFETY: reachable under pin.
            let (l, r) = unsafe { (l.deref(), r.deref()) };
            // Right first so the left subtree is fully visited first
            // (in-order, for the `prev` strictly-increasing check).
            stack.push((r, Some(&node.key), hi));
            stack.push((l, lo, Some(&node.key)));
        }
        let _ = real_leaves;
        if sentinel_leaves != 2 {
            return Err(format!(
                "expected exactly 2 sentinel leaves, found {sentinel_leaves}"
            ));
        }
        Ok(())
    }

    /// Renders the tree as indented ASCII in the style of the paper's
    /// figures: internal nodes `(key state)`, leaves `[key]`.
    ///
    /// Used by the figure-regeneration binaries (F1/F2/F5/F6). The output
    /// itself is O(depth) characters *per line*, so rendering a degenerate
    /// tree is inherently quadratic in the output — but the walk is
    /// iterative, so the only cost is the string, never the call stack.
    pub fn render(&self) -> String
    where
        K: fmt::Display,
    {
        let guard = self.pin();
        let mut out = String::new();
        // Frames: (node, prefix, is-last-child). Right is pushed first so
        // the left sibling prints first, exactly like the old recursion.
        let mut stack: Vec<(&Node<K, V>, String, bool)> = vec![(self.root(), String::new(), true)];
        while let Some((node, prefix, last)) = stack.pop() {
            let branch = if prefix.is_empty() {
                ""
            } else if last {
                "└── "
            } else {
                "├── "
            };
            if node.is_leaf {
                out.push_str(&format!("{prefix}{branch}[{}]\n", node.key));
                continue;
            }
            let state = node.load_update(&guard).state();
            if state == State::Clean {
                out.push_str(&format!("{prefix}{branch}({})\n", node.key));
            } else {
                out.push_str(&format!("{prefix}{branch}({} {state})\n", node.key));
            }
            let child_prefix = if prefix.is_empty() {
                String::new()
            } else {
                format!("{prefix}{}", if last { "    " } else { "│   " })
            };
            // SAFETY: reachable children under pin.
            let (l, r) = unsafe {
                (
                    node.load_child(true, &guard).deref(),
                    node.load_child(false, &guard).deref(),
                )
            };
            stack.push((r, child_prefix.clone(), true));
            stack.push((l, child_prefix, false));
        }
        out
    }

    /// The update-word state of the internal node with routing key `key`
    /// (first match on the search path), for schedule tests and figures.
    pub fn state_of_internal(&self, key: &K) -> Option<State> {
        let guard = self.pin();
        let mut cur = self.root();
        loop {
            if cur.is_leaf {
                return None;
            }
            if cur.key.as_key() == Some(key) {
                return Some(cur.load_update(&guard).state());
            }
            let go_left = nbbst_dictionary::real_vs_node(key, &cur.key) == std::cmp::Ordering::Less;
            // SAFETY: reachable child under pin.
            cur = unsafe { cur.load_child(go_left, &guard).deref() };
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{NbBst, State};
    use std::ops::Bound;

    fn tree(keys: &[u64]) -> NbBst<u64, u64> {
        let t = NbBst::new();
        for &k in keys {
            t.insert_entry(k, k * 2).unwrap();
        }
        t
    }

    /// Runs `f` on a thread whose stack is far too small for an O(depth)
    /// recursion over `depth`-deep trees — the regression harness proving
    /// the traversals use O(1) call stack.
    fn on_tiny_stack<F: FnOnce() + Send + 'static>(f: F) {
        std::thread::Builder::new()
            .name("tiny-stack".into())
            .stack_size(128 * 1024)
            .spawn(f)
            .expect("spawn tiny-stack thread")
            .join()
            .expect("tiny-stack traversals completed");
    }

    #[test]
    fn len_and_snapshots_agree() {
        let t = tree(&[4, 2, 6, 1, 3]);
        assert_eq!(t.len_slow(), 5);
        assert_eq!(t.keys_snapshot(), vec![1, 2, 3, 4, 6]);
        assert_eq!(
            t.pairs_snapshot(),
            vec![(1, 2), (2, 4), (3, 6), (4, 8), (6, 12)]
        );
    }

    #[test]
    fn height_counts_edges() {
        let t: NbBst<u64, u64> = NbBst::new();
        assert_eq!(t.height(), 1, "figure 6(a) tree");
        t.insert_entry(1, 1).unwrap();
        assert_eq!(t.height(), 2, "one key adds one level under ∞1");
    }

    #[test]
    fn render_marks_states_and_shapes() {
        let t = tree(&[10, 20]);
        let r = t.render();
        assert!(r.contains("(∞2)"), "{r}");
        assert!(r.contains("[10]"), "{r}");
        assert!(r.contains("[∞1]"), "{r}");
        assert!(
            !r.contains("IFlag"),
            "quiet tree has no state annotations: {r}"
        );
    }

    #[test]
    fn state_of_internal_reports_clean_at_quiescence() {
        let t = tree(&[10, 20, 30]);
        // Internal routing nodes are keyed 20 and 30 after these inserts.
        assert_eq!(t.state_of_internal(&20), Some(State::Clean));
        assert_eq!(t.state_of_internal(&999), None, "no such internal");
    }

    #[test]
    fn invariant_checker_flags_inflight_states_only_when_asked() {
        use crate::raw::RawInsert;
        let t = tree(&[10]);
        let mut ins = RawInsert::new(&t, 20, 20);
        assert!(ins.search().is_ready());
        assert!(ins.flag());
        // Strict check rejects the IFlag; tolerant check accepts.
        assert!(t.check_invariants().is_err());
        t.check_invariants_allowing(true).unwrap();
        ins.complete();
        t.check_invariants().unwrap();
    }

    #[test]
    fn degenerate_constructor_matches_real_inserts() {
        // The O(n) direct constructor must produce bit-for-bit the shape
        // (and contents) that ascending `insert_entry` calls produce —
        // compared structurally via `render` at a size where the real
        // build is cheap.
        for n in [1u64, 2, 3, 7, 64] {
            let direct = NbBst::degenerate_ascending(n);
            let real: NbBst<u64, u64> = NbBst::new();
            for k in 0..n {
                real.insert_entry(k, k).unwrap();
            }
            assert_eq!(direct.render(), real.render(), "n={n}");
            direct.check_invariants().unwrap();
            assert_eq!(direct.height(), real.height(), "n={n}");
        }
    }

    #[test]
    fn degenerate_100k_tree_traversals_use_constant_stack() {
        // The headline regression: a 100_000-key degenerate path tree
        // (exactly the shape sequential inserts produce; built in O(n)
        // because the public-API build is quadratic in n) must complete
        // every snapshot/validation traversal inside a 128 KiB thread
        // stack. The recursive walks this replaces needed hundreds of
        // bytes per level — tens of megabytes at this depth.
        const N: u64 = 100_000;
        on_tiny_stack(|| {
            let t = NbBst::degenerate_ascending(N);
            assert_eq!(t.height(), (N + 1) as usize);
            t.check_invariants().unwrap();
            let all = t.range_snapshot(Bound::Unbounded, Bound::Unbounded);
            assert_eq!(all.len(), N as usize);
            assert_eq!(all.first(), Some(&(0, 0)));
            assert_eq!(all.last(), Some(&(N - 1, N - 1)));
            assert_eq!(t.len_slow(), N as usize);
            assert_eq!(t.keys_snapshot().len(), N as usize);
            let mid = t.range_snapshot(Bound::Included(&50_000), Bound::Excluded(&50_010));
            assert_eq!(mid.len(), 10);
            let mut seen = 0usize;
            t.for_each_entry(|k, v| {
                assert_eq!(k, v);
                seen += 1;
            });
            assert_eq!(seen, N as usize);
            assert_eq!(t.min_key(), Some(0));
            assert_eq!(t.max_key(), Some(N - 1));
            // Teardown of the 100k-deep tree is iterative too.
            drop(t);
        });
    }

    #[test]
    fn degenerate_render_uses_constant_stack() {
        // `render` output is inherently O(depth) per line, so it gets its
        // own smaller depth — the point here is only that the *walk* is
        // iterative.
        on_tiny_stack(|| {
            let t = NbBst::degenerate_ascending(2_000);
            let r = t.render();
            assert!(r.contains("[0]"));
            assert!(r.contains("[1999]"));
            // n real leaves + 2 sentinel leaves + (n + 1) internal nodes.
            assert_eq!(r.lines().count(), 2 * 2_000 + 3);
        });
    }
}
