//! Regression tests: rejected or beaten inserts must not leak their
//! speculative allocations.
//!
//! An `Insert` allocates up to three nodes before it owns anything in the
//! tree: the new leaf, the sibling copy of the leaf it lands on, and the
//! internal node joining them. Two paths hand those back:
//!
//! * the **duplicate-key** path (`insert_entry` returning `Err((k, v))`),
//!   which must return the value and free any speculative nodes, and
//! * the **failed iflag CAS** (another operation flagged the parent
//!   first), which must free the sibling copy and internal node before
//!   retrying.
//!
//! Leaks are detected with a clones-minus-drops balance on the values and
//! cross-checked against the `with_stats` CAS counters proving the
//! intended path actually ran.

use nbbst_core::raw::RawInsert;
use nbbst_core::NbBst;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Arc;

/// Counts clones minus drops in a shared balance.
#[derive(Debug)]
struct Token {
    live: Arc<AtomicIsize>,
}

impl Token {
    fn new(live: &Arc<AtomicIsize>) -> Token {
        live.fetch_add(1, Ordering::Relaxed);
        Token {
            live: Arc::clone(live),
        }
    }
}

impl Clone for Token {
    fn clone(&self) -> Token {
        self.live.fetch_add(1, Ordering::Relaxed);
        Token {
            live: Arc::clone(&self.live),
        }
    }
}

impl Drop for Token {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// `insert_entry` on a present key returns `Err((k, v))` with the value
/// intact, and neither the rejected attempt nor teardown leaks anything.
#[test]
fn duplicate_insert_returns_value_without_leaking() {
    let live = Arc::new(AtomicIsize::new(0));
    {
        let tree = NbBst::<u64, Token>::with_stats();
        tree.insert_entry(7, Token::new(&live)).unwrap();

        let (key, value) = tree
            .insert_entry(7, Token::new(&live))
            .expect_err("7 is already present");
        assert_eq!(key, 7);
        drop(value); // the rejected value came back to us

        let stats = tree.stats().expect("stats enabled");
        assert_eq!(stats.inserts, 2, "both insert calls completed");
        assert_eq!(stats.inserts_true, 1, "only the first succeeded");
        assert_eq!(
            stats.iflag_attempts, 1,
            "the duplicate was rejected before any flag CAS"
        );
    }
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "value leak or double-free on the duplicate-insert path"
    );
}

/// Drive an iflag CAS to *failure* deterministically: a first stepped
/// insert searches, then a second full insert changes the parent's update
/// word (its unflag leaves different pointer bits under the Clean tag), so
/// the first insert's flag CAS must fail and free its speculative sibling
/// copy and internal node.
#[test]
fn failed_iflag_frees_speculative_nodes() {
    let live = Arc::new(AtomicIsize::new(0));
    {
        let tree = NbBst::<u64, Token>::with_stats();
        tree.insert_entry(10, Token::new(&live)).unwrap();

        // The stepped insert lands on leaf 10's parent and records its
        // update word...
        let mut stalled = RawInsert::new(&tree, 11, Token::new(&live));
        assert!(stalled.search().is_ready());

        // ...then a full insert of an adjacent key runs an entire
        // iflag/ichild/iunflag circuit through that same parent, changing
        // the word the stepped insert expects.
        tree.insert_entry(12, Token::new(&live)).unwrap();

        let before = tree.stats().expect("stats enabled");
        assert!(!stalled.flag(), "stale expected word: iflag must fail");
        let after = tree.stats().expect("stats enabled");
        assert_eq!(
            after.iflag_attempts,
            before.iflag_attempts + 1,
            "the failing CAS was attempted"
        );
        assert_eq!(
            after.iflag_success, before.iflag_success,
            "the failing CAS did not succeed"
        );

        // Abandon the beaten insert: its value (still in the unpublished
        // new leaf) must be freed by the driver, not leaked.
        stalled.abandon();
        assert!(!tree.contains_key(&11), "11 was never inserted");
    }
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "value leak or double-free on the failed-iflag path"
    );
}

/// The public retry loop hits the same failed-iflag path under contention
/// from a helper completing a stalled insert; the retry must succeed and
/// nothing may leak. (The stepped insert plants the stale flag; the public
/// insert first helps it, which fails its own first iflag attempt.)
#[test]
fn public_insert_retries_after_flag_contention_without_leaking() {
    let live = Arc::new(AtomicIsize::new(0));
    {
        let tree = NbBst::<u64, Token>::with_stats();
        tree.insert_entry(20, Token::new(&live)).unwrap();

        // Flag-and-crash an insert of 21: the parent stays IFlag'd.
        let mut stalled = RawInsert::new(&tree, 21, Token::new(&live));
        assert!(stalled.search().is_ready());
        assert!(stalled.flag(), "quiet tree: iflag must win");
        stalled.abandon();

        // A public insert into the same corner must help the crashed
        // insert to completion, then retry and succeed itself.
        tree.insert_entry(22, Token::new(&live)).unwrap();

        assert!(tree.contains_key(&21), "helped insert completed");
        assert!(tree.contains_key(&22), "retrying insert completed");
        let stats = tree.stats().expect("stats enabled");
        assert!(
            stats.insert_retries > 0,
            "the public insert should have retried at least once"
        );
        stats
            .check_figure4_allowing_abandoned()
            .expect("Figure 4 identities with an abandoned circuit");
    }
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "value leak or double-free on the contended-insert retry path"
    );
}
