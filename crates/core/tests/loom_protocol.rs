//! Exhaustive model-checking of the EFRB flag/mark protocol.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p nbbst-core --test loom_protocol --release
//! ```
//!
//! Under `--cfg loom`, every atomic in `nbbst-reclaim` (and therefore every
//! update-word / child-pointer CAS in this crate, plus the epoch machinery
//! underneath) becomes a scheduling point, and `loom::model` enumerates
//! thread interleavings depth-first with CHESS-style preemption bounding.
//! Each scenario asserts, **in every explored execution**:
//!
//! * the dictionary semantics of the final state,
//! * the paper's Figure 4 CAS-counter identities (each iflag has exactly
//!   one ichild and one iunflag; each dflag exactly one mark + dchild +
//!   dunflag or one backtrack), and
//! * a value-drop balance after the tree and its collector are torn down
//!   (no leak, no double-free).
//!
//! The scenarios deliberately build *tiny* trees (one to three keys) so the
//! schedule space stays exhaustively explorable: each CAS contention
//! window of the protocol appears within the first few levels of the tree.

#![cfg(loom)]

use nbbst_core::NbBst;
use std::sync::atomic::{AtomicIsize, AtomicU64, Ordering};
use std::sync::Arc;

/// A value that tracks clones minus drops in a shared counter: if the tree
/// leaks a leaf, the balance stays positive; if it double-frees one, the
/// balance goes negative (or the run crashes outright under the checker).
#[derive(Debug)]
struct Token {
    live: Arc<AtomicIsize>,
}

impl Token {
    fn new(live: &Arc<AtomicIsize>) -> Token {
        live.fetch_add(1, Ordering::Relaxed);
        Token {
            live: Arc::clone(live),
        }
    }
}

impl Clone for Token {
    fn clone(&self) -> Token {
        self.live.fetch_add(1, Ordering::Relaxed);
        Token {
            live: Arc::clone(&self.live),
        }
    }
}

impl Drop for Token {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Scenario 1 — **insert/insert on one leaf** (the iflag contention
/// window). On the two-sentinel initial tree both inserts race to flag
/// the same parent: one wins the iflag CAS, the loser helps and retries.
#[test]
fn insert_insert_same_leaf() {
    loom::model(|| {
        let live = Arc::new(AtomicIsize::new(0));
        {
            let tree = Arc::new(NbBst::<u64, Token>::with_stats());
            let handles: Vec<_> = [1u64, 2]
                .into_iter()
                .map(|k| {
                    let tree = Arc::clone(&tree);
                    let live = Arc::clone(&live);
                    loom::thread::spawn(move || {
                        tree.insert_entry(k, Token::new(&live))
                            .unwrap_or_else(|_| panic!("insert {k} on fresh key failed"));
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert!(tree.contains_key(&1) && tree.contains_key(&2));
            tree.stats()
                .expect("stats enabled")
                .check_figure4()
                .expect("Figure 4 identities");
        }
        assert_eq!(
            live.load(Ordering::Relaxed),
            0,
            "value leak or double-free after teardown"
        );
    });
}

/// Scenario 2 — **delete/insert on adjacent nodes**: the deletion of key 1
/// (grandparent dflag + parent mark) races an insert of key 3 arriving in
/// the same corner of the tree, covering the dflag-vs-iflag and
/// mark-vs-ichild contention windows.
#[test]
fn delete_insert_adjacent() {
    loom::model(|| {
        let live = Arc::new(AtomicIsize::new(0));
        {
            let tree = Arc::new(NbBst::<u64, Token>::with_stats());
            tree.insert_entry(1, Token::new(&live)).unwrap();
            tree.insert_entry(2, Token::new(&live)).unwrap();

            let deleter = {
                let tree = Arc::clone(&tree);
                loom::thread::spawn(move || {
                    assert!(tree.remove_key(&1), "1 was inserted before the race");
                })
            };
            let inserter = {
                let tree = Arc::clone(&tree);
                let live = Arc::clone(&live);
                loom::thread::spawn(move || {
                    tree.insert_entry(3, Token::new(&live))
                        .unwrap_or_else(|_| panic!("insert 3 on fresh key failed"));
                })
            };
            deleter.join().unwrap();
            inserter.join().unwrap();

            assert!(!tree.contains_key(&1), "deleted key resurfaced");
            assert!(tree.contains_key(&2) && tree.contains_key(&3));
            tree.stats()
                .expect("stats enabled")
                .check_figure4()
                .expect("Figure 4 identities");
        }
        assert_eq!(
            live.load(Ordering::Relaxed),
            0,
            "value leak or double-free after teardown"
        );
    });
}

/// Scenario 3 — **mark fails → backtrack**: delete(1) must dflag the
/// grandparent and then mark the parent, while insert(2) races to iflag
/// that same parent. When the insert's flag lands between the deleter's
/// search and its mark CAS, the mark fails and the deleter must backtrack
/// (remove its own dflag) and retry — the paper's line 98 edge. The
/// aggregate assertion proves the exploration actually reached it.
#[test]
fn mark_fails_then_backtracks() {
    let backtracks = Arc::new(AtomicU64::new(0));
    let agg = Arc::clone(&backtracks);
    loom::model(move || {
        let live = Arc::new(AtomicIsize::new(0));
        {
            let tree = Arc::new(NbBst::<u64, Token>::with_stats());
            tree.insert_entry(1, Token::new(&live)).unwrap();

            let deleter = {
                let tree = Arc::clone(&tree);
                loom::thread::spawn(move || {
                    assert!(tree.remove_key(&1), "1 was inserted before the race");
                })
            };
            let inserter = {
                let tree = Arc::clone(&tree);
                let live = Arc::clone(&live);
                loom::thread::spawn(move || {
                    tree.insert_entry(2, Token::new(&live))
                        .unwrap_or_else(|_| panic!("insert 2 on fresh key failed"));
                })
            };
            deleter.join().unwrap();
            inserter.join().unwrap();

            assert!(!tree.contains_key(&1), "deleted key resurfaced");
            assert!(tree.contains_key(&2), "inserted key lost");
            let stats = tree.stats().expect("stats enabled");
            stats.check_figure4().expect("Figure 4 identities");
            agg.fetch_add(stats.backtrack_success, Ordering::Relaxed);
        }
        assert_eq!(
            live.load(Ordering::Relaxed),
            0,
            "value leak or double-free after teardown"
        );
    });
    assert!(
        backtracks.load(Ordering::Relaxed) > 0,
        "no explored execution exercised the backtrack CAS; \
         the mark-failure window was never scheduled"
    );
}

/// Scenario 4 — **helper completes a crashed delete**: the root model
/// thread drives a `raw::RawDelete` of key 1 through dflag + mark and then
/// *crashes* (abandons the driver, leaving the grandparent flagged and the
/// parent permanently marked). A second thread inserts key 2 into the same
/// corner: its search runs into the stale flag, reads the published DInfo,
/// and must complete the stranded deletion (dchild + dunflag) before its
/// own insert can proceed — the paper's core non-blocking claim.
#[test]
fn helper_completes_crashed_delete() {
    loom::model(|| {
        let live = Arc::new(AtomicIsize::new(0));
        {
            let tree = Arc::new(NbBst::<u64, Token>::with_stats());
            tree.insert_entry(1, Token::new(&live)).unwrap();

            {
                // Crash a delete mid-protocol: flagged + marked, child CAS
                // and unflag left for helpers.
                let mut del = nbbst_core::raw::RawDelete::new(&tree, 1);
                assert!(del.search().is_ready(), "key 1 is present");
                assert!(del.flag(), "no contention yet: dflag must win");
                assert_eq!(del.mark(), nbbst_core::raw::MarkOutcome::Marked);
                del.abandon();
            }

            let helper = {
                let tree = Arc::clone(&tree);
                let live = Arc::clone(&live);
                loom::thread::spawn(move || {
                    tree.insert_entry(2, Token::new(&live))
                        .unwrap_or_else(|_| panic!("insert 2 on fresh key failed"));
                })
            };
            helper.join().unwrap();

            assert!(
                !tree.contains_key(&1),
                "marked delete must be completed by the helper"
            );
            assert!(tree.contains_key(&2), "helper's own insert lost");
            // The abandoned driver never ran its own dchild/dunflag, so the
            // strict identities hold only up to abandonment.
            tree.stats()
                .expect("stats enabled")
                .check_figure4_allowing_abandoned()
                .expect("Figure 4 identities (crashed-delete variant)");
        }
        assert_eq!(
            live.load(Ordering::Relaxed),
            0,
            "value leak or double-free after teardown"
        );
    });
}

/// Scenario 5 — **delete/delete on sibling leaves**: both deleters target
/// leaves sharing one parent, so their dflag CASes contend on the same
/// grandparent *and* their marks on the same parent; one must observe the
/// other's flag and help it before retrying.
#[test]
fn delete_delete_sibling_leaves() {
    loom::model(|| {
        let live = Arc::new(AtomicIsize::new(0));
        {
            let tree = Arc::new(NbBst::<u64, Token>::with_stats());
            tree.insert_entry(1, Token::new(&live)).unwrap();
            tree.insert_entry(2, Token::new(&live)).unwrap();

            let handles: Vec<_> = [1u64, 2]
                .into_iter()
                .map(|k| {
                    let tree = Arc::clone(&tree);
                    loom::thread::spawn(move || {
                        assert!(tree.remove_key(&k), "{k} was inserted before the race");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }

            assert!(!tree.contains_key(&1) && !tree.contains_key(&2));
            tree.stats()
                .expect("stats enabled")
                .check_figure4()
                .expect("Figure 4 identities");
        }
        assert_eq!(
            live.load(Ordering::Relaxed),
            0,
            "value leak or double-free after teardown"
        );
    });
}

/// Scenario 6 — **three-thread insert + delete + helper**: a delete of
/// key 1 is stranded mid-protocol (dflag + mark, then abandoned), and
/// *three* threads then work the tree at once: one inserts key 3, one
/// deletes key 2, and one re-attempts `remove_key(&1)`. The re-attempt can
/// never win its own dflag — the grandparent is already flagged and the
/// parent permanently marked — so in every schedule it must finish the
/// stranded DInfo (dchild + dunflag) and then report the key absent, while
/// the insert and the sibling delete contend with that helping in the same
/// corner of the tree. This is the smallest scenario where helping, a
/// fresh insert, and a fresh delete are all simultaneously in flight.
#[test]
fn three_threads_insert_delete_helper() {
    loom::model(|| {
        let live = Arc::new(AtomicIsize::new(0));
        {
            let tree = Arc::new(NbBst::<u64, Token>::with_stats());
            tree.insert_entry(1, Token::new(&live)).unwrap();
            tree.insert_entry(2, Token::new(&live)).unwrap();

            {
                // Strand a delete of key 1: flagged + marked, child CAS and
                // unflag left for whichever thread reaches the corner first.
                let mut del = nbbst_core::raw::RawDelete::new(&tree, 1);
                assert!(del.search().is_ready(), "key 1 is present");
                assert!(del.flag(), "no contention yet: dflag must win");
                assert_eq!(del.mark(), nbbst_core::raw::MarkOutcome::Marked);
                del.abandon();
            }

            let inserter = {
                let tree = Arc::clone(&tree);
                let live = Arc::clone(&live);
                loom::thread::spawn(move || {
                    tree.insert_entry(3, Token::new(&live))
                        .unwrap_or_else(|_| panic!("insert 3 on fresh key failed"));
                })
            };
            let deleter = {
                let tree = Arc::clone(&tree);
                loom::thread::spawn(move || {
                    assert!(tree.remove_key(&2), "2 was inserted before the race");
                })
            };
            let helper = {
                let tree = Arc::clone(&tree);
                loom::thread::spawn(move || {
                    assert!(
                        !tree.remove_key(&1),
                        "the stranded delete owns key 1: the re-attempt may only \
                         help it, never delete the leaf a second time"
                    );
                })
            };
            inserter.join().unwrap();
            deleter.join().unwrap();
            helper.join().unwrap();

            assert!(!tree.contains_key(&1), "stranded delete never completed");
            assert!(!tree.contains_key(&2), "deleted key resurfaced");
            assert!(tree.contains_key(&3), "inserted key lost");
            // The abandoned driver never ran its own dchild/dunflag, so the
            // strict identities hold only up to abandonment.
            tree.stats()
                .expect("stats enabled")
                .check_figure4_allowing_abandoned()
                .expect("Figure 4 identities (three-thread variant)");
        }
        assert_eq!(
            live.load(Ordering::Relaxed),
            0,
            "value leak or double-free after teardown"
        );
    });
}

/// Scenario 7 — **bag steal vs concurrent pin** (the evictable-bag
/// registry; DESIGN.md §10), run directly on the reclaim layer so the
/// schedule space stays small. The writer pins, forces an epoch advance
/// *while still pinned* (so its pin epoch trails the global epoch — the
/// seal-epoch off-by-one window), unlinks the payload, retires it, and
/// unpins — publishing its sealed bag to the registry — then flushes three
/// times, each flush trying to steal and free the bag. The reader pins
/// concurrently; if it observed the payload before the unlink, its pin
/// epoch is at least the bag's seal epoch, and no steal may free the bag
/// until it unpins: the canary deref after a yield stays valid in every
/// interleaving, and the drop balance ends at zero. (Sealing bags with the
/// writer's *pin* epoch instead of the fenced global epoch fails exactly
/// here: the reader pins one epoch ahead, the bag seals one epoch behind,
/// and a flush frees it mid-deref.)
#[test]
fn bag_steal_vs_concurrent_pin() {
    use nbbst_reclaim::{Atomic, Collector, Shared};

    const CANARY: u64 = 0x5EA1_BA65;
    struct Payload {
        canary: u64,
        _token: Token,
    }

    loom::model(|| {
        let live = Arc::new(AtomicIsize::new(0));
        {
            let collector = Arc::new(Collector::new());
            let slot = Arc::new(Atomic::new(Payload {
                canary: CANARY,
                _token: Token::new(&live),
            }));

            let reader = {
                let collector = Arc::clone(&collector);
                let slot = Arc::clone(&slot);
                loom::thread::spawn(move || {
                    let guard = collector.pin();
                    let s = slot.load(Ordering::Acquire, &guard);
                    if !s.is_null() {
                        // We pinned before observing the pointer, so the
                        // epoch protocol must keep the payload alive until
                        // this guard drops — across any number of steals.
                        loom::thread::yield_now();
                        // SAFETY: loaded under our own (still-held) pin.
                        let p = unsafe { s.deref() };
                        assert_eq!(
                            p.canary, CANARY,
                            "bag freed while its epoch was still protected"
                        );
                    }
                })
            };
            let writer = {
                let collector = Arc::clone(&collector);
                let slot = Arc::clone(&slot);
                loom::thread::spawn(move || {
                    {
                        let guard = collector.pin();
                        // Advance the global epoch while pinned: our pin
                        // epoch now trails it, so a bag sealed with the pin
                        // epoch (the historical bug) would free one epoch
                        // too early for a reader pinned at the new epoch.
                        collector.flush();
                        let cur = slot.load(Ordering::Acquire, &guard);
                        slot.compare_exchange(
                            cur,
                            Shared::null(),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            &guard,
                        )
                        .expect("only this thread writes the slot");
                        // SAFETY: the CAS above unlinked `cur`; sole retire.
                        unsafe { guard.defer_destroy(cur) };
                        // Unpin: seals the bag with the fenced global epoch
                        // and publishes it to the evictable registry.
                    }
                    // Each flush may advance the epoch, steal the registry,
                    // and free expired bags — legal only once the reader's
                    // pin can no longer sit at the bag's seal epoch.
                    collector.flush();
                    collector.flush();
                    collector.flush();
                })
            };
            reader.join().unwrap();
            writer.join().unwrap();
            // Teardown: the slot is null (payload retired); the collector
            // drop drains the registry through the same steal path.
        }
        assert_eq!(
            live.load(Ordering::Relaxed),
            0,
            "value leak or double-free after teardown"
        );
    });
}

/// Scenario 8 — **concurrent steals free exactly once**: two threads race
/// `flush` against a registry holding published bags while a third
/// publishes more. The whole-chain `swap` hands each stealer a disjoint
/// chain, so no bag can be freed twice and none can be lost: the drop
/// balance ends at zero in every interleaving.
#[test]
fn concurrent_steals_free_exactly_once() {
    use nbbst_reclaim::{Atomic, Collector};

    loom::model(|| {
        let live = Arc::new(AtomicIsize::new(0));
        {
            let collector = Arc::new(Collector::new());
            // Publish one bag up front so both stealers have something to
            // race for even if the publisher thread runs last.
            {
                let guard = collector.pin();
                let a = Atomic::new(Token::new(&live));
                let s = a.load(Ordering::Acquire, &guard);
                // SAFETY: sole owner of the freshly made allocation.
                unsafe { guard.defer_destroy(s) };
            }

            let publisher = {
                let collector = Arc::clone(&collector);
                let live = Arc::clone(&live);
                loom::thread::spawn(move || {
                    let guard = collector.pin();
                    let a = Atomic::new(Token::new(&live));
                    let s = a.load(Ordering::Acquire, &guard);
                    // SAFETY: sole owner of the freshly made allocation.
                    unsafe { guard.defer_destroy(s) };
                })
            };
            let stealers: Vec<_> = (0..2)
                .map(|_| {
                    let collector = Arc::clone(&collector);
                    loom::thread::spawn(move || {
                        collector.flush();
                        collector.flush();
                    })
                })
                .collect();
            publisher.join().unwrap();
            for s in stealers {
                s.join().unwrap();
            }
            // Collector teardown steals whatever survived the races.
        }
        assert_eq!(
            live.load(Ordering::Relaxed),
            0,
            "a bag was lost or freed twice by racing stealers"
        );
    });
}
