//! Thread-pool churn: writers retire tree nodes and then park forever.
//!
//! This is the workload the evictable-bag registry exists for (DESIGN.md
//! §10): a parked worker never pins again, so under a thread-local bag
//! scheme everything it retired would be stranded until thread exit or
//! collector teardown. With the registry, every outermost unpin publishes
//! the worker's sealed bags to a shared lock-free list, and any later
//! pinning thread — here the test's main thread — steals and frees them.
//!
//! The CI churn job runs this test with `--nocapture` and uploads the
//! printed `ReclaimStats` report as an artifact, so per-PR footprint
//! regressions (peak deferred bytes, steal counts) stay visible.

use nbbst_core::NbBst;
use std::sync::mpsc;
use std::sync::Arc;

const WRITERS: usize = 8;
const KEYS_PER_WRITER: u64 = 2_000;

#[test]
fn parked_writers_garbage_is_freed_by_unrelated_thread() {
    let tree: Arc<NbBst<u64, u64>> = Arc::new(NbBst::new());
    let (done_tx, done_rx) = mpsc::channel();
    let mut parks = Vec::new();
    let mut joins = Vec::new();
    for w in 0..WRITERS {
        let tree = Arc::clone(&tree);
        let done = done_tx.clone();
        let (park_tx, park_rx) = mpsc::channel::<()>();
        parks.push(park_tx);
        joins.push(std::thread::spawn(move || {
            let base = (w as u64) * KEYS_PER_WRITER;
            for k in base..base + KEYS_PER_WRITER {
                tree.insert_entry(k, k)
                    .expect("writer key ranges are disjoint");
                tree.remove_key(&k);
            }
            done.send(()).unwrap();
            // Park forever (until test teardown): this thread never pins,
            // flushes, or exits on its own, so nothing it retired can be
            // freed unless another thread reclaims it.
            let _ = park_rx.recv();
        }));
    }
    for _ in 0..WRITERS {
        done_rx.recv().unwrap();
    }

    let before = tree.collector().stats();
    assert!(before.retired > 0, "churn must retire nodes: {before:?}");

    // An unrelated thread (this one) drains everything the parked writers
    // retired, purely through the evictable-bag registry.
    assert!(
        tree.collector().try_drain(10_000),
        "parked writers' garbage was not drained: {:?}",
        tree.collector().stats()
    );
    let stats = tree.collector().stats();

    println!("=== churn ReclaimStats report ===");
    println!("writers:             {WRITERS} (parked after {KEYS_PER_WRITER} insert+remove each)");
    println!("retired:             {}", stats.retired);
    println!("freed:               {}", stats.freed);
    println!("freed during churn:  {}", before.freed);
    println!("epoch advances:      {}", stats.epoch_advances);
    println!("bags published:      {}", stats.bags_published);
    println!("bags stolen:         {}", stats.bags_stolen);
    println!("bags freed:          {}", stats.bags_freed);
    println!("deferred bytes now:  {}", stats.deferred_bytes);
    println!("peak deferred bytes: {}", stats.peak_deferred_bytes);
    println!("=================================");

    assert_eq!(stats.retired, stats.freed, "{stats:?}");
    // The footprint invariant: despite every writer being parked forever,
    // deferred bytes return to zero — nothing is stranded, so the peak is
    // the high-water mark of a *draining* queue, not an unbounded leak.
    assert_eq!(stats.deferred_bytes, 0, "{stats:?}");
    assert_eq!(stats.evictable, 0, "{stats:?}");
    assert!(stats.peak_deferred_bytes > 0, "{stats:?}");
    assert!(
        stats.bags_stolen > 0,
        "an unrelated thread must have stolen parked writers' bags: {stats:?}"
    );

    // The tree is still fully usable after the cross-thread reclamation.
    tree.insert_entry(u64::MAX, 7).unwrap();
    assert!(tree.contains_key(&u64::MAX));

    for p in &parks {
        p.send(()).unwrap();
    }
    for j in joins {
        j.join().unwrap();
    }
}
