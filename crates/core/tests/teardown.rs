//! Teardown correctness under crashed (abandoned) operations.
//!
//! `NbBst::drop` must free exactly what the live protocol did not: nodes
//! still reachable from the root, Info records still *flagged* into a
//! reachable update word, and the speculative subtree of an insert that
//! flagged but never installed. The dangerous shapes, driven here one CAS
//! at a time with the `raw` steppers:
//!
//! * a stalled delete whose grandparent `DFlag` and parent `Mark` point at
//!   the **same** `DInfo` record — teardown must free it once, not twice;
//! * a stalled insert whose `ichild` succeeded but whose `iunflag` did not
//!   — the new subtree is reachable, so teardown must free only the
//!   `IInfo`, not the subtree again.
//!
//! Each test drops the tree (and with it the epoch collector) and then
//! checks a clones-minus-drops balance on the values: a leak leaves the
//! balance positive, a double-free drives it negative or aborts the
//! process outright.

use nbbst_core::raw::{MarkOutcome, RawDelete, RawInsert};
use nbbst_core::NbBst;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Arc;

/// Counts clones minus drops in a shared balance.
#[derive(Debug)]
struct Token {
    live: Arc<AtomicIsize>,
}

impl Token {
    fn new(live: &Arc<AtomicIsize>) -> Token {
        live.fetch_add(1, Ordering::Relaxed);
        Token {
            live: Arc::clone(live),
        }
    }
}

impl Clone for Token {
    fn clone(&self) -> Token {
        self.live.fetch_add(1, Ordering::Relaxed);
        Token {
            live: Arc::clone(&self.live),
        }
    }
}

impl Drop for Token {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

fn tree_with_keys(keys: &[u64], live: &Arc<AtomicIsize>) -> NbBst<u64, Token> {
    let tree = NbBst::with_stats();
    for &k in keys {
        tree.insert_entry(k, Token::new(live))
            .unwrap_or_else(|_| panic!("duplicate key {k} in fixture"));
    }
    tree
}

/// Delete crashed after `dflag` + `mark`: the grandparent's `DFlag` word
/// and the parent's `Mark` word both hold the one `DInfo`; the parent and
/// leaf are still reachable. Teardown must free every node once and the
/// shared record once.
#[test]
fn drop_frees_shared_dinfo_of_marked_delete_once() {
    let live = Arc::new(AtomicIsize::new(0));
    {
        let tree = tree_with_keys(&[1, 2], &live);
        let mut del = RawDelete::new(&tree, 1);
        assert!(del.search().is_ready());
        assert!(del.flag(), "quiet tree: dflag must win");
        assert_eq!(del.mark(), MarkOutcome::Marked);
        del.abandon(); // crash: dchild and dunflag never run
    }
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "leak or double-free tearing down a dflag+mark-stalled delete"
    );
}

/// Delete crashed after `dflag` only (mark never attempted): one flagged
/// word, parent still Clean.
#[test]
fn drop_frees_dinfo_of_flag_only_delete() {
    let live = Arc::new(AtomicIsize::new(0));
    {
        let tree = tree_with_keys(&[1, 2], &live);
        let mut del = RawDelete::new(&tree, 2);
        assert!(del.search().is_ready());
        assert!(del.flag(), "quiet tree: dflag must win");
        del.abandon();
    }
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "leak or double-free tearing down a dflag-stalled delete"
    );
}

/// Delete crashed after `dchild` (only the `dunflag` missing): the parent
/// and leaf were already unlinked and retired to the collector, so
/// teardown must free the `DInfo` via the grandparent's stale flag but
/// must *not* touch the retired nodes again.
#[test]
fn drop_after_dchild_does_not_double_free_retired_nodes() {
    let live = Arc::new(AtomicIsize::new(0));
    {
        let tree = tree_with_keys(&[1, 2], &live);
        let mut del = RawDelete::new(&tree, 1);
        assert!(del.search().is_ready());
        assert!(del.flag(), "quiet tree: dflag must win");
        assert_eq!(del.mark(), MarkOutcome::Marked);
        assert!(del.execute_child(), "quiet tree: dchild must win");
        del.abandon(); // crash: dunflag never runs
        assert!(!tree.contains_key(&1));
        assert!(tree.contains_key(&2));
    }
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "leak or double-free tearing down a dchild-stalled delete"
    );
}

/// Insert crashed after `iflag`: the speculative three-node subtree was
/// never installed, so teardown must free it (and its value) through the
/// flagged `IInfo`.
#[test]
fn drop_frees_speculative_subtree_of_flag_only_insert() {
    let live = Arc::new(AtomicIsize::new(0));
    {
        let tree = tree_with_keys(&[1], &live);
        let mut ins = RawInsert::new(&tree, 2, Token::new(&live));
        assert!(ins.search().is_ready());
        assert!(ins.flag(), "quiet tree: iflag must win");
        ins.abandon(); // crash: ichild and iunflag never run
        assert!(!tree.contains_key(&2), "subtree was never installed");
    }
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "leak or double-free tearing down an iflag-stalled insert"
    );
}

/// Insert crashed after `ichild` (only the `iunflag` missing): the new
/// subtree **is** reachable and the displaced leaf was retired, so
/// teardown must free the `IInfo` but walk the subtree exactly once.
#[test]
fn drop_after_ichild_frees_installed_subtree_once() {
    let live = Arc::new(AtomicIsize::new(0));
    {
        let tree = tree_with_keys(&[1], &live);
        let mut ins = RawInsert::new(&tree, 2, Token::new(&live));
        assert!(ins.search().is_ready());
        assert!(ins.flag(), "quiet tree: iflag must win");
        assert!(ins.execute_child(), "quiet tree: ichild must win");
        ins.abandon(); // crash: iunflag never runs
        assert!(tree.contains_key(&2), "subtree was installed");
        assert!(tree.contains_key(&1));
    }
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "leak or double-free tearing down an ichild-stalled insert"
    );
}

/// Both shapes at once, in different corners of one tree: a mark-stalled
/// delete of the smallest key and an ichild-stalled insert of a new
/// largest key, plus quiet keys in between.
#[test]
fn drop_handles_both_stalled_shapes_in_one_tree() {
    let live = Arc::new(AtomicIsize::new(0));
    {
        let tree = tree_with_keys(&[1, 2, 3], &live);

        let mut del = RawDelete::new(&tree, 1);
        assert!(del.search().is_ready());
        assert!(del.flag(), "quiet corner: dflag must win");
        assert_eq!(del.mark(), MarkOutcome::Marked);
        del.abandon();

        let mut ins = RawInsert::new(&tree, 4, Token::new(&live));
        assert!(ins.search().is_ready());
        assert!(ins.flag(), "quiet corner: iflag must win");
        assert!(ins.execute_child(), "quiet corner: ichild must win");
        ins.abandon();
    }
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "leak or double-free tearing down mixed stalled operations"
    );
}
