//! The key universe extended with the paper's dummy keys `∞1 < ∞2`.
//!
//! Section 4.1: "we append two special values, `∞1 < ∞2`, to the universe
//! `Key` of keys (where every real key is less than `∞1`) and initialize the
//! tree so that it contains two dummy keys `∞1` and `∞2`". Both the
//! sequential model and the concurrent tree store `SentinelKey<K>` in their
//! nodes so the pseudocode's comparisons carry over verbatim with no special
//! cases for small trees.

use std::cmp::Ordering;
use std::fmt;

/// An element of `Key ∪ {∞1, ∞2}`.
///
/// Ordering: every `Key(k)` is less than [`SentinelKey::Inf1`], which is
/// less than [`SentinelKey::Inf2`]; `Key` values order by `K`.
///
/// # Examples
///
/// ```
/// use nbbst_dictionary::SentinelKey;
///
/// assert!(SentinelKey::Key(u64::MAX) < SentinelKey::Inf1);
/// assert!(SentinelKey::Inf1 < SentinelKey::<u64>::Inf2);
/// assert!(SentinelKey::Key(3u64) < SentinelKey::Key(4u64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SentinelKey<K> {
    /// A real key from the dictionary's universe.
    Key(K),
    /// The smaller dummy key; greater than every real key.
    Inf1,
    /// The larger dummy key; greater than everything else.
    Inf2,
}

impl<K> SentinelKey<K> {
    /// Returns the real key, if this is not a sentinel.
    pub fn as_key(&self) -> Option<&K> {
        match self {
            SentinelKey::Key(k) => Some(k),
            _ => None,
        }
    }

    /// Returns `true` for `∞1` and `∞2`.
    pub fn is_sentinel(&self) -> bool {
        !matches!(self, SentinelKey::Key(_))
    }

    /// Rank used for ordering sentinels: keys < ∞1 < ∞2.
    fn rank(&self) -> u8 {
        match self {
            SentinelKey::Key(_) => 0,
            SentinelKey::Inf1 => 1,
            SentinelKey::Inf2 => 2,
        }
    }
}

impl<K: Ord> Ord for SentinelKey<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (SentinelKey::Key(a), SentinelKey::Key(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl<K: Ord> PartialOrd for SentinelKey<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: fmt::Display> fmt::Display for SentinelKey<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SentinelKey::Key(k) => write!(f, "{k}"),
            SentinelKey::Inf1 => f.write_str("∞1"),
            SentinelKey::Inf2 => f.write_str("∞2"),
        }
    }
}

/// Compares a real key against a node key the way the paper's `Search`
/// does (`if k < l.key then go left else go right`).
///
/// Real keys always compare less than sentinels, so searches for real keys
/// drift left past the dummy spine at the top of the tree.
pub fn real_vs_node<K: Ord>(real: &K, node: &SentinelKey<K>) -> Ordering {
    match node {
        SentinelKey::Key(nk) => real.cmp(nk),
        SentinelKey::Inf1 | SentinelKey::Inf2 => Ordering::Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_matches_paper() {
        let mut keys = vec![
            SentinelKey::Inf2,
            SentinelKey::Key(5u64),
            SentinelKey::Inf1,
            SentinelKey::Key(1u64),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                SentinelKey::Key(1),
                SentinelKey::Key(5),
                SentinelKey::Inf1,
                SentinelKey::Inf2,
            ]
        );
    }

    #[test]
    fn real_vs_node_sends_real_keys_left_of_sentinels() {
        assert_eq!(real_vs_node(&u64::MAX, &SentinelKey::Inf1), Ordering::Less);
        assert_eq!(real_vs_node(&u64::MAX, &SentinelKey::Inf2), Ordering::Less);
        assert_eq!(real_vs_node(&3u64, &SentinelKey::Key(3)), Ordering::Equal);
        assert_eq!(real_vs_node(&9u64, &SentinelKey::Key(3)), Ordering::Greater);
    }

    #[test]
    fn accessors() {
        assert_eq!(SentinelKey::Key(7u64).as_key(), Some(&7));
        assert_eq!(SentinelKey::<u64>::Inf1.as_key(), None);
        assert!(SentinelKey::<u64>::Inf2.is_sentinel());
        assert!(!SentinelKey::Key(0u64).is_sentinel());
    }

    #[test]
    fn display() {
        assert_eq!(SentinelKey::Key(7u64).to_string(), "7");
        assert_eq!(SentinelKey::<u64>::Inf1.to_string(), "∞1");
        assert_eq!(SentinelKey::<u64>::Inf2.to_string(), "∞2");
    }
}
