//! Dictionary abstractions shared across the `nbbst` workspace.
//!
//! The paper reproduced by this workspace — Ellen, Fatourou, Ruppert and
//! van Breugel, *Non-blocking Binary Search Trees*, PODC 2010 — implements
//! the **dictionary** abstract data type: a set of keys drawn from a totally
//! ordered universe supporting `Insert(k)`, `Delete(k)` and `Find(k)`
//! (Section 3 of the paper), optionally carrying auxiliary data with each
//! key.
//!
//! This crate defines that abstract data type as two traits so that the
//! EFRB tree, every baseline, and the sequential reference models can be
//! driven by one benchmark harness and checked against one another:
//!
//! * [`ConcurrentMap`] — thread-safe dictionaries operated through `&self`.
//! * [`SeqMap`] — single-threaded reference models operated through
//!   `&mut self`.
//!
//! It also defines the [`Operation`]/[`Response`] vocabulary used to record
//! histories for linearizability checking, and the [`ShardRoute`] key →
//! shard splitter behind horizontally partitioned frontends
//! ([`FibonacciRoute`] is the default hash-mixed route).
//!
//! # Semantics
//!
//! All implementations follow the paper's dictionary semantics exactly:
//!
//! * `insert(k, v)` returns `true` and adds the key iff `k` was absent;
//!   inserting a duplicate key returns `false` **and does not overwrite the
//!   existing value** (the paper's `Insert` returns `False` on duplicates).
//! * `remove(k)` returns `true` and removes the key iff `k` was present.
//! * `contains(k)` / `get(k)` report membership / the associated value and
//!   never modify the dictionary.
//!
//! # Examples
//!
//! ```
//! use nbbst_dictionary::{SeqMap, Operation, Response};
//!
//! // Any `SeqMap` can replay a recorded operation.
//! let mut model = std::collections::BTreeMap::new();
//! assert_eq!(Operation::Insert(5u64, 50u64).apply_seq(&mut model), Response::True);
//! assert_eq!(Operation::Contains(5).apply_seq(&mut model), Response::True);
//! assert_eq!(Operation::Remove(5).apply_seq(&mut model), Response::True);
//! assert_eq!(Operation::Remove(5).apply_seq(&mut model), Response::False);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod route;
mod sentinel;

pub use route::{FibonacciRoute, KeySpace, RangeRoute, ShardRoute, UniformU64};
pub use sentinel::{real_vs_node, SentinelKey};

use std::collections::BTreeMap;
use std::fmt;

/// A thread-safe dictionary (ordered-set-with-values) operated through
/// shared references.
///
/// Every concurrent structure in this workspace — the EFRB tree and all
/// baselines — implements this trait, which mirrors the paper's dictionary
/// interface (`Insert`/`Delete`/`Find`).
///
/// # Examples
///
/// Implementations are exercised generically; see the `nbbst-harness` crate
/// for workload runners built on this trait.
///
/// ```
/// use nbbst_dictionary::ConcurrentMap;
///
/// fn smoke<M: ConcurrentMap<u64, u64> + Default>() {
///     let m = M::default();
///     assert!(m.insert(1, 10));
///     assert!(!m.insert(1, 11)); // duplicate: rejected, not overwritten
///     assert_eq!(m.get(&1), Some(10));
///     assert!(m.remove(&1));
///     assert!(!m.contains(&1));
/// }
/// ```
pub trait ConcurrentMap<K, V>: Send + Sync {
    /// Adds `key` (with `value`) to the dictionary.
    ///
    /// Returns `true` if the key was inserted, `false` if it was already
    /// present (in which case the stored value is left untouched, matching
    /// the paper's duplicate-rejecting `Insert`).
    fn insert(&self, key: K, value: V) -> bool;

    /// Removes `key` from the dictionary.
    ///
    /// Returns `true` if the key was present (and has been removed),
    /// `false` otherwise.
    fn remove(&self, key: &K) -> bool;

    /// Returns `true` iff `key` is in the dictionary.
    ///
    /// This is the paper's `Find`: it only reads shared memory.
    fn contains(&self, key: &K) -> bool;

    /// Returns a clone of the value associated with `key`, if present.
    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone;

    /// Counts the keys currently in the dictionary.
    ///
    /// This is a *quiescent* operation: implementations may traverse the
    /// whole structure and the result is only meaningful when no concurrent
    /// updates are in flight. It exists for test/validation use, not for the
    /// hot path.
    fn quiescent_len(&self) -> usize;

    /// Returns `true` iff the dictionary holds no keys.
    ///
    /// Quiescent, like [`ConcurrentMap::quiescent_len`].
    fn quiescent_is_empty(&self) -> bool {
        self.quiescent_len() == 0
    }
}

/// A single-threaded dictionary used as a reference model.
///
/// The sequential semantics are identical to [`ConcurrentMap`]; only the
/// receiver differs (`&mut self`), because reference models need no internal
/// synchronization.
///
/// # Examples
///
/// ```
/// use nbbst_dictionary::SeqMap;
///
/// let mut m = std::collections::BTreeMap::new();
/// assert!(SeqMap::insert(&mut m, 3u32, "three"));
/// assert!(!SeqMap::insert(&mut m, 3, "trois"));
/// assert_eq!(SeqMap::get(&m, &3), Some("three"));
/// assert!(SeqMap::remove(&mut m, &3));
/// ```
pub trait SeqMap<K, V> {
    /// Adds `key` (with `value`); returns `false` without overwriting if the
    /// key is already present.
    fn insert(&mut self, key: K, value: V) -> bool;

    /// Removes `key`; returns `true` iff it was present.
    fn remove(&mut self, key: &K) -> bool;

    /// Returns `true` iff `key` is present.
    fn contains(&self, key: &K) -> bool;

    /// Returns a clone of the value associated with `key`, if present.
    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone;

    /// Number of keys currently stored.
    fn len(&self) -> usize;

    /// Returns `true` iff no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord, V> SeqMap<K, V> for BTreeMap<K, V> {
    fn insert(&mut self, key: K, value: V) -> bool {
        use std::collections::btree_map::Entry;
        match self.entry(key) {
            Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            Entry::Occupied(_) => false,
        }
    }

    fn remove(&mut self, key: &K) -> bool {
        BTreeMap::remove(self, key).is_some()
    }

    fn contains(&self, key: &K) -> bool {
        self.contains_key(key)
    }

    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        BTreeMap::get(self, key).cloned()
    }

    fn len(&self) -> usize {
        BTreeMap::len(self)
    }
}

/// One dictionary operation, as generated by a workload or recorded in a
/// history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation<K, V> {
    /// `Insert(k, v)` — the paper's `Insert(k)` carrying auxiliary data `v`.
    Insert(K, V),
    /// `Remove(k)` — the paper's `Delete(k)`.
    Remove(K),
    /// `Contains(k)` — the paper's `Find(k)`.
    Contains(K),
}

impl<K, V> Operation<K, V> {
    /// The key this operation targets.
    pub fn key(&self) -> &K {
        match self {
            Operation::Insert(k, _) | Operation::Remove(k) | Operation::Contains(k) => k,
        }
    }

    /// Returns `true` for `Insert` and `Remove` (the paper's "update
    /// operations"), `false` for `Contains`.
    pub fn is_update(&self) -> bool {
        !matches!(self, Operation::Contains(_))
    }

    /// Applies the operation to a concurrent dictionary and returns the
    /// observed [`Response`].
    pub fn apply<M: ConcurrentMap<K, V> + ?Sized>(self, map: &M) -> Response {
        match self {
            Operation::Insert(k, v) => Response::from(map.insert(k, v)),
            Operation::Remove(k) => Response::from(map.remove(&k)),
            Operation::Contains(k) => Response::from(map.contains(&k)),
        }
    }

    /// Applies the operation to a sequential reference model and returns the
    /// expected [`Response`].
    pub fn apply_seq<M: SeqMap<K, V> + ?Sized>(self, map: &mut M) -> Response {
        match self {
            Operation::Insert(k, v) => Response::from(map.insert(k, v)),
            Operation::Remove(k) => Response::from(map.remove(&k)),
            Operation::Contains(k) => Response::from(map.contains(&k)),
        }
    }
}

impl<K: fmt::Display, V> fmt::Display for Operation<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Insert(k, _) => write!(f, "Insert({k})"),
            Operation::Remove(k) => write!(f, "Delete({k})"),
            Operation::Contains(k) => write!(f, "Find({k})"),
        }
    }
}

/// The boolean result of a dictionary operation.
///
/// All three dictionary operations return booleans in the paper (`Find`
/// reports membership; updates report success). A dedicated enum keeps
/// histories self-describing and `Display`-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Response {
    /// The operation returned `true`.
    True,
    /// The operation returned `false`.
    False,
}

impl Response {
    /// The underlying boolean.
    pub fn as_bool(self) -> bool {
        matches!(self, Response::True)
    }
}

impl From<bool> for Response {
    fn from(b: bool) -> Self {
        if b {
            Response::True
        } else {
            Response::False
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.as_bool() { "True" } else { "False" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// Minimal ConcurrentMap impl used to test trait plumbing.
    #[derive(Default)]
    struct Locked(Mutex<BTreeMap<u64, u64>>);

    impl ConcurrentMap<u64, u64> for Locked {
        fn insert(&self, key: u64, value: u64) -> bool {
            SeqMap::insert(&mut *self.0.lock().unwrap(), key, value)
        }
        fn remove(&self, key: &u64) -> bool {
            SeqMap::remove(&mut *self.0.lock().unwrap(), key)
        }
        fn contains(&self, key: &u64) -> bool {
            SeqMap::contains(&*self.0.lock().unwrap(), key)
        }
        fn get(&self, key: &u64) -> Option<u64> {
            SeqMap::get(&*self.0.lock().unwrap(), key)
        }
        fn quiescent_len(&self) -> usize {
            SeqMap::len(&*self.0.lock().unwrap())
        }
    }

    #[test]
    fn btreemap_seqmap_duplicate_insert_does_not_overwrite() {
        let mut m = BTreeMap::new();
        assert!(SeqMap::insert(&mut m, 1u64, 10u64));
        assert!(!SeqMap::insert(&mut m, 1, 11));
        assert_eq!(SeqMap::get(&m, &1), Some(10));
    }

    #[test]
    fn btreemap_seqmap_remove_semantics() {
        let mut m = BTreeMap::new();
        assert!(!SeqMap::remove(&mut m, &7u64));
        assert!(SeqMap::insert(&mut m, 7, 70u64));
        assert!(SeqMap::remove(&mut m, &7));
        assert!(!SeqMap::remove(&mut m, &7));
        assert!(SeqMap::is_empty(&m));
    }

    #[test]
    fn operation_apply_matches_apply_seq() {
        let ops = [
            Operation::Insert(1u64, 1u64),
            Operation::Insert(1, 2),
            Operation::Contains(1),
            Operation::Remove(1),
            Operation::Remove(1),
            Operation::Contains(1),
        ];
        let conc = Locked::default();
        let mut seq = BTreeMap::new();
        for op in ops {
            assert_eq!(op.apply(&conc), op.apply_seq(&mut seq), "op {op:?}");
        }
    }

    #[test]
    fn operation_accessors() {
        let op: Operation<u64, u64> = Operation::Insert(9, 90);
        assert_eq!(*op.key(), 9);
        assert!(op.is_update());
        assert!(Operation::<u64, u64>::Remove(3).is_update());
        assert!(!Operation::<u64, u64>::Contains(3).is_update());
    }

    #[test]
    fn response_roundtrip_and_display() {
        assert!(Response::from(true).as_bool());
        assert!(!Response::from(false).as_bool());
        assert_eq!(Response::True.to_string(), "True");
        assert_eq!(Response::False.to_string(), "False");
        assert_eq!(Operation::<u64, u64>::Remove(4).to_string(), "Delete(4)");
    }

    #[test]
    fn quiescent_default_is_empty() {
        let m = Locked::default();
        assert!(m.quiescent_is_empty());
        m.insert(1, 1);
        assert!(!m.quiescent_is_empty());
        assert_eq!(m.quiescent_len(), 1);
    }
}
