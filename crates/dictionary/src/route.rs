//! Key → shard routing for horizontally partitioned dictionaries.
//!
//! A sharded frontend (e.g. `nbbst-sharded`'s `ShardedNbBst`) splits the
//! key space over a power-of-two array of independent dictionaries. The
//! [`ShardRoute`] trait is the pluggable splitter: given a key and the
//! shard count it names the one shard that owns the key. Routing must be
//! **pure** — the same key always maps to the same shard for the lifetime
//! of the map — which is what lets per-key operations stay linearizable
//! across the composition (every operation touches exactly one
//! linearizable shard).
//!
//! Two routes ship with the crate:
//!
//! * [`FibonacciRoute`] is the default: an FNV-1a hash of the key followed
//!   by a Fibonacci (golden-ratio) multiply, taking the *top* bits. The
//!   multiply diffuses low-entropy keys (sequential integers, aligned
//!   pointers) across shards, and taking high bits keeps the route stable
//!   in distribution when the shard count changes by powers of two. Hash
//!   routing balances load under any key distribution but scatters ordered
//!   key ranges over every shard, so ordered scans must merge all shards.
//! * [`RangeRoute`] partitions the key space into **contiguous intervals**
//!   via a sorted split-point table, in the spirit of the partitioned
//!   layouts used by non-blocking interpolation search trees. Ordered
//!   routing makes range queries touch only the shards that overlap the
//!   interval and lets cross-shard scans concatenate (rather than merge)
//!   per-shard results — at the cost of load imbalance when the key
//!   distribution is skewed relative to the split points. A [`KeySpace`]
//!   describes the key universe so split points can be derived instead of
//!   hand-written ([`UniformU64`] covers the benchmark-standard integer
//!   domain).

use std::hash::{Hash, Hasher};
use std::ops::{Bound, Range};

/// Maps keys to shards for a horizontally partitioned dictionary.
///
/// `shards` is always a power of two (sharded frontends round up), and
/// implementations must return a value in `0..shards` and be *pure*: the
/// route for a key may depend only on the key and the shard count, never
/// on mutable state, so that every operation on a key is served by the
/// same underlying dictionary.
///
/// # Examples
///
/// A route that pins every key to one shard (adversarial tests use this
/// to drive maximal contention through a sharded map):
///
/// ```
/// use nbbst_dictionary::ShardRoute;
///
/// struct OneShard;
/// impl<K> ShardRoute<K> for OneShard {
///     fn shard(&self, _key: &K, _shards: usize) -> usize {
///         0
///     }
/// }
/// assert_eq!(OneShard.shard(&42u64, 8), 0);
/// ```
pub trait ShardRoute<K: ?Sized>: Send + Sync {
    /// The index of the shard owning `key`, in `0..shards`.
    ///
    /// `shards` is a power of two.
    fn shard(&self, key: &K, shards: usize) -> usize;

    /// `true` iff the route is **monotone**: `a <= b` implies
    /// `shard(a) <= shard(b)`, so each shard owns a contiguous key
    /// interval and concatenating per-shard ordered scans in shard order
    /// yields a globally ordered scan. Hash routes return `false` (the
    /// default); [`RangeRoute`] returns `true`.
    fn is_ordered(&self) -> bool {
        false
    }

    /// The contiguous run of shard indices that can own keys in
    /// `[lo, hi]`-style bounds.
    ///
    /// Implementations may be conservative (return a superset), never
    /// lossy. The default covers every shard, which is the only safe
    /// answer for unordered (hash) routes; ordered routes narrow it to
    /// the shards whose intervals overlap the bounds.
    fn covering_shards(&self, lo: Bound<&K>, hi: Bound<&K>, shards: usize) -> Range<usize> {
        let _ = (lo, hi);
        0..shards
    }
}

/// FNV-1a, the workspace's dependency-free [`Hasher`]: cheap (one
/// multiply per byte), deterministic across runs and platforms.
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// The default splitter: FNV-1a over the key's [`Hash`] bytes, mixed by a
/// Fibonacci multiply, routed by the **top** `log2(shards)` bits.
///
/// The golden-ratio constant `2^64 / φ` spreads consecutive and
/// low-entropy hashes maximally apart (Knuth's multiplicative hashing),
/// so sequential integer keys — the common benchmark workload, and the
/// worst case for naive `hash % shards` routing on power-of-two counts —
/// distribute evenly.
///
/// Shard counts are powers of two by contract, but a non-power-of-two
/// count degrades gracefully: the route takes enough top bits to cover
/// the count and caps the result at `shards - 1` (slightly uneven, never
/// out of range).
///
/// # Examples
///
/// ```
/// use nbbst_dictionary::{FibonacciRoute, ShardRoute};
///
/// let route = FibonacciRoute;
/// for k in 0u64..1000 {
///     assert!(route.shard(&k, 8) < 8);
///     // Pure: the same key always lands on the same shard.
///     assert_eq!(route.shard(&k, 8), route.shard(&k, 8));
/// }
/// // One shard short-circuits.
/// assert_eq!(route.shard(&7u64, 1), 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FibonacciRoute;

/// `2^64 / φ`, odd — Knuth's multiplicative-hash constant.
const PHI64: u64 = 0x9E37_79B9_7F4A_7C15;

impl<K: Hash + ?Sized> ShardRoute<K> for FibonacciRoute {
    fn shard(&self, key: &K, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two(), "shard counts are powers of two");
        if shards <= 1 {
            return 0;
        }
        let mut h = Fnv1a::default();
        key.hash(&mut h);
        let mixed = h.finish().wrapping_mul(PHI64);
        // Top bits: the multiply pushes entropy upward. `bits` covers
        // the shard count even when it is not a power of two (the
        // debug_assert above states the contract; release builds must
        // still stay in range), and the cap folds the excess of the
        // rounded-up space back onto the last shard. A 64-bit shift
        // (shards == 1) is already excluded above.
        let bits = shards.next_power_of_two().trailing_zeros();
        ((mixed >> (64 - bits)) as usize).min(shards - 1)
    }
}

/// Describes a key universe well enough to derive evenly spaced split
/// points for [`RangeRoute::even`].
///
/// Implementations return `shards - 1` **sorted, distinct** keys that cut
/// the universe into `shards` intervals of (approximately) equal measure
/// under the expected key distribution.
pub trait KeySpace<K> {
    /// `shards - 1` sorted, distinct split points partitioning the
    /// universe into `shards` intervals.
    fn split_points(&self, shards: usize) -> Vec<K>;
}

/// The benchmark-standard key universe: `u64` keys drawn uniformly from
/// the inclusive interval `[lo, hi]`.
///
/// # Examples
///
/// ```
/// use nbbst_dictionary::{KeySpace, UniformU64};
///
/// let space = UniformU64 { lo: 0, hi: 99 };
/// assert_eq!(space.split_points(4), vec![25, 50, 75]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformU64 {
    /// Smallest key in the universe (inclusive).
    pub lo: u64,
    /// Largest key in the universe (inclusive).
    pub hi: u64,
}

impl KeySpace<u64> for UniformU64 {
    fn split_points(&self, shards: usize) -> Vec<u64> {
        assert!(self.lo <= self.hi, "empty key universe");
        assert!(shards >= 1, "at least one shard");
        // u128 arithmetic so the full-domain universe cannot overflow.
        let span = (self.hi - self.lo) as u128 + 1;
        (1..shards)
            .map(|i| self.lo + (span * i as u128 / shards as u128) as u64)
            .collect()
    }
}

/// Contiguous key-interval routing over a sorted split-point table.
///
/// With split points `s_0 < s_1 < … < s_{m-1}`, shard `0` owns keys
/// `k < s_0`, shard `i` owns `s_{i-1} <= k < s_i`, and the last shard
/// owns `k >= s_{m-1}` (lookups are capped at `shards - 1`, so a table
/// longer than the shard count folds the tail onto the last shard rather
/// than routing out of range). The route is monotone, so per-shard
/// ordered scans concatenate into a global ordered scan and range queries
/// touch only the overlapping shards — the property the sharded frontend
/// exploits for `range_snapshot` stitching.
///
/// The flip side of ordered routing is load skew: if the live keys
/// cluster inside one interval, that shard absorbs the traffic. Pick
/// split points from what you know about the key distribution
/// ([`RangeRoute::even`] over a [`KeySpace`] for uniform keys), and watch
/// the frontend's load report for imbalance.
///
/// # Examples
///
/// ```
/// use nbbst_dictionary::{RangeRoute, ShardRoute, UniformU64};
///
/// let route = RangeRoute::even(&UniformU64 { lo: 0, hi: 99 }, 4);
/// assert_eq!(route.shard(&0u64, 4), 0);
/// assert_eq!(route.shard(&24u64, 4), 0);
/// assert_eq!(route.shard(&25u64, 4), 1);
/// assert_eq!(route.shard(&99u64, 4), 3);
/// assert!(route.is_ordered());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeRoute<K> {
    /// Sorted, distinct interval lower bounds for shards `1..`.
    splits: Vec<K>,
}

impl<K: Ord> RangeRoute<K> {
    /// Builds a route from an explicit sorted table of split points;
    /// `splits[i]` is the smallest key owned by shard `i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the table is not strictly ascending.
    pub fn from_splits(splits: Vec<K>) -> Self {
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "split points must be strictly ascending"
        );
        RangeRoute { splits }
    }

    /// Builds a route with evenly spaced split points for `shards`
    /// intervals of the given [`KeySpace`].
    pub fn even(space: &impl KeySpace<K>, shards: usize) -> Self {
        Self::from_splits(space.split_points(shards))
    }

    /// The split-point table (shard `i + 1`'s smallest owned key).
    pub fn splits(&self) -> &[K] {
        &self.splits
    }

    /// Interval index before capping: the number of split points `<= key`.
    fn interval(&self, key: &K) -> usize {
        self.splits.partition_point(|s| s <= key)
    }
}

impl<K: Ord + Send + Sync> ShardRoute<K> for RangeRoute<K> {
    fn shard(&self, key: &K, shards: usize) -> usize {
        // The cap folds intervals beyond the shard count onto the last
        // shard (a table built for more shards than exist stays safe).
        self.interval(key).min(shards - 1)
    }

    fn is_ordered(&self) -> bool {
        true
    }

    fn covering_shards(&self, lo: Bound<&K>, hi: Bound<&K>, shards: usize) -> Range<usize> {
        let first = match lo {
            Bound::Unbounded => 0,
            // Keys >= k (or > k) start in k's own interval: the interval
            // is contiguous and contains keys on both sides of k.
            Bound::Included(k) | Bound::Excluded(k) => self.interval(k).min(shards - 1),
        };
        let last = match hi {
            Bound::Unbounded => shards - 1,
            Bound::Included(k) | Bound::Excluded(k) => self.interval(k).min(shards - 1),
        };
        // Inverted bounds leave first > last; a Range with start >= end
        // is empty, which is exactly the right answer.
        first..last + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_stay_in_range_for_every_pow2() {
        let r = FibonacciRoute;
        for shards in [1usize, 2, 4, 8, 64, 1024] {
            for k in 0u64..4_096 {
                assert!(r.shard(&k, shards) < shards, "key {k} shards {shards}");
            }
        }
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn non_pow2_shard_counts_stay_in_range_in_release() {
        // The power-of-two contract is debug_assert-ed, so release builds
        // must degrade gracefully instead of routing out of range (the
        // old `trailing_zeros` shift produced indices up to
        // next_power_of_two(shards) - 1, e.g. 7 for shards == 5).
        let r = FibonacciRoute;
        for shards in [3usize, 5, 6, 7, 12, 100] {
            for k in 0u64..4_096 {
                let s = r.shard(&k, shards);
                assert!(s < shards, "key {k} routed to {s} of {shards}");
            }
        }
    }

    #[test]
    fn sequential_keys_spread_evenly() {
        // The motivating case: benchmark keys are 0..n. A naive
        // `key % shards` would be fine here, but `hash-top-bits` without
        // the Fibonacci mix would clump; assert real balance.
        let r = FibonacciRoute;
        let shards = 8usize;
        let mut counts = vec![0usize; shards];
        let n = 8_000u64;
        for k in 0..n {
            counts[r.shard(&k, shards)] += 1;
        }
        let ideal = n as usize / shards;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 2 && c < ideal * 2,
                "shard {s} got {c} of {n} keys (ideal {ideal}): {counts:?}"
            );
        }
    }

    #[test]
    fn route_is_deterministic_and_key_typed() {
        let r = FibonacciRoute;
        assert_eq!(r.shard(&123u64, 16), r.shard(&123u64, 16));
        // Strings route too (any Hash key).
        assert!(r.shard("hello", 4) < 4);
        assert_eq!(r.shard("hello", 4), r.shard("hello", 4));
    }

    #[test]
    fn custom_routes_are_pluggable() {
        struct Evens;
        impl ShardRoute<u64> for Evens {
            fn shard(&self, key: &u64, shards: usize) -> usize {
                (*key as usize) & (shards - 1)
            }
        }
        assert_eq!(Evens.shard(&10, 4), 2);
        assert_eq!(Evens.shard(&7, 4), 3);
    }

    #[test]
    fn uniform_u64_split_points_are_even_and_sorted() {
        let space = UniformU64 { lo: 0, hi: 1023 };
        for shards in [1usize, 2, 4, 8] {
            let splits = space.split_points(shards);
            assert_eq!(splits.len(), shards - 1);
            assert!(splits.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(space.split_points(4), vec![256, 512, 768]);
        // Offset universe.
        let space = UniformU64 { lo: 100, hi: 199 };
        assert_eq!(space.split_points(2), vec![150]);
        // Full domain must not overflow.
        let space = UniformU64 {
            lo: 0,
            hi: u64::MAX,
        };
        assert_eq!(space.split_points(2), vec![1u64 << 63]);
    }

    #[test]
    fn range_route_is_monotone_and_in_range() {
        let route = RangeRoute::even(&UniformU64 { lo: 0, hi: 4095 }, 8);
        let mut prev = 0usize;
        for k in 0u64..4_096 {
            let s = route.shard(&k, 8);
            assert!(s < 8);
            assert!(s >= prev, "monotone: key {k} went {prev} -> {s}");
            prev = s;
        }
        assert_eq!(prev, 7, "largest keys land on the last shard");
        // Out-of-universe keys clamp to the edge shards, never panic.
        assert_eq!(route.shard(&u64::MAX, 8), 7);
        assert!(route.is_ordered());
        assert!(!<FibonacciRoute as ShardRoute<u64>>::is_ordered(
            &FibonacciRoute
        ));
    }

    #[test]
    fn range_route_interval_boundaries() {
        let route = RangeRoute::from_splits(vec![10u64, 20, 30]);
        assert_eq!(route.shard(&9, 4), 0);
        assert_eq!(route.shard(&10, 4), 1, "split point belongs to upper shard");
        assert_eq!(route.shard(&19, 4), 1);
        assert_eq!(route.shard(&20, 4), 2);
        assert_eq!(route.shard(&30, 4), 3);
        assert_eq!(route.shard(&1_000, 4), 3);
        // Fewer shards than the table implies: cap, don't overflow.
        assert_eq!(route.shard(&1_000, 2), 1);
        assert_eq!(route.splits(), &[10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn range_route_rejects_unsorted_splits() {
        let _ = RangeRoute::from_splits(vec![10u64, 10, 30]);
    }

    #[test]
    fn covering_shards_narrows_to_overlap() {
        let route = RangeRoute::from_splits(vec![10u64, 20, 30]);
        let all = route.covering_shards(Bound::Unbounded, Bound::Unbounded, 4);
        assert_eq!(all, 0..4);
        let mid = route.covering_shards(Bound::Included(&12), Bound::Excluded(&25), 4);
        assert_eq!(mid, 1..3);
        let one = route.covering_shards(Bound::Included(&12), Bound::Included(&15), 4);
        assert_eq!(one, 1..2);
        let tail = route.covering_shards(Bound::Excluded(&35), Bound::Unbounded, 4);
        assert_eq!(tail, 3..4);
        // Inverted bounds: empty.
        let inv = route.covering_shards(Bound::Included(&35), Bound::Excluded(&5), 4);
        assert!(inv.is_empty(), "{inv:?}");
        // Hash routes can never narrow.
        let hash_all = <FibonacciRoute as ShardRoute<u64>>::covering_shards(
            &FibonacciRoute,
            Bound::Included(&12),
            Bound::Excluded(&25),
            4,
        );
        assert_eq!(hash_all, 0..4);
    }

    #[test]
    fn covering_shards_never_drops_an_owning_shard() {
        // Exhaustive cross-check on a small universe: every key a route
        // sends to some shard must have that shard inside the covering
        // range of any bounds that include the key.
        let route = RangeRoute::even(&UniformU64 { lo: 0, hi: 63 }, 4);
        for lo in 0u64..64 {
            for hi in lo..64 {
                let cover = route.covering_shards(Bound::Included(&lo), Bound::Included(&hi), 4);
                for k in lo..=hi {
                    let s = route.shard(&k, 4);
                    assert!(
                        cover.contains(&s),
                        "key {k} in [{lo},{hi}] owned by {s}, cover {cover:?}"
                    );
                }
            }
        }
    }
}
