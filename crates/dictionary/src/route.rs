//! Key → shard routing for horizontally partitioned dictionaries.
//!
//! A sharded frontend (e.g. `nbbst-sharded`'s `ShardedNbBst`) splits the
//! key space over a power-of-two array of independent dictionaries. The
//! [`ShardRoute`] trait is the pluggable splitter: given a key and the
//! shard count it names the one shard that owns the key. Routing must be
//! **pure** — the same key always maps to the same shard for the lifetime
//! of the map — which is what lets per-key operations stay linearizable
//! across the composition (every operation touches exactly one
//! linearizable shard).
//!
//! [`FibonacciRoute`] is the default: an FNV-1a hash of the key followed
//! by a Fibonacci (golden-ratio) multiply, taking the *top* bits. The
//! multiply diffuses low-entropy keys (sequential integers, aligned
//! pointers) across shards, and taking high bits keeps the route stable
//! in distribution when the shard count changes by powers of two.
//! Alternative routes — range partitioning for shard-local ordered scans,
//! locality-preserving prefixes — only need a `ShardRoute` impl.

use std::hash::{Hash, Hasher};

/// Maps keys to shards for a horizontally partitioned dictionary.
///
/// `shards` is always a power of two (sharded frontends round up), and
/// implementations must return a value in `0..shards` and be *pure*: the
/// route for a key may depend only on the key and the shard count, never
/// on mutable state, so that every operation on a key is served by the
/// same underlying dictionary.
///
/// # Examples
///
/// A route that pins every key to one shard (adversarial tests use this
/// to drive maximal contention through a sharded map):
///
/// ```
/// use nbbst_dictionary::ShardRoute;
///
/// struct OneShard;
/// impl<K> ShardRoute<K> for OneShard {
///     fn shard(&self, _key: &K, _shards: usize) -> usize {
///         0
///     }
/// }
/// assert_eq!(OneShard.shard(&42u64, 8), 0);
/// ```
pub trait ShardRoute<K: ?Sized>: Send + Sync {
    /// The index of the shard owning `key`, in `0..shards`.
    ///
    /// `shards` is a power of two.
    fn shard(&self, key: &K, shards: usize) -> usize;
}

/// FNV-1a, the workspace's dependency-free [`Hasher`]: cheap (one
/// multiply per byte), deterministic across runs and platforms.
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// The default splitter: FNV-1a over the key's [`Hash`] bytes, mixed by a
/// Fibonacci multiply, routed by the **top** `log2(shards)` bits.
///
/// The golden-ratio constant `2^64 / φ` spreads consecutive and
/// low-entropy hashes maximally apart (Knuth's multiplicative hashing),
/// so sequential integer keys — the common benchmark workload, and the
/// worst case for naive `hash % shards` routing on power-of-two counts —
/// distribute evenly.
///
/// # Examples
///
/// ```
/// use nbbst_dictionary::{FibonacciRoute, ShardRoute};
///
/// let route = FibonacciRoute;
/// for k in 0u64..1000 {
///     assert!(route.shard(&k, 8) < 8);
///     // Pure: the same key always lands on the same shard.
///     assert_eq!(route.shard(&k, 8), route.shard(&k, 8));
/// }
/// // One shard short-circuits.
/// assert_eq!(route.shard(&7u64, 1), 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FibonacciRoute;

/// `2^64 / φ`, odd — Knuth's multiplicative-hash constant.
const PHI64: u64 = 0x9E37_79B9_7F4A_7C15;

impl<K: Hash + ?Sized> ShardRoute<K> for FibonacciRoute {
    fn shard(&self, key: &K, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two(), "shard counts are powers of two");
        if shards <= 1 {
            return 0;
        }
        let mut h = Fnv1a::default();
        key.hash(&mut h);
        let mixed = h.finish().wrapping_mul(PHI64);
        // Top bits: the multiply pushes entropy upward, and a 64-bit
        // shift (shards == 1) is already excluded above.
        (mixed >> (64 - shards.trailing_zeros())) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_stay_in_range_for_every_pow2() {
        let r = FibonacciRoute;
        for shards in [1usize, 2, 4, 8, 64, 1024] {
            for k in 0u64..4_096 {
                assert!(r.shard(&k, shards) < shards, "key {k} shards {shards}");
            }
        }
    }

    #[test]
    fn sequential_keys_spread_evenly() {
        // The motivating case: benchmark keys are 0..n. A naive
        // `key % shards` would be fine here, but `hash-top-bits` without
        // the Fibonacci mix would clump; assert real balance.
        let r = FibonacciRoute;
        let shards = 8usize;
        let mut counts = vec![0usize; shards];
        let n = 8_000u64;
        for k in 0..n {
            counts[r.shard(&k, shards)] += 1;
        }
        let ideal = n as usize / shards;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 2 && c < ideal * 2,
                "shard {s} got {c} of {n} keys (ideal {ideal}): {counts:?}"
            );
        }
    }

    #[test]
    fn route_is_deterministic_and_key_typed() {
        let r = FibonacciRoute;
        assert_eq!(r.shard(&123u64, 16), r.shard(&123u64, 16));
        // Strings route too (any Hash key).
        assert!(r.shard("hello", 4) < 4);
        assert_eq!(r.shard("hello", 4), r.shard("hello", 4));
    }

    #[test]
    fn custom_routes_are_pluggable() {
        struct Evens;
        impl ShardRoute<u64> for Evens {
            fn shard(&self, key: &u64, shards: usize) -> usize {
                (*key as usize) & (shards - 1)
            }
        }
        assert_eq!(Evens.shard(&10, 4), 2);
        assert_eq!(Evens.shard(&7, 4), 3);
    }
}
