//! # nbbst-sharded — horizontal partitioning over the EFRB tree
//!
//! A single EFRB tree ([`NbBst`]) serializes nothing, but under
//! write-heavy traffic its throughput ceiling is *contention*: every
//! update must flag the parent (and for deletes, the grandparent) with a
//! CAS, and near the root those words are shared by most of the key
//! space. The literature shrinks the contention window per update
//! (Chatterjee et al.) or fans keys across wider nodes (ELB-trees); the
//! cheapest composable route to the same end is **horizontal**:
//! [`ShardedNbBst`] partitions the key space across a power-of-two array
//! of independent EFRB trees, so update CASes on different shards can
//! never contend, while each shard keeps the paper's lock-freedom and
//! linearizability untouched.
//!
//! ## Why the composition stays linearizable
//!
//! Routing is *pure* (see [`ShardRoute`]): a key maps to exactly one
//! shard for the lifetime of the map. Every dictionary operation touches
//! exactly one key, hence exactly one shard, and linearizability is a
//! **local** property (Herlihy & Wing, Theorem: a history is linearizable
//! iff its per-object subhistories are) — so the composition of
//! linearizable shards under pure per-key routing is linearizable. This
//! is also locked empirically by `tests/linearizability.rs`, including an
//! adversarial route that funnels every key through one shard.
//!
//! ## One reclamation domain
//!
//! All shards clone a single [`Collector`], so retirements from every
//! shard land in one evictable-bag registry (DESIGN.md §10): a thread
//! pinned while operating on shard 3 steals and frees garbage a parked
//! thread published while updating shard 5, and teardown of the whole
//! map drains everything when the last collector clone drops. Sharding
//! therefore adds **no** new stranded-garbage scenarios over the single
//! tree.
//!
//! ## What `size` means here
//!
//! [`ShardedNbBst::len_slow`] (and `quiescent_len`) sums per-shard
//! counts taken one shard at a time — a *non-atomic snapshot*. See the
//! method docs for the exact guarantee.
//!
//! ```
//! use nbbst_sharded::ShardedNbBst;
//! use nbbst_dictionary::ConcurrentMap;
//!
//! let map: ShardedNbBst<u64, &str> = ShardedNbBst::with_shards(8);
//! assert_eq!(map.shard_count(), 8);
//! assert!(map.insert(7, "seven"));
//! assert!(!map.insert(7, "SEVEN")); // duplicates rejected, per the paper
//! assert_eq!(map.get(&7), Some("seven"));
//! assert!(map.remove(&7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use nbbst_core::{NbBst, StatsSnapshot};
use nbbst_dictionary::{ConcurrentMap, FibonacciRoute, ShardRoute};
use nbbst_reclaim::Collector;
use std::fmt;
use std::hash::Hash;

/// A dictionary sharded over independent EFRB trees.
///
/// Keys are split across `shard_count()` (a power of two) trees by a
/// pluggable [`ShardRoute`]; the default [`FibonacciRoute`] hash-mixes
/// keys so even adversarially sequential key streams spread evenly. All
/// shards share one reclamation [`Collector`].
///
/// The type implements [`ConcurrentMap`] end to end, so the workspace's
/// harness, benches, and linearizability checker drive it unchanged.
///
/// # Examples
///
/// Concurrent use — shards remove the root-CAS contention ceiling for
/// write-heavy mixes:
///
/// ```
/// use nbbst_sharded::ShardedNbBst;
/// use nbbst_dictionary::ConcurrentMap;
///
/// let map: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(4);
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let map = &map;
///         s.spawn(move || {
///             for i in 0..100 {
///                 map.insert(t * 100 + i, i);
///             }
///         });
///     }
/// });
/// assert_eq!(map.quiescent_len(), 400);
/// ```
pub struct ShardedNbBst<K, V, R = FibonacciRoute> {
    /// Declared before `collector` so shards (and their collector clones)
    /// drop first; the struct's own clone then drops last among fields.
    shards: Box<[NbBst<K, V>]>,
    /// `shard_count() - 1`; kept for the `Debug` impl and cheap asserts
    /// (routes receive the count, not the mask).
    mask: usize,
    route: R,
    collector: Collector,
}

/// The default shard count: `next_pow2(4 × available_parallelism)`.
///
/// Four shards per hardware thread keeps the probability that two
/// concurrent updates collide on one shard low (birthday bound) without
/// inflating per-shard fixed costs; rounding to a power of two lets
/// routes use shifts/masks.
pub fn default_shard_count() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (4 * hw).next_power_of_two()
}

impl<K, V> ShardedNbBst<K, V, FibonacciRoute>
where
    K: Ord + Clone + Hash,
    V: Clone,
{
    /// Creates a map with [`default_shard_count`] shards and the default
    /// [`FibonacciRoute`] splitter.
    pub fn new() -> Self {
        Self::with_shards(default_shard_count())
    }

    /// Creates a map with `shards` shards (rounded up to a power of two,
    /// minimum 1) and the default route.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_route_and_shards(FibonacciRoute, shards)
    }

    /// Like [`ShardedNbBst::new`], with Figure-4 counters attached to
    /// every shard (see [`ShardedNbBst::stats`]).
    pub fn with_stats() -> Self {
        Self::with_stats_and_shards(default_shard_count())
    }

    /// Like [`ShardedNbBst::with_shards`], with Figure-4 counters
    /// attached to every shard.
    pub fn with_stats_and_shards(shards: usize) -> Self {
        Self::with_stats_route_and_shards(FibonacciRoute, shards)
    }
}

impl<K, V, R> ShardedNbBst<K, V, R>
where
    K: Ord + Clone,
    V: Clone,
    R: ShardRoute<K>,
{
    /// Creates a map with a custom [`ShardRoute`] and `shards` shards
    /// (rounded up to a power of two, minimum 1).
    pub fn with_route_and_shards(route: R, shards: usize) -> Self {
        Self::build(route, shards, false)
    }

    /// [`ShardedNbBst::with_route_and_shards`] with Figure-4 counters
    /// attached to every shard.
    pub fn with_stats_route_and_shards(route: R, shards: usize) -> Self {
        Self::build(route, shards, true)
    }

    fn build(route: R, shards: usize, stats: bool) -> Self {
        let n = shards.max(1).next_power_of_two();
        let collector = Collector::new();
        let shards: Box<[NbBst<K, V>]> = (0..n)
            .map(|_| {
                if stats {
                    NbBst::with_stats_and_collector(collector.clone())
                } else {
                    NbBst::with_collector(collector.clone())
                }
            })
            .collect();
        ShardedNbBst {
            shards,
            mask: n - 1,
            route,
            collector,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The index of the shard that owns `key`.
    pub fn shard_of(&self, key: &K) -> usize {
        let s = self.route.shard(key, self.shards.len());
        debug_assert!(s <= self.mask, "route returned out-of-range shard {s}");
        s & self.mask
    }

    /// The per-shard trees, in shard order (for tests and experiments;
    /// keys must still be routed via [`ShardedNbBst::shard_of`]).
    pub fn shards(&self) -> &[NbBst<K, V>] {
        &self.shards
    }

    /// The reclamation domain shared by every shard.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    #[inline]
    fn shard_for(&self, key: &K) -> &NbBst<K, V> {
        &self.shards[self.shard_of(key)]
    }

    /// Adds `key` with `value`; on duplicate, returns ownership of both
    /// (mirrors [`NbBst::insert_entry`]).
    ///
    /// # Errors
    ///
    /// `Err((key, value))` if the key was already present.
    pub fn insert_entry(&self, key: K, value: V) -> Result<(), (K, V)> {
        self.shard_for(&key).insert_entry(key, value)
    }

    /// Removes `key`; returns `true` iff it was present.
    pub fn remove_key(&self, key: &K) -> bool {
        self.shard_for(key).remove_key(key)
    }

    /// Removes `key`, returning a clone of its value if it was present.
    pub fn remove_entry(&self, key: &K) -> Option<V> {
        self.shard_for(key).remove_entry(key)
    }

    /// `true` iff `key` is in the dictionary (the paper's `Find`, routed).
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_for(key).contains_key(key)
    }

    /// Like [`ShardedNbBst::contains_key`], returning a clone of the
    /// stored value.
    pub fn get_cloned(&self, key: &K) -> Option<V> {
        self.shard_for(key).get_cloned(key)
    }

    /// Total key count, summed shard by shard — a **non-atomic
    /// snapshot**.
    ///
    /// Each shard is counted at a different instant, so under concurrent
    /// updates the sum may correspond to no single point in time: an
    /// operation that moved the count on an already-counted shard while a
    /// later shard is being scanned is half-visible. The value is exact
    /// at quiescence (no update in flight), which is the only state the
    /// harness's validators read it in; treat it as an estimate
    /// otherwise. Keys never migrate between shards, so the error is
    /// bounded by the number of updates in flight during the scan.
    pub fn len_slow(&self) -> usize {
        self.shards.iter().map(NbBst::len_slow).sum()
    }

    /// Verifies every shard's BST + EFRB invariants (quiescent, for
    /// tests).
    ///
    /// # Errors
    ///
    /// Reports the first violating shard.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, shard) in self.shards.iter().enumerate() {
            shard
                .check_invariants()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }

    /// Merged Figure-4 counters over all shards, if the map was built
    /// with stats (see [`ShardedNbBst::with_stats`]).
    ///
    /// The merge is a field-wise sum ([`StatsSnapshot::merge`]); because
    /// every `check_figure4` identity is linear, identities that hold on
    /// each shard at quiescence hold on the merged snapshot too — locked
    /// by this crate's tests.
    pub fn stats(&self) -> Option<StatsSnapshot> {
        self.shard_stats().map(StatsSnapshot::merged)
    }

    /// Per-shard snapshots in shard order, if built with stats (for
    /// imbalance diagnostics: compare per-shard `searches`/`inserts`).
    pub fn shard_stats(&self) -> Option<Vec<StatsSnapshot>> {
        self.shards.iter().map(NbBst::stats).collect()
    }
}

impl<K, V> Default for ShardedNbBst<K, V, FibonacciRoute>
where
    K: Ord + Clone + Hash,
    V: Clone,
{
    fn default() -> Self {
        ShardedNbBst::new()
    }
}

impl<K, V, R> ConcurrentMap<K, V> for ShardedNbBst<K, V, R>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    R: ShardRoute<K>,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_entry(key, value).is_ok()
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_key(key)
    }

    fn contains(&self, key: &K) -> bool {
        self.contains_key(key)
    }

    fn get(&self, key: &K) -> Option<V> {
        self.get_cloned(key)
    }

    fn quiescent_len(&self) -> usize {
        self.len_slow()
    }
}

impl<K, V, R> fmt::Debug for ShardedNbBst<K, V, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedNbBst")
            .field("shards", &self.shards.len())
            .field("mask", &self.mask)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbbst_dictionary::SeqMap;
    use std::collections::BTreeMap;

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        for (requested, expect) in [(0usize, 1usize), (1, 1), (2, 2), (3, 4), (5, 8), (8, 8)] {
            let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(requested);
            assert_eq!(m.shard_count(), expect, "requested {requested}");
        }
        let d: ShardedNbBst<u64, u64> = ShardedNbBst::new();
        assert_eq!(d.shard_count(), default_shard_count());
        assert!(d.shard_count().is_power_of_two());
    }

    #[test]
    fn roundtrip_and_duplicate_semantics() {
        let m: ShardedNbBst<u64, String> = ShardedNbBst::with_shards(8);
        assert!(m.insert_entry(9, "nine".into()).is_ok());
        let (k, v) = m.insert_entry(9, "neuf".into()).unwrap_err();
        assert_eq!((k, v.as_str()), (9, "neuf"));
        assert_eq!(m.get_cloned(&9), Some("nine".to_string()));
        assert_eq!(m.remove_entry(&9), Some("nine".to_string()));
        assert!(!m.remove_key(&9));
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn every_shard_shares_one_collector() {
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(8);
        for s in m.shards() {
            assert!(s.collector().ptr_eq(m.collector()));
        }
        // And a fresh map gets a fresh domain.
        let other: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(2);
        assert!(!other.collector().ptr_eq(m.collector()));
    }

    #[test]
    fn keys_land_on_their_routed_shard_only() {
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(8);
        for k in 0..256u64 {
            m.insert_entry(k, k).unwrap();
        }
        let mut sum = 0;
        for (i, shard) in m.shards().iter().enumerate() {
            for k in shard.keys_snapshot() {
                assert_eq!(m.shard_of(&k), i, "key {k} on wrong shard");
            }
            sum += shard.len_slow();
        }
        assert_eq!(sum, 256);
        assert_eq!(m.len_slow(), 256);
    }

    #[test]
    fn matches_sequential_model_at_every_shard_count() {
        for shards in [1usize, 2, 8] {
            let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(shards);
            let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
            let script: Vec<(u8, u64)> = (0..600)
                .map(|i| ((i % 3) as u8, (i * 37 + 11) % 96))
                .collect();
            for (op, k) in script {
                match op {
                    0 => assert_eq!(
                        m.insert_entry(k, k).is_ok(),
                        SeqMap::insert(&mut oracle, k, k),
                        "insert {k} at {shards} shards"
                    ),
                    1 => assert_eq!(
                        m.remove_key(&k),
                        SeqMap::remove(&mut oracle, &k),
                        "remove {k} at {shards} shards"
                    ),
                    _ => assert_eq!(
                        m.contains_key(&k),
                        SeqMap::contains(&oracle, &k),
                        "find {k} at {shards} shards"
                    ),
                }
            }
            assert_eq!(m.len_slow(), oracle.len());
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn concurrent_mixed_workload_merged_figure4_holds() {
        // The acceptance check: merged per-shard Figure-4 identities hold
        // at quiescence after a genuinely multi-threaded mixed run.
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_stats_and_shards(4);
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let m = &m;
                s.spawn(move || {
                    let mut x = tid + 1;
                    for _ in 0..3_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 128;
                        match x % 3 {
                            0 => {
                                m.insert(k, k);
                            }
                            1 => {
                                m.remove(&k);
                            }
                            _ => {
                                m.contains(&k);
                            }
                        }
                    }
                });
            }
        });
        m.check_invariants().unwrap();
        // Per shard first (stronger), then merged (what callers see).
        for (i, s) in m.shard_stats().unwrap().iter().enumerate() {
            s.check_figure4()
                .unwrap_or_else(|e| panic!("shard {i}: {e}"));
        }
        let merged = m.stats().unwrap();
        merged.check_figure4().unwrap();
        assert!(merged.inserts > 0 && merged.deletes > 0 && merged.finds > 0);
    }

    #[test]
    fn adversarial_single_shard_route_still_correct() {
        struct OneShard;
        impl ShardRoute<u64> for OneShard {
            fn shard(&self, _key: &u64, _shards: usize) -> usize {
                0
            }
        }
        let m: ShardedNbBst<u64, u64, OneShard> = ShardedNbBst::with_route_and_shards(OneShard, 8);
        for k in 0..100u64 {
            m.insert_entry(k, k).unwrap();
        }
        assert_eq!(m.shards()[0].len_slow(), 100);
        assert!(m.shards()[1..].iter().all(|s| s.len_slow() == 0));
        assert_eq!(m.len_slow(), 100);
    }

    #[test]
    fn values_not_overwritten_under_contention() {
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(2);
        m.insert(1, 100);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        m.insert(1, 999);
                    }
                });
            }
        });
        assert_eq!(m.get_cloned(&1), Some(100));
    }

    #[test]
    fn drop_reclaims_across_shards() {
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(4);
        for k in 0..1_000u64 {
            m.insert(k, k);
        }
        for k in (0..1_000u64).step_by(2) {
            m.remove(&k);
        }
        let collector = m.collector().clone();
        drop(m);
        assert!(collector.try_drain(1_000), "{:?}", collector.stats());
        let s = collector.stats();
        assert_eq!(s.retired, s.freed, "{s:?}");
        assert_eq!(s.deferred_bytes, 0, "{s:?}");
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedNbBst<u64, u64>>();
    }
}
