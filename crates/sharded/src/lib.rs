//! # nbbst-sharded — horizontal partitioning over the EFRB tree
//!
//! A single EFRB tree ([`NbBst`]) serializes nothing, but under
//! write-heavy traffic its throughput ceiling is *contention*: every
//! update must flag the parent (and for deletes, the grandparent) with a
//! CAS, and near the root those words are shared by most of the key
//! space. The literature shrinks the contention window per update
//! (Chatterjee et al.) or fans keys across wider nodes (ELB-trees); the
//! cheapest composable route to the same end is **horizontal**:
//! [`ShardedNbBst`] partitions the key space across a power-of-two array
//! of independent EFRB trees, so update CASes on different shards can
//! never contend, while each shard keeps the paper's lock-freedom and
//! linearizability untouched.
//!
//! ## Why the composition stays linearizable
//!
//! Routing is *pure* (see [`ShardRoute`]): a key maps to exactly one
//! shard for the lifetime of the map. Every dictionary operation touches
//! exactly one key, hence exactly one shard, and linearizability is a
//! **local** property (Herlihy & Wing, Theorem: a history is linearizable
//! iff its per-object subhistories are) — so the composition of
//! linearizable shards under pure per-key routing is linearizable. This
//! is also locked empirically by `tests/linearizability.rs`, including an
//! adversarial route that funnels every key through one shard.
//!
//! ## One reclamation domain
//!
//! All shards clone a single [`Collector`], so retirements from every
//! shard land in one evictable-bag registry (DESIGN.md §10): a thread
//! pinned while operating on shard 3 steals and frees garbage a parked
//! thread published while updating shard 5, and teardown of the whole
//! map drains everything when the last collector clone drops. Sharding
//! therefore adds **no** new stranded-garbage scenarios over the single
//! tree.
//!
//! ## Ordered reads across shards
//!
//! Per-shard trees are ordered, so the frontend offers global ordered
//! reads — [`ShardedNbBst::range_snapshot`], [`ShardedNbBst::min_key`],
//! [`ShardedNbBst::max_key`], [`ShardedNbBst::for_each_entry`] — whose
//! cost depends on the route. Under an **ordered** route
//! (`RangeRoute`; see [`ShardRoute::is_ordered`]) each shard owns a
//! contiguous key interval, so a range query visits only the shards the
//! route says can overlap the bounds and *concatenates* their snapshots;
//! under a hash route every shard may own keys anywhere, so the frontend
//! takes all per-shard snapshots and **k-way-merges** them. Both are
//! weakly consistent (exact at quiescence), like the per-shard
//! snapshots they are built from. [`ShardedNbBst::shard_load_report`]
//! surfaces the trade-off at runtime: ordered routing under a skewed
//! key distribution concentrates traffic, and the report names the hot
//! shard.
//!
//! ## What `size` means here
//!
//! [`ShardedNbBst::len_slow`] (and `quiescent_len`) sums per-shard
//! counts taken one shard at a time — a *non-atomic snapshot*. See the
//! method docs for the exact guarantee.
//!
//! ```
//! use nbbst_sharded::ShardedNbBst;
//! use nbbst_dictionary::ConcurrentMap;
//!
//! let map: ShardedNbBst<u64, &str> = ShardedNbBst::with_shards(8);
//! assert_eq!(map.shard_count(), 8);
//! assert!(map.insert(7, "seven"));
//! assert!(!map.insert(7, "SEVEN")); // duplicates rejected, per the paper
//! assert_eq!(map.get(&7), Some("seven"));
//! assert!(map.remove(&7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use nbbst_core::{NbBst, StatsSnapshot};
use nbbst_dictionary::{ConcurrentMap, FibonacciRoute, ShardRoute};
use nbbst_reclaim::Collector;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::hash::Hash;
use std::ops::Bound;

/// A dictionary sharded over independent EFRB trees.
///
/// Keys are split across `shard_count()` (a power of two) trees by a
/// pluggable [`ShardRoute`]; the default [`FibonacciRoute`] hash-mixes
/// keys so even adversarially sequential key streams spread evenly. All
/// shards share one reclamation [`Collector`].
///
/// The type implements [`ConcurrentMap`] end to end, so the workspace's
/// harness, benches, and linearizability checker drive it unchanged.
///
/// # Examples
///
/// Concurrent use — shards remove the root-CAS contention ceiling for
/// write-heavy mixes:
///
/// ```
/// use nbbst_sharded::ShardedNbBst;
/// use nbbst_dictionary::ConcurrentMap;
///
/// let map: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(4);
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let map = &map;
///         s.spawn(move || {
///             for i in 0..100 {
///                 map.insert(t * 100 + i, i);
///             }
///         });
///     }
/// });
/// assert_eq!(map.quiescent_len(), 400);
/// ```
pub struct ShardedNbBst<K, V, R = FibonacciRoute> {
    /// Declared before `collector` so shards (and their collector clones)
    /// drop first; the struct's own clone then drops last among fields.
    shards: Box<[NbBst<K, V>]>,
    /// `shard_count() - 1`; kept for the `Debug` impl and cheap asserts
    /// (routes receive the count, not the mask).
    mask: usize,
    route: R,
    collector: Collector,
}

/// The default shard count: `next_pow2(4 × available_parallelism)`.
///
/// Four shards per hardware thread keeps the probability that two
/// concurrent updates collide on one shard low (birthday bound) without
/// inflating per-shard fixed costs; rounding to a power of two lets
/// routes use shifts/masks.
pub fn default_shard_count() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (4 * hw).next_power_of_two()
}

impl<K, V> ShardedNbBst<K, V, FibonacciRoute>
where
    K: Ord + Clone + Hash,
    V: Clone,
{
    /// Creates a map with [`default_shard_count`] shards and the default
    /// [`FibonacciRoute`] splitter.
    pub fn new() -> Self {
        Self::with_shards(default_shard_count())
    }

    /// Creates a map with `shards` shards (rounded up to a power of two,
    /// minimum 1) and the default route.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_route_and_shards(FibonacciRoute, shards)
    }

    /// Like [`ShardedNbBst::new`], with Figure-4 counters attached to
    /// every shard (see [`ShardedNbBst::stats`]).
    pub fn with_stats() -> Self {
        Self::with_stats_and_shards(default_shard_count())
    }

    /// Like [`ShardedNbBst::with_shards`], with Figure-4 counters
    /// attached to every shard.
    pub fn with_stats_and_shards(shards: usize) -> Self {
        Self::with_stats_route_and_shards(FibonacciRoute, shards)
    }
}

impl<K, V, R> ShardedNbBst<K, V, R>
where
    K: Ord + Clone,
    V: Clone,
    R: ShardRoute<K>,
{
    /// Creates a map with a custom [`ShardRoute`] and `shards` shards
    /// (rounded up to a power of two, minimum 1).
    pub fn with_route_and_shards(route: R, shards: usize) -> Self {
        Self::build(route, shards, false)
    }

    /// [`ShardedNbBst::with_route_and_shards`] with Figure-4 counters
    /// attached to every shard.
    pub fn with_stats_route_and_shards(route: R, shards: usize) -> Self {
        Self::build(route, shards, true)
    }

    fn build(route: R, shards: usize, stats: bool) -> Self {
        let n = shards.max(1).next_power_of_two();
        let collector = Collector::new();
        let shards: Box<[NbBst<K, V>]> = (0..n)
            .map(|_| {
                if stats {
                    NbBst::with_stats_and_collector(collector.clone())
                } else {
                    NbBst::with_collector(collector.clone())
                }
            })
            .collect();
        ShardedNbBst {
            shards,
            mask: n - 1,
            route,
            collector,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The index of the shard that owns `key`.
    pub fn shard_of(&self, key: &K) -> usize {
        let s = self.route.shard(key, self.shards.len());
        debug_assert!(s <= self.mask, "route returned out-of-range shard {s}");
        s & self.mask
    }

    /// The per-shard trees, in shard order (for tests and experiments;
    /// keys must still be routed via [`ShardedNbBst::shard_of`]).
    pub fn shards(&self) -> &[NbBst<K, V>] {
        &self.shards
    }

    /// The reclamation domain shared by every shard.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    #[inline]
    fn shard_for(&self, key: &K) -> &NbBst<K, V> {
        &self.shards[self.shard_of(key)]
    }

    /// Adds `key` with `value`; on duplicate, returns ownership of both
    /// (mirrors [`NbBst::insert_entry`]).
    ///
    /// # Errors
    ///
    /// `Err((key, value))` if the key was already present.
    pub fn insert_entry(&self, key: K, value: V) -> Result<(), (K, V)> {
        self.shard_for(&key).insert_entry(key, value)
    }

    /// Removes `key`; returns `true` iff it was present.
    pub fn remove_key(&self, key: &K) -> bool {
        self.shard_for(key).remove_key(key)
    }

    /// Removes `key`, returning a clone of its value if it was present.
    pub fn remove_entry(&self, key: &K) -> Option<V> {
        self.shard_for(key).remove_entry(key)
    }

    /// `true` iff `key` is in the dictionary (the paper's `Find`, routed).
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_for(key).contains_key(key)
    }

    /// Like [`ShardedNbBst::contains_key`], returning a clone of the
    /// stored value.
    pub fn get_cloned(&self, key: &K) -> Option<V> {
        self.shard_for(key).get_cloned(key)
    }

    /// Total key count, summed shard by shard — a **non-atomic
    /// snapshot**.
    ///
    /// Each shard is counted at a different instant, so under concurrent
    /// updates the sum may correspond to no single point in time: an
    /// operation that moved the count on an already-counted shard while a
    /// later shard is being scanned is half-visible. The value is exact
    /// at quiescence (no update in flight), which is the only state the
    /// harness's validators read it in; treat it as an estimate
    /// otherwise. Keys never migrate between shards, so the error is
    /// bounded by the number of updates in flight during the scan.
    pub fn len_slow(&self) -> usize {
        self.shards.iter().map(NbBst::len_slow).sum()
    }

    /// Verifies every shard's BST + EFRB invariants (quiescent, for
    /// tests).
    ///
    /// # Errors
    ///
    /// Reports the first violating shard.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, shard) in self.shards.iter().enumerate() {
            shard
                .check_invariants()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }

    /// Merged Figure-4 counters over all shards, if the map was built
    /// with stats (see [`ShardedNbBst::with_stats`]).
    ///
    /// The merge is a field-wise sum ([`StatsSnapshot::merge`]); because
    /// every `check_figure4` identity is linear, identities that hold on
    /// each shard at quiescence hold on the merged snapshot too — locked
    /// by this crate's tests.
    pub fn stats(&self) -> Option<StatsSnapshot> {
        self.shard_stats().map(StatsSnapshot::merged)
    }

    /// Per-shard snapshots in shard order, if built with stats (for
    /// imbalance diagnostics: compare per-shard `searches`/`inserts`).
    pub fn shard_stats(&self) -> Option<Vec<StatsSnapshot>> {
        self.shards.iter().map(NbBst::stats).collect()
    }

    /// All `(key, value)` clones in `[lo, hi]`-style bounds, globally
    /// sorted by key. Weakly consistent (each shard is snapshotted at
    /// its own instant; exact at quiescence).
    ///
    /// Under an ordered route only the shards whose intervals overlap
    /// the bounds are visited and their snapshots concatenate; under a
    /// hash route every shard is snapshotted and the results are
    /// k-way-merged. Inverted bounds yield an empty vector.
    ///
    /// # Examples
    ///
    /// ```
    /// use nbbst_sharded::ShardedNbBst;
    /// use nbbst_dictionary::{RangeRoute, UniformU64};
    /// use std::ops::Bound;
    ///
    /// let route = RangeRoute::even(&UniformU64 { lo: 0, hi: 99 }, 4);
    /// let m: ShardedNbBst<u64, u64, _> = ShardedNbBst::with_route_and_shards(route, 4);
    /// for k in [5u64, 30, 55, 80] {
    ///     m.insert_entry(k, k).unwrap();
    /// }
    /// let mid = m.range_snapshot(Bound::Included(&30), Bound::Included(&55));
    /// assert_eq!(mid, vec![(30, 30), (55, 55)]);
    /// ```
    pub fn range_snapshot(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)> {
        let n = self.shards.len();
        if self.route.is_ordered() {
            let mut out = Vec::new();
            for s in self.route.covering_shards(lo, hi, n) {
                out.extend(self.shards[s].range_snapshot(lo, hi));
            }
            out
        } else {
            merge_ordered(
                self.shards
                    .iter()
                    .map(|s| s.range_snapshot(lo, hi).into_iter())
                    .collect(),
            )
        }
    }

    /// The smallest key in the whole map (weakly consistent).
    ///
    /// Ordered routes stop at the first non-empty shard; hash routes
    /// take the minimum over every shard's minimum.
    pub fn min_key(&self) -> Option<K> {
        if self.route.is_ordered() {
            self.shards.iter().find_map(NbBst::min_key)
        } else {
            self.shards.iter().filter_map(NbBst::min_key).min()
        }
    }

    /// The largest key in the whole map (weakly consistent).
    ///
    /// Ordered routes stop at the last non-empty shard; hash routes take
    /// the maximum over every shard's maximum.
    pub fn max_key(&self) -> Option<K> {
        if self.route.is_ordered() {
            self.shards.iter().rev().find_map(NbBst::max_key)
        } else {
            self.shards.iter().filter_map(NbBst::max_key).max()
        }
    }

    /// Applies `f` to every `(key, value)` in globally ascending key
    /// order (weakly consistent).
    ///
    /// Under an ordered route this *streams* shard by shard — O(1) extra
    /// memory, no cloning, each shard pinned only while it is being
    /// walked. Under a hash route global order requires materializing
    /// and merging per-shard snapshots first, so entries are cloned and
    /// `f` receives references into the merged buffer.
    pub fn for_each_entry(&self, mut f: impl FnMut(&K, &V)) {
        if self.route.is_ordered() {
            for shard in self.shards.iter() {
                shard.for_each_entry(&mut f);
            }
        } else {
            for (k, v) in self.range_snapshot(Bound::Unbounded, Bound::Unbounded) {
                f(&k, &v);
            }
        }
    }

    /// Per-shard load breakdown for hot-shard detection, if the map was
    /// built with stats (see [`ShardedNbBst::with_stats`]).
    ///
    /// Ordered routes trade balanced load for cheap ordered scans; this
    /// report is how you see the cost. Each [`ShardLoad`] carries the
    /// shard's completed operation count (finds + inserts + deletes from
    /// the Figure-4 counters) and its current key count; the report's
    /// [`ShardLoadReport::imbalance`] is `max / mean` of per-shard ops
    /// (`1.0` = perfectly even), and [`ShardLoadReport::hottest`] names
    /// the busiest shard.
    pub fn shard_load_report(&self) -> Option<ShardLoadReport> {
        let stats = self.shard_stats()?;
        let loads: Vec<ShardLoad> = stats
            .iter()
            .zip(self.shards.iter())
            .enumerate()
            .map(|(shard, (s, tree))| ShardLoad {
                shard,
                ops: s.finds + s.inserts + s.deletes,
                keys: tree.len_slow(),
            })
            .collect();
        Some(ShardLoadReport::new(loads))
    }
}

/// K-way merge of per-shard sorted snapshots into one sorted vector.
///
/// Routing is pure, so no key appears in two shards; ties are broken by
/// shard index anyway to keep the merge total without requiring
/// `V: Ord`.
fn merge_ordered<K: Ord, V>(mut iters: Vec<std::vec::IntoIter<(K, V)>>) -> Vec<(K, V)> {
    struct Entry<K, V> {
        key: K,
        value: V,
        shard: usize,
    }
    impl<K: Ord, V> PartialEq for Entry<K, V> {
        fn eq(&self, other: &Self) -> bool {
            self.key == other.key && self.shard == other.shard
        }
    }
    impl<K: Ord, V> Eq for Entry<K, V> {}
    impl<K: Ord, V> PartialOrd for Entry<K, V> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<K: Ord, V> Ord for Entry<K, V> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want the smallest key.
            other
                .key
                .cmp(&self.key)
                .then_with(|| other.shard.cmp(&self.shard))
        }
    }

    let total: usize = iters.iter().map(|it| it.len()).sum();
    let mut heap = BinaryHeap::with_capacity(iters.len());
    for (shard, it) in iters.iter_mut().enumerate() {
        if let Some((key, value)) = it.next() {
            heap.push(Entry { key, value, shard });
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Entry { key, value, shard }) = heap.pop() {
        out.push((key, value));
        if let Some((key, value)) = iters[shard].next() {
            heap.push(Entry { key, value, shard });
        }
    }
    out
}

/// One shard's slice of the load, as reported by
/// [`ShardedNbBst::shard_load_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Completed dictionary operations (finds + inserts + deletes).
    pub ops: u64,
    /// Keys currently resident (quiescent estimate, like
    /// [`ShardedNbBst::len_slow`]).
    pub keys: usize,
}

/// Per-shard load summary for hot-shard detection.
///
/// # Examples
///
/// ```
/// use nbbst_sharded::ShardedNbBst;
/// use nbbst_dictionary::{RangeRoute, UniformU64};
///
/// // All traffic below key 25 → shard 0 takes everything.
/// let route = RangeRoute::even(&UniformU64 { lo: 0, hi: 99 }, 4);
/// let m: ShardedNbBst<u64, u64, _> = ShardedNbBst::with_stats_route_and_shards(route, 4);
/// for k in 0u64..20 {
///     m.insert_entry(k, k).unwrap();
/// }
/// let report = m.shard_load_report().unwrap();
/// assert_eq!(report.hottest().unwrap().shard, 0);
/// assert!(report.imbalance() > 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShardLoadReport {
    loads: Vec<ShardLoad>,
    total_ops: u64,
}

impl ShardLoadReport {
    fn new(loads: Vec<ShardLoad>) -> Self {
        let total_ops = loads.iter().map(|l| l.ops).sum();
        ShardLoadReport { loads, total_ops }
    }

    /// Per-shard loads in shard order.
    pub fn loads(&self) -> &[ShardLoad] {
        &self.loads
    }

    /// Total completed operations across all shards.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// The shard with the most completed operations (`None` only for a
    /// zero-shard report, which cannot be produced by a real map).
    pub fn hottest(&self) -> Option<&ShardLoad> {
        self.loads.iter().max_by_key(|l| l.ops)
    }

    /// `max / mean` of per-shard operation counts: `1.0` is perfectly
    /// balanced, `shard_count` means one shard absorbed everything. `1.0`
    /// when no operations have completed.
    pub fn imbalance(&self) -> f64 {
        if self.total_ops == 0 || self.loads.is_empty() {
            return 1.0;
        }
        let mean = self.total_ops as f64 / self.loads.len() as f64;
        let max = self.hottest().map(|l| l.ops).unwrap_or(0) as f64;
        max / mean
    }

    /// `true` iff [`ShardLoadReport::imbalance`] is at most `tolerance`
    /// (e.g. `2.0` = no shard sees more than twice the mean load).
    pub fn is_balanced(&self, tolerance: f64) -> bool {
        self.imbalance() <= tolerance
    }
}

impl fmt::Display for ShardLoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "shard load: {} ops over {} shards (imbalance {:.2})",
            self.total_ops,
            self.loads.len(),
            self.imbalance()
        )?;
        for l in &self.loads {
            let share = if self.total_ops == 0 {
                0.0
            } else {
                100.0 * l.ops as f64 / self.total_ops as f64
            };
            writeln!(
                f,
                "  shard {:>3}: {:>10} ops ({share:5.1}%), {:>8} keys",
                l.shard, l.ops, l.keys
            )?;
        }
        Ok(())
    }
}

impl<K, V> Default for ShardedNbBst<K, V, FibonacciRoute>
where
    K: Ord + Clone + Hash,
    V: Clone,
{
    fn default() -> Self {
        ShardedNbBst::new()
    }
}

impl<K, V, R> ConcurrentMap<K, V> for ShardedNbBst<K, V, R>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    R: ShardRoute<K>,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_entry(key, value).is_ok()
    }

    fn remove(&self, key: &K) -> bool {
        self.remove_key(key)
    }

    fn contains(&self, key: &K) -> bool {
        self.contains_key(key)
    }

    fn get(&self, key: &K) -> Option<V> {
        self.get_cloned(key)
    }

    fn quiescent_len(&self) -> usize {
        self.len_slow()
    }
}

impl<K, V, R> fmt::Debug for ShardedNbBst<K, V, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedNbBst")
            .field("shards", &self.shards.len())
            .field("mask", &self.mask)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbbst_dictionary::SeqMap;
    use std::collections::BTreeMap;

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        for (requested, expect) in [(0usize, 1usize), (1, 1), (2, 2), (3, 4), (5, 8), (8, 8)] {
            let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(requested);
            assert_eq!(m.shard_count(), expect, "requested {requested}");
        }
        let d: ShardedNbBst<u64, u64> = ShardedNbBst::new();
        assert_eq!(d.shard_count(), default_shard_count());
        assert!(d.shard_count().is_power_of_two());
    }

    #[test]
    fn roundtrip_and_duplicate_semantics() {
        let m: ShardedNbBst<u64, String> = ShardedNbBst::with_shards(8);
        assert!(m.insert_entry(9, "nine".into()).is_ok());
        let (k, v) = m.insert_entry(9, "neuf".into()).unwrap_err();
        assert_eq!((k, v.as_str()), (9, "neuf"));
        assert_eq!(m.get_cloned(&9), Some("nine".to_string()));
        assert_eq!(m.remove_entry(&9), Some("nine".to_string()));
        assert!(!m.remove_key(&9));
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn every_shard_shares_one_collector() {
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(8);
        for s in m.shards() {
            assert!(s.collector().ptr_eq(m.collector()));
        }
        // And a fresh map gets a fresh domain.
        let other: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(2);
        assert!(!other.collector().ptr_eq(m.collector()));
    }

    #[test]
    fn keys_land_on_their_routed_shard_only() {
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(8);
        for k in 0..256u64 {
            m.insert_entry(k, k).unwrap();
        }
        let mut sum = 0;
        for (i, shard) in m.shards().iter().enumerate() {
            for k in shard.keys_snapshot() {
                assert_eq!(m.shard_of(&k), i, "key {k} on wrong shard");
            }
            sum += shard.len_slow();
        }
        assert_eq!(sum, 256);
        assert_eq!(m.len_slow(), 256);
    }

    #[test]
    fn matches_sequential_model_at_every_shard_count() {
        for shards in [1usize, 2, 8] {
            let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(shards);
            let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
            let script: Vec<(u8, u64)> = (0..600)
                .map(|i| ((i % 3) as u8, (i * 37 + 11) % 96))
                .collect();
            for (op, k) in script {
                match op {
                    0 => assert_eq!(
                        m.insert_entry(k, k).is_ok(),
                        SeqMap::insert(&mut oracle, k, k),
                        "insert {k} at {shards} shards"
                    ),
                    1 => assert_eq!(
                        m.remove_key(&k),
                        SeqMap::remove(&mut oracle, &k),
                        "remove {k} at {shards} shards"
                    ),
                    _ => assert_eq!(
                        m.contains_key(&k),
                        SeqMap::contains(&oracle, &k),
                        "find {k} at {shards} shards"
                    ),
                }
            }
            assert_eq!(m.len_slow(), oracle.len());
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn concurrent_mixed_workload_merged_figure4_holds() {
        // The acceptance check: merged per-shard Figure-4 identities hold
        // at quiescence after a genuinely multi-threaded mixed run.
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_stats_and_shards(4);
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let m = &m;
                s.spawn(move || {
                    let mut x = tid + 1;
                    for _ in 0..3_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 128;
                        match x % 3 {
                            0 => {
                                m.insert(k, k);
                            }
                            1 => {
                                m.remove(&k);
                            }
                            _ => {
                                m.contains(&k);
                            }
                        }
                    }
                });
            }
        });
        m.check_invariants().unwrap();
        // Per shard first (stronger), then merged (what callers see).
        for (i, s) in m.shard_stats().unwrap().iter().enumerate() {
            s.check_figure4()
                .unwrap_or_else(|e| panic!("shard {i}: {e}"));
        }
        let merged = m.stats().unwrap();
        merged.check_figure4().unwrap();
        assert!(merged.inserts > 0 && merged.deletes > 0 && merged.finds > 0);
    }

    #[test]
    fn adversarial_single_shard_route_still_correct() {
        struct OneShard;
        impl ShardRoute<u64> for OneShard {
            fn shard(&self, _key: &u64, _shards: usize) -> usize {
                0
            }
        }
        let m: ShardedNbBst<u64, u64, OneShard> = ShardedNbBst::with_route_and_shards(OneShard, 8);
        for k in 0..100u64 {
            m.insert_entry(k, k).unwrap();
        }
        assert_eq!(m.shards()[0].len_slow(), 100);
        assert!(m.shards()[1..].iter().all(|s| s.len_slow() == 0));
        assert_eq!(m.len_slow(), 100);
    }

    #[test]
    fn values_not_overwritten_under_contention() {
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(2);
        m.insert(1, 100);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        m.insert(1, 999);
                    }
                });
            }
        });
        assert_eq!(m.get_cloned(&1), Some(100));
    }

    #[test]
    fn drop_reclaims_across_shards() {
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(4);
        for k in 0..1_000u64 {
            m.insert(k, k);
        }
        for k in (0..1_000u64).step_by(2) {
            m.remove(&k);
        }
        let collector = m.collector().clone();
        drop(m);
        assert!(collector.try_drain(1_000), "{:?}", collector.stats());
        let s = collector.stats();
        assert_eq!(s.retired, s.freed, "{s:?}");
        assert_eq!(s.deferred_bytes, 0, "{s:?}");
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedNbBst<u64, u64>>();
    }

    use nbbst_dictionary::{RangeRoute, UniformU64};
    use std::ops::Bound;

    fn keyset() -> Vec<u64> {
        // Pseudorandom but deterministic, spanning [0, 96) with gaps.
        let mut x = 7u64;
        let mut ks: Vec<u64> = (0..60)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 96
            })
            .collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }

    fn assert_ordered_reads_match_oracle<R: ShardRoute<u64>>(m: &ShardedNbBst<u64, u64, R>) {
        let keys = keyset();
        let mut oracle = BTreeMap::new();
        for &k in &keys {
            m.insert_entry(k, k * 2).unwrap();
            oracle.insert(k, k * 2);
        }
        assert_eq!(m.min_key(), oracle.keys().next().copied());
        assert_eq!(m.max_key(), oracle.keys().next_back().copied());
        let all = m.range_snapshot(Bound::Unbounded, Bound::Unbounded);
        let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(all, want);
        for (lo, hi) in [(0u64, 96u64), (10, 40), (47, 48), (90, 96)] {
            let got = m.range_snapshot(Bound::Included(&lo), Bound::Excluded(&hi));
            let want: Vec<(u64, u64)> = oracle.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want, "range {lo}..{hi}");
        }
        // Inverted bounds: empty, no panic (BTreeMap::range would panic).
        assert!(m
            .range_snapshot(Bound::Included(&90), Bound::Excluded(&10))
            .is_empty());
        let mut visited = Vec::new();
        m.for_each_entry(|k, v| visited.push((*k, *v)));
        assert_eq!(visited, want_all(&oracle));
    }

    fn want_all(oracle: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
        oracle.iter().map(|(&k, &v)| (k, v)).collect()
    }

    #[test]
    fn ordered_reads_under_hash_route_use_kway_merge() {
        for shards in [1usize, 2, 8] {
            let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(shards);
            assert_ordered_reads_match_oracle(&m);
        }
    }

    #[test]
    fn ordered_reads_under_range_route_concatenate() {
        for shards in [1usize, 2, 8] {
            let route = RangeRoute::even(&UniformU64 { lo: 0, hi: 95 }, shards);
            let m: ShardedNbBst<u64, u64, _> = ShardedNbBst::with_route_and_shards(route, shards);
            assert_ordered_reads_match_oracle(&m);
        }
    }

    #[test]
    fn empty_map_ordered_reads() {
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(4);
        assert_eq!(m.min_key(), None);
        assert_eq!(m.max_key(), None);
        assert!(m
            .range_snapshot(Bound::Unbounded, Bound::Unbounded)
            .is_empty());
        let mut n = 0;
        m.for_each_entry(|_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn range_snapshot_is_safe_during_concurrent_updates() {
        let route = RangeRoute::even(&UniformU64 { lo: 0, hi: 255 }, 4);
        let m: ShardedNbBst<u64, u64, _> = ShardedNbBst::with_route_and_shards(route, 4);
        for k in 0..256u64 {
            m.insert_entry(k, k).unwrap();
        }
        std::thread::scope(|s| {
            let m = &m;
            let writer = s.spawn(move || {
                for i in 0..2_000u64 {
                    let k = (i * 37) % 256;
                    if i % 2 == 0 {
                        m.remove_key(&k);
                    } else {
                        m.insert_entry(k, k).ok();
                    }
                }
            });
            for _ in 0..50 {
                let r = m.range_snapshot(Bound::Included(&64), Bound::Excluded(&192));
                assert!(r.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
                assert!(r.iter().all(|(k, _)| (64..192).contains(k)), "in bounds");
            }
            writer.join().unwrap();
        });
        m.check_invariants().unwrap();
    }

    #[test]
    fn load_report_names_the_hot_shard_under_skew() {
        let route = RangeRoute::even(&UniformU64 { lo: 0, hi: 1023 }, 8);
        let m: ShardedNbBst<u64, u64, _> = ShardedNbBst::with_stats_route_and_shards(route, 8);
        // Skewed traffic: every key lives in shard 2's interval
        // [256, 384).
        for k in 256u64..384 {
            m.insert_entry(k, k).unwrap();
            m.contains_key(&k);
        }
        let report = m.shard_load_report().unwrap();
        assert_eq!(report.loads().len(), 8);
        let hot = report.hottest().unwrap();
        assert_eq!(hot.shard, 2);
        assert_eq!(hot.keys, 128);
        assert_eq!(report.total_ops(), 256);
        assert!(report.imbalance() > 4.0, "{}", report.imbalance());
        assert!(!report.is_balanced(2.0));
        let text = report.to_string();
        assert!(text.contains("shard   2"), "{text}");
    }

    #[test]
    fn load_report_balanced_under_hash_route() {
        let m: ShardedNbBst<u64, u64> = ShardedNbBst::with_stats_and_shards(8);
        for k in 0u64..4_096 {
            m.insert_entry(k, k).unwrap();
        }
        let report = m.shard_load_report().unwrap();
        assert!(report.is_balanced(2.0), "{report}");
        assert_eq!(report.total_ops(), 4_096);
        assert_eq!(report.loads().iter().map(|l| l.keys).sum::<usize>(), 4_096);
        // Maps built without stats have no counters to report.
        let plain: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(8);
        assert!(plain.shard_load_report().is_none());
    }
}
