//! Churn + teardown across the *shared* reclamation domain: writers churn
//! every shard of a [`ShardedNbBst`], park forever, and the whole map is
//! dropped — then a retained [`Collector`] clone (standing in for "any
//! other owner of the domain") proves nothing was stranded.
//!
//! This mirrors `crates/core/tests/churn.rs` but stresses what sharding
//! adds: retirements from N trees land in ONE evictable-bag registry
//! (DESIGN.md §10/§11), so a drain through any clone covers all shards,
//! and dropping the map must leave zero evictable bags and zero deferred
//! bytes behind.

use nbbst_reclaim::Collector;
use nbbst_sharded::ShardedNbBst;
use std::sync::mpsc;
use std::sync::Arc;

const WRITERS: usize = 8;
const KEYS_PER_WRITER: u64 = 1_500;
const SHARDS: usize = 8;

#[test]
fn dropped_sharded_map_leaves_no_evictable_garbage() {
    let map: Arc<ShardedNbBst<u64, u64>> = Arc::new(ShardedNbBst::with_shards(SHARDS));
    // A clone of the shared domain outliving the map: after `drop(map)`
    // the domain must still drain to empty through it.
    let collector: Collector = map.collector().clone();

    let (done_tx, done_rx) = mpsc::channel();
    let mut parks = Vec::new();
    let mut joins = Vec::new();
    for w in 0..WRITERS {
        let map = Arc::clone(&map);
        let done = done_tx.clone();
        let (park_tx, park_rx) = mpsc::channel::<()>();
        parks.push(park_tx);
        joins.push(std::thread::spawn(move || {
            // Stride by WRITERS so each writer's keys hash across shards:
            // the churn exercises every tree, not one per thread.
            let mut k = w as u64;
            for _ in 0..KEYS_PER_WRITER {
                map.insert_entry(k, k)
                    .expect("writer key sets are disjoint");
                map.remove_key(&k);
                k += WRITERS as u64;
            }
            done.send(()).unwrap();
            // Park forever: this thread never pins again, so its sealed
            // bags are only reachable through the shared registry.
            let _ = park_rx.recv();
        }));
    }
    for _ in 0..WRITERS {
        done_rx.recv().unwrap();
    }

    let during = collector.stats();
    assert!(during.retired > 0, "churn must retire nodes: {during:?}");

    // Every shard saw traffic (FibonacciRoute spreads the strided keys).
    assert!(
        map.shards().iter().all(|s| s.len_slow() == 0),
        "all churned keys were removed"
    );

    // Drop the map while the writers are still parked: shard trees and
    // their collector clones go away; `collector` keeps the domain alive.
    drop(map);

    assert!(
        collector.try_drain(10_000),
        "parked writers' cross-shard garbage was not drained: {:?}",
        collector.stats()
    );
    let stats = collector.stats();

    println!("=== sharded churn ReclaimStats report ===");
    println!(
        "writers: {WRITERS} over {SHARDS} shards ({KEYS_PER_WRITER} insert+remove each, parked)"
    );
    println!("retired:             {}", stats.retired);
    println!("freed:               {}", stats.freed);
    println!("bags published:      {}", stats.bags_published);
    println!("bags stolen:         {}", stats.bags_stolen);
    println!("bags freed:          {}", stats.bags_freed);
    println!("deferred bytes now:  {}", stats.deferred_bytes);
    println!("peak deferred bytes: {}", stats.peak_deferred_bytes);
    println!("=========================================");

    // The teardown contract for sharded frontends (DESIGN.md §11):
    // nothing any shard retired is stranded once the map is gone.
    assert_eq!(stats.retired, stats.freed, "{stats:?}");
    assert_eq!(stats.evictable, 0, "{stats:?}");
    assert_eq!(stats.deferred_bytes, 0, "{stats:?}");
    assert!(stats.peak_deferred_bytes > 0, "{stats:?}");
    assert!(
        stats.bags_stolen > 0,
        "parked writers' bags must drain through the shared registry: {stats:?}"
    );

    for p in &parks {
        p.send(()).unwrap();
    }
    for j in joins {
        j.join().unwrap();
    }
}
