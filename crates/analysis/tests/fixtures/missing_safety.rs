// Fixture: an unsafe block with no SAFETY comment anywhere near it.
// Expected: one [unsafe-audit] violation.

pub fn reads_raw(p: *const u64) -> u64 {
    unsafe { *p }
}
