// Fixture: a compare_exchange whose failure ordering (Acquire) is
// stronger than what its success ordering (Release) provides on the
// read side (Relaxed). Expected: [ordering] failure-stronger violation.

pub fn lopsided_cas(word: &AtomicUsize) {
    let _ = word.compare_exchange(0, 1, Ordering::Release, Ordering::Acquire);
}
