// Fixture: blanket SeqCst outside a manifested fence.
// Expected: [ordering] SeqCst violation (plus the unmanifested-site one).

pub fn seqcst_regression(flag: &AtomicUsize) -> usize {
    flag.load(Ordering::SeqCst)
}
