// Fixture: fully conformant code — manifested site, SAFETY-commented
// unsafe, facade-compliant imports. Expected: no violations.

use std::sync::atomic::Ordering;

pub fn manifested_load(flag: &AtomicUsize) -> usize {
    flag.load(Ordering::Acquire)
}

pub fn reads_raw(p: *const u64) -> u64 {
    // SAFETY: callers pass a pointer to a live, aligned u64.
    unsafe { *p }
}
