// Fixture: an atomic call site with no [[site]] row in the manifest.
// Expected: one [ordering] "unmanifested atomic site" violation.

pub fn rogue_load(flag: &AtomicUsize) -> usize {
    flag.load(Ordering::Acquire)
}
