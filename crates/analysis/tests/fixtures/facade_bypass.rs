// Fixture: a direct std::sync::atomic type import in loom-checked code.
// Expected: one [facade] violation (Ordering alone would be fine).

use std::sync::atomic::{AtomicUsize, Ordering};
