//! One fixture per violation class, driven through [`nbbst_analysis::run_lint`]
//! exactly as the workspace lint runs — these pin down the messages and
//! pass assignments the tool promises, so refactors of the passes cannot
//! silently stop detecting a class.

use std::path::{Path, PathBuf};

use nbbst_analysis::{Pass, Report};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints one fixture file with the fixtures' manifest.
fn lint_fixture(name: &str) -> Report {
    let root = fixture_root();
    let manifest = std::fs::read_to_string(root.join("orderings.toml"))
        .expect("fixtures/orderings.toml exists");
    nbbst_analysis::run_lint(&root, &manifest, &[PathBuf::from(name)])
}

fn messages(report: &Report, pass: Pass) -> Vec<String> {
    report
        .by_pass(pass)
        .into_iter()
        .map(|v| v.message.clone())
        .collect()
}

#[test]
fn clean_fixture_is_clean() {
    let r = lint_fixture("clean.rs");
    assert!(r.is_clean(), "{r}");
    assert_eq!(r.sites_checked, 1);
    assert_eq!(r.unsafe_audited, 1);
}

#[test]
fn unmanifested_site_is_flagged() {
    let r = lint_fixture("unmanifested.rs");
    let msgs = messages(&r, Pass::Ordering);
    assert_eq!(msgs.len(), 1, "{r}");
    assert!(msgs[0].contains("unmanifested atomic site"), "{r}");
    assert!(msgs[0].contains("load(Acquire)"), "{r}");
}

#[test]
fn seqcst_regression_is_flagged() {
    let r = lint_fixture("seqcst.rs");
    let msgs = messages(&r, Pass::Ordering);
    // The SeqCst literal itself plus the unmanifested site.
    assert!(
        msgs.iter().any(|m| m.contains("SeqCst in non-test code")),
        "{r}"
    );
}

#[test]
fn stronger_failure_cas_is_flagged() {
    let r = lint_fixture("cas_failure.rs");
    let msgs = messages(&r, Pass::Ordering);
    assert!(
        msgs.iter()
            .any(|m| m.contains("failure ordering Acquire is stronger")),
        "{r}"
    );
}

#[test]
fn missing_safety_comment_is_flagged() {
    let r = lint_fixture("missing_safety.rs");
    let msgs = messages(&r, Pass::UnsafeAudit);
    assert_eq!(msgs.len(), 1, "{r}");
    assert!(
        msgs[0].contains("unsafe block without a safety argument"),
        "{r}"
    );
}

#[test]
fn facade_bypass_is_flagged() {
    let r = lint_fixture("facade_bypass.rs");
    let msgs = messages(&r, Pass::Facade);
    // AtomicUsize is flagged; Ordering is allowed.
    assert_eq!(msgs.len(), 1, "{r}");
    assert!(msgs[0].contains("AtomicUsize"), "{r}");
}

#[test]
fn stale_manifest_row_is_flagged() {
    // Lint a file that has no sites at all against a manifest that claims
    // one: the row must be reported as stale.
    let root = fixture_root();
    let manifest = std::fs::read_to_string(root.join("orderings.toml")).unwrap();
    let r = nbbst_analysis::run_lint(&root, &manifest, &[PathBuf::from("missing_safety.rs")]);
    assert!(
        r.by_pass(Pass::Manifest)
            .iter()
            .any(|v| v.message.contains("stale")),
        "{r}"
    );
}

/// The acceptance check from the issue, in miniature: seeding any fixture
/// violation into an otherwise-clean file must flip the report dirty.
#[test]
fn seeded_violation_flips_a_clean_file_dirty() {
    let root = fixture_root();
    let manifest = std::fs::read_to_string(root.join("orderings.toml")).unwrap();
    let clean = std::fs::read_to_string(root.join("clean.rs")).unwrap();
    for seed in [
        "pub fn seeded(x: &AtomicU64) { x.store(1, Ordering::SeqCst); }",
        "pub fn seeded(p: *mut u8) { unsafe { *p = 0 }; }",
    ] {
        let dir = std::env::temp_dir().join(format!(
            "nbbst-lint-seed-{}-{}",
            std::process::id(),
            seed.len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("clean.rs"), format!("{clean}\n{seed}\n")).unwrap();
        let r = nbbst_analysis::run_lint(&dir, &manifest, &[PathBuf::from("clean.rs")]);
        assert!(!r.is_clean(), "seed `{seed}` went undetected");
        std::fs::remove_file(dir.join("clean.rs")).ok();
        std::fs::remove_dir(&dir).ok();
    }
}
