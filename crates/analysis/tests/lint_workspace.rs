//! Tier-1 regression: the workspace must lint clean.
//!
//! This is the same check CI's `lint-atomics` job runs via the
//! `nbbst-lint` binary; running it as a plain `#[test]` keeps
//! `cargo test` sufficient to catch ordering/manifest drift locally.

#[test]
fn workspace_lints_clean() {
    let root = nbbst_analysis::workspace_root();
    let report = nbbst_analysis::run_workspace_lint(&root);
    assert!(
        report.is_clean(),
        "nbbst-lint found violations — run `cargo run -p nbbst-analysis \
         --bin nbbst-lint` and fix (or justify in orderings.toml):\n{report}"
    );
}

#[test]
fn workspace_inventory_is_plausible() {
    // Guards against the lint silently scanning nothing (e.g. a path
    // regression making every crate directory unreadable).
    let root = nbbst_analysis::workspace_root();
    let report = nbbst_analysis::run_workspace_lint(&root);
    assert!(report.files_scanned >= 10, "{report}");
    assert!(report.sites_checked >= 80, "{report}");
    assert!(report.unsafe_audited >= 100, "{report}");
    assert!(report.manifest_rows >= 50, "{report}");
}
