//! The machine-readable ordering manifest (`orderings.toml`).
//!
//! `orderings.toml` is the source of truth for every atomic call site in
//! the linted crates; DESIGN.md §8 is its rendered, prose form. Each
//! `[[site]]` row names a file, the enclosing function, the atomic
//! operation, its ordering(s), and a one-line justification. The ordering
//! pass fails if code and manifest disagree in either direction.
//!
//! The parser handles exactly the TOML subset the manifest uses — table
//! arrays (`[[site]]`), one plain table (`[facade]`), string values, and
//! string arrays — because the offline build environment has no `toml`
//! crate. Unknown keys or malformed lines are hard errors: a manifest
//! that cannot be read precisely is a manifest that cannot be trusted.

use std::fmt;

/// The five atomic orderings; `parse` rejects anything else.
pub const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic operations the ordering pass recognizes as call sites.
pub const OPS: [&str; 15] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
    "fence",
];

/// One manifested atomic call site (a `[[site]]` row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRow {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// Enclosing function name (`name!` for `macro_rules!` bodies).
    pub function: String,
    /// The atomic operation (`load`, `compare_exchange`, `fence`, ...).
    pub op: String,
    /// Success (or only) ordering.
    pub ordering: String,
    /// Failure ordering; present only for `compare_exchange{,_weak}`.
    pub failure: Option<String>,
    /// One-line justification; must be non-empty.
    pub why: String,
    /// Line number of the row in the manifest, for diagnostics.
    pub line: u32,
}

impl fmt::Display for SiteRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in fn {} ({}, {}{})",
            self.op,
            self.function,
            self.file,
            self.ordering,
            self.failure
                .as_deref()
                .map(|x| format!("/{x}"))
                .unwrap_or_default()
        )
    }
}

/// The parsed manifest.
#[derive(Debug, Default)]
pub struct Manifest {
    /// All `[[site]]` rows in file order.
    pub sites: Vec<SiteRow>,
    /// Files allowed to name `std::sync::atomic` types directly
    /// (`[facade] exempt = [...]`) — the facade module itself.
    pub facade_exempt: Vec<String>,
}

impl Manifest {
    /// Rows matching a detected site's identity key.
    pub fn rows_for(&self, file: &str, function: &str, op: &str) -> Vec<&SiteRow> {
        self.sites
            .iter()
            .filter(|r| r.file == file && r.function == function && r.op == op)
            .collect()
    }
}

/// A manifest parse or validation error.
#[derive(Debug)]
pub struct ManifestError {
    /// 1-based line in the manifest file.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "orderings.toml:{}: {}", self.line, self.message)
    }
}

enum Section {
    None,
    Site(SiteRow),
    Facade,
}

/// Parses and validates manifest text.
pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
    let mut manifest = Manifest::default();
    let mut section = Section::None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[site]]" {
            flush(
                &mut manifest,
                std::mem::replace(&mut section, Section::None),
                lineno,
            )?;
            section = Section::Site(SiteRow {
                file: String::new(),
                function: String::new(),
                op: String::new(),
                ordering: String::new(),
                failure: None,
                why: String::new(),
                line: lineno,
            });
            continue;
        }
        if line == "[facade]" {
            flush(
                &mut manifest,
                std::mem::replace(&mut section, Section::None),
                lineno,
            )?;
            section = Section::Facade;
            continue;
        }
        if line.starts_with('[') {
            return Err(ManifestError {
                line: lineno,
                message: format!("unknown section {line}"),
            });
        }
        let (key, value) = split_kv(line, lineno)?;
        match &mut section {
            Section::None => {
                return Err(ManifestError {
                    line: lineno,
                    message: format!("key `{key}` outside any section"),
                })
            }
            Section::Facade => match key {
                "exempt" => manifest.facade_exempt = parse_string_array(value, lineno)?,
                _ => {
                    return Err(ManifestError {
                        line: lineno,
                        message: format!("unknown [facade] key `{key}`"),
                    })
                }
            },
            Section::Site(row) => {
                let value = parse_string(value, lineno)?;
                match key {
                    "file" => row.file = value,
                    "function" => row.function = value,
                    "op" => row.op = value,
                    "ordering" => row.ordering = value,
                    "failure" => row.failure = Some(value),
                    "why" => row.why = value,
                    _ => {
                        return Err(ManifestError {
                            line: lineno,
                            message: format!("unknown [[site]] key `{key}`"),
                        })
                    }
                }
            }
        }
    }
    flush(&mut manifest, section, text.lines().count() as u32)?;
    Ok(manifest)
}

fn flush(manifest: &mut Manifest, section: Section, at: u32) -> Result<(), ManifestError> {
    if let Section::Site(row) = section {
        validate_row(&row, at)?;
        manifest.sites.push(row);
    }
    Ok(())
}

fn validate_row(row: &SiteRow, at: u32) -> Result<(), ManifestError> {
    let err = |message: String| {
        Err(ManifestError {
            line: row.line.min(at),
            message,
        })
    };
    if row.file.is_empty()
        || row.function.is_empty()
        || row.op.is_empty()
        || row.ordering.is_empty()
    {
        return err("a [[site]] row needs file, function, op, and ordering".into());
    }
    if row.why.trim().is_empty() {
        return err(format!("site `{row}` has no justification (`why`)"));
    }
    if !OPS.contains(&row.op.as_str()) {
        return err(format!("unknown op `{}`", row.op));
    }
    for ord in std::iter::once(&row.ordering).chain(row.failure.iter()) {
        if !ORDERINGS.contains(&ord.as_str()) {
            return err(format!("unknown ordering `{ord}`"));
        }
    }
    let is_cas = row.op.starts_with("compare_exchange");
    if row.failure.is_some() && !is_cas {
        return err(format!("op `{}` takes no failure ordering", row.op));
    }
    if is_cas && row.failure.is_none() {
        return err(format!("`{}` needs a failure ordering", row.op));
    }
    // DESIGN.md §8: the only place SeqCst may appear in non-test code is a
    // documented fence (the store-load races Acquire/Release cannot order).
    if row.ordering == "SeqCst" && row.op != "fence" {
        return err(format!(
            "SeqCst is only manifestable on `fence` sites, not `{}`",
            row.op
        ));
    }
    if row.failure.as_deref() == Some("SeqCst") {
        return err("SeqCst failure orderings are never manifestable".into());
    }
    Ok(())
}

fn split_kv(line: &str, lineno: u32) -> Result<(&str, &str), ManifestError> {
    let (key, value) = line.split_once('=').ok_or(ManifestError {
        line: lineno,
        message: format!("expected `key = value`, got `{line}`"),
    })?;
    Ok((key.trim(), value.trim()))
}

fn parse_string(value: &str, lineno: u32) -> Result<String, ManifestError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or(ManifestError {
            line: lineno,
            message: format!("expected a double-quoted string, got `{value}`"),
        })?;
    if inner.contains('"') {
        return Err(ManifestError {
            line: lineno,
            message: "embedded quotes are not supported".into(),
        });
    }
    Ok(inner.to_string())
}

fn parse_string_array(value: &str, lineno: u32) -> Result<Vec<String>, ManifestError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or(ManifestError {
            line: lineno,
            message: format!("expected `[\"a\", \"b\"]`, got `{value}`"),
        })?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_string(s, lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# comment
[[site]]
file = "crates/core/src/node.rs"
function = "load_update"
op = "load"
ordering = "Acquire"
why = "helpers deref the published Info record"

[[site]]
file = "crates/core/src/tree.rs"
function = "insert_entry"
op = "compare_exchange"
ordering = "Release"
failure = "Acquire"
why = "iflag publishes the IInfo; failure is helped"

[facade]
exempt = ["crates/reclaim/src/primitives.rs"]
"#;

    #[test]
    fn parses_sites_and_facade() {
        let m = parse(GOOD).unwrap();
        assert_eq!(m.sites.len(), 2);
        assert_eq!(m.sites[0].function, "load_update");
        assert_eq!(m.sites[1].failure.as_deref(), Some("Acquire"));
        assert_eq!(m.facade_exempt, vec!["crates/reclaim/src/primitives.rs"]);
        assert_eq!(
            m.rows_for("crates/core/src/node.rs", "load_update", "load")
                .len(),
            1
        );
    }

    #[test]
    fn rejects_seqcst_on_non_fence() {
        let bad = "[[site]]\nfile = \"f\"\nfunction = \"g\"\nop = \"load\"\nordering = \"SeqCst\"\nwhy = \"w\"\n";
        assert!(parse(bad).unwrap_err().message.contains("fence"));
    }

    #[test]
    fn rejects_missing_why() {
        let bad =
            "[[site]]\nfile = \"f\"\nfunction = \"g\"\nop = \"load\"\nordering = \"Acquire\"\n";
        assert!(parse(bad).unwrap_err().message.contains("justification"));
    }

    #[test]
    fn rejects_cas_without_failure() {
        let bad = "[[site]]\nfile = \"f\"\nfunction = \"g\"\nop = \"compare_exchange\"\nordering = \"Release\"\nwhy = \"w\"\n";
        assert!(parse(bad).unwrap_err().message.contains("failure"));
    }

    #[test]
    fn rejects_unknown_keys() {
        let bad = "[[site]]\nfrobnicate = \"x\"\n";
        assert!(parse(bad).unwrap_err().message.contains("unknown"));
    }
}
