//! `nbbst-lint` — enforce the DESIGN.md §8 site table offline.
//!
//! ```text
//! cargo run -p nbbst-analysis --bin nbbst-lint [-- --report PATH] [--quiet]
//! ```
//!
//! Exits non-zero if any pass finds a violation. `--report PATH` also
//! writes the full report to a file (CI uploads it as an artifact).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut report_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("nbbst-lint: --report needs a path");
                    return ExitCode::from(2);
                }
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "nbbst-lint: atomics-ordering conformance (orderings.toml \u{2194} code), \
                     unsafe/SAFETY audit, loom-facade conformance.\n\
                     Usage: nbbst-lint [--report PATH] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nbbst-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = nbbst_analysis::workspace_root();
    let report = nbbst_analysis::run_workspace_lint(&root);
    let rendered = report.to_string();
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("nbbst-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet || !report.is_clean() {
        print!("{rendered}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
