//! Violation collection and rendering.

use std::fmt;

/// Which analysis pass produced a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Atomics-ordering conformance against `orderings.toml`.
    Ordering,
    /// `unsafe` blocks/fns/impls without a `SAFETY:` comment.
    UnsafeAudit,
    /// `std::sync::atomic` used where the loom facade is required.
    Facade,
    /// The manifest itself is stale or invalid.
    Manifest,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pass::Ordering => "ordering",
            Pass::UnsafeAudit => "unsafe-audit",
            Pass::Facade => "facade",
            Pass::Manifest => "manifest",
        })
    }
}

/// One finding; rendering matches rustc's `file:line: message` shape so
/// editors and CI annotations pick the locations up.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Producing pass.
    pub pass: Pass,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in file order.
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Atomic call sites checked against the manifest.
    pub sites_checked: usize,
    /// `unsafe` occurrences audited.
    pub unsafe_audited: usize,
    /// Manifest rows loaded.
    pub manifest_rows: usize,
}

impl Report {
    /// True if the run found nothing.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Findings from one pass.
    pub fn by_pass(&self, pass: Pass) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.pass == pass).collect()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        writeln!(
            f,
            "nbbst-lint: {} file(s), {} atomic site(s), {} unsafe occurrence(s), {} manifest row(s): {}",
            self.files_scanned,
            self.sites_checked,
            self.unsafe_audited,
            self.manifest_rows,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )
    }
}
