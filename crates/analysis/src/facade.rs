//! Pass 3 — loom-facade conformance.
//!
//! Under `RUSTFLAGS="--cfg loom"` every protocol atomic must become a
//! loom scheduling point, which only happens if the code routes through
//! the `nbbst-reclaim` `primitives` facade. A direct `std::sync::atomic`
//! type in loom-checked code silently disappears from the model's
//! schedule space — the checker still passes, but verifies less than it
//! claims. This pass makes that a hard error.
//!
//! Allowed uses of `std::sync::atomic` in loom-checked crates:
//!
//! * `Ordering` (the facade re-exports std's `Ordering` even under loom);
//! * instrumentation counters imported under a `Counter*` alias (e.g.
//!   `AtomicU64 as CounterU64`) — the documented exclusion for stats
//!   that never synchronize (see `primitives.rs`);
//! * files listed in the manifest's `[facade] exempt` array — the facade
//!   module itself.

use crate::lexer::{SourceFile, Tok, TokKind};
use crate::manifest::Manifest;
use crate::report::{Pass, Report, Violation};

/// Runs the facade pass for one file, appending findings to `report`.
pub fn check(file: &SourceFile, manifest: &Manifest, report: &mut Report) {
    if manifest.facade_exempt.contains(&file.path) {
        return;
    }
    let toks = &file.tokens;
    let mut i = 0;
    while i + 4 < toks.len() {
        if toks[i].test || !is_path(&toks[i..], &["std", "sync", "atomic"]) {
            i += 1;
            continue;
        }
        // `std :: sync :: atomic` spans 7 tokens; expect `::` next, then
        // either one name or a `{ ... }` group.
        let after = i + 7;
        if !(toks.get(after).is_some_and(|t| t.is_punct(':'))
            && toks.get(after + 1).is_some_and(|t| t.is_punct(':')))
        {
            i = after;
            continue;
        }
        let names_start = after + 2;
        for (line, name) in imported_names(toks, names_start) {
            if !name_allowed(&name) {
                report.violations.push(Violation {
                    file: file.path.clone(),
                    line,
                    pass: Pass::Facade,
                    message: format!(
                        "`std::sync::atomic::{}` bypasses the loom facade: import it \
                         from `crate::primitives` (nbbst-reclaim) so `--cfg loom` \
                         builds model-check it, or alias it as `Counter*` if it is \
                         a pure instrumentation counter",
                        name.text
                    ),
                });
            }
        }
        i = names_start;
    }
}

/// `Ordering` is always std's; `Counter*` aliases mark documented
/// instrumentation counters.
fn name_allowed(name: &ImportedName) -> bool {
    name.text == "Ordering"
        || name
            .alias
            .as_deref()
            .is_some_and(|a| a.starts_with("Counter"))
}

#[derive(Debug)]
struct ImportedName {
    text: String,
    alias: Option<String>,
}

/// The names pulled in at `start`: either a single ident (optionally
/// `as Alias`, optionally a deeper path like `AtomicPtr::new`) or a
/// `{ A, B as C }` group.
fn imported_names(toks: &[Tok], start: usize) -> Vec<(u32, ImportedName)> {
    let mut out = Vec::new();
    match toks.get(start).map(|t| &t.kind) {
        Some(TokKind::Ident(first)) => {
            let alias = parse_alias(toks, start + 1);
            out.push((
                toks[start].line,
                ImportedName {
                    text: first.clone(),
                    alias,
                },
            ));
        }
        Some(TokKind::Punct('{')) => {
            let mut j = start + 1;
            while j < toks.len() && !toks[j].is_punct('}') {
                if let Some(id) = toks[j].ident() {
                    let alias = parse_alias(toks, j + 1);
                    // Skip over `as Alias` so the alias ident is not read
                    // as another imported name.
                    let consumed = if alias.is_some() { 2 } else { 0 };
                    out.push((
                        toks[j].line,
                        ImportedName {
                            text: id.to_string(),
                            alias,
                        },
                    ));
                    j += consumed;
                }
                j += 1;
            }
        }
        _ => {}
    }
    out
}

fn parse_alias(toks: &[Tok], at: usize) -> Option<String> {
    if toks.get(at)?.ident() == Some("as") {
        return toks.get(at + 1)?.ident().map(str::to_string);
    }
    None
}

fn is_path(toks: &[Tok], segments: &[&str]) -> bool {
    let mut idx = 0;
    for (n, seg) in segments.iter().enumerate() {
        if toks.get(idx).and_then(Tok::ident) != Some(seg) {
            return false;
        }
        idx += 1;
        if n + 1 < segments.len() {
            if !(toks.get(idx).is_some_and(|t| t.is_punct(':'))
                && toks.get(idx + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            idx += 2;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::manifest::parse;

    fn run(src: &str, exempt: &str) -> Report {
        let manifest = if exempt.is_empty() {
            Manifest::default()
        } else {
            parse(&format!("[facade]\nexempt = [\"{exempt}\"]\n")).unwrap()
        };
        let mut report = Report::default();
        check(&scan("x.rs", src), &manifest, &mut report);
        report
    }

    #[test]
    fn ordering_import_is_allowed() {
        assert!(run("use std::sync::atomic::Ordering;", "").is_clean());
        assert!(run("use std::sync::atomic::Ordering as AtomicOrdering;", "").is_clean());
        assert!(run("use std::sync::atomic::{Ordering};", "").is_clean());
    }

    #[test]
    fn atomic_type_import_is_flagged() {
        let r = run("use std::sync::atomic::AtomicUsize;", "");
        assert_eq!(r.by_pass(Pass::Facade).len(), 1);
    }

    #[test]
    fn grouped_import_flags_each_bad_name() {
        let r = run(
            "use std::sync::atomic::{AtomicU64, AtomicBool, Ordering};",
            "",
        );
        assert_eq!(r.by_pass(Pass::Facade).len(), 2);
    }

    #[test]
    fn counter_alias_is_allowed() {
        let r = run(
            "use std::sync::atomic::{AtomicU64 as CounterU64, AtomicUsize as CounterUsize};",
            "",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn non_counter_alias_is_flagged() {
        let r = run("use std::sync::atomic::AtomicU64 as Word;", "");
        assert_eq!(r.by_pass(Pass::Facade).len(), 1);
    }

    #[test]
    fn inline_path_is_flagged() {
        let r = run(
            "fn f() { let x = std::sync::atomic::AtomicUsize::new(0); }",
            "",
        );
        assert_eq!(r.by_pass(Pass::Facade).len(), 1);
    }

    #[test]
    fn fence_path_is_flagged() {
        let r = run("fn f() { std::sync::atomic::fence(Ordering::SeqCst); }", "");
        assert_eq!(r.by_pass(Pass::Facade).len(), 1);
    }

    #[test]
    fn exempt_file_is_skipped() {
        let r = run("use std::sync::atomic::{AtomicUsize, fence};", "x.rs");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn test_code_is_skipped() {
        let r = run(
            "#[cfg(test)]\nmod tests { use std::sync::atomic::AtomicUsize; }",
            "",
        );
        assert!(r.is_clean(), "{r}");
    }
}
