//! `nbbst-analysis` — offline static analysis for the nbbst workspace.
//!
//! The crate ships one tool, **`nbbst-lint`** (run it with
//! `cargo run -p nbbst-analysis --bin nbbst-lint`), built from three
//! passes over `crates/core`, `crates/reclaim`, `crates/dictionary`, and
//! `crates/sharded`:
//!
//! 1. [`ordering`] — every atomic call site must match a justified row in
//!    `crates/analysis/orderings.toml`, the machine-readable source of
//!    truth behind DESIGN.md §8; `SeqCst` is banned outside manifested
//!    fences; CAS failure orderings may not outrank success.
//! 2. [`unsafe_audit`] — every `unsafe` block/fn/impl needs a `SAFETY:`
//!    comment (or `# Safety` doc section) where a reviewer will see it.
//! 3. [`facade`] — loom-checked code must route atomics through the
//!    `nbbst-reclaim` primitives facade, never `std::sync::atomic`.
//!
//! Everything is dependency-free by design: the lexer is from scratch
//! (no `syn`), the manifest parser covers exactly the TOML subset the
//! manifest uses (no `toml`/`serde`), so the lint keeps working in the
//! registry-less build environment that motivated it.

#![warn(missing_docs, missing_debug_implementations)]

pub mod facade;
pub mod lexer;
pub mod manifest;
pub mod ordering;
pub mod report;
pub mod unsafe_audit;

pub use report::{Pass, Report, Violation};

use std::path::{Path, PathBuf};

/// The crates the lint covers, relative to the workspace root. The
/// manifest, DESIGN.md §8, and the CI job all quantify over these.
/// (`crates/sharded` is expected to contribute zero manifest rows: the
/// sharded frontend is deliberately atomics-free and `forbid(unsafe_code)`,
/// and the lint keeps it that way.)
pub const LINTED_CRATES: [&str; 4] = [
    "crates/core",
    "crates/reclaim",
    "crates/dictionary",
    "crates/sharded",
];

/// The default manifest location, relative to the workspace root.
pub const MANIFEST_PATH: &str = "crates/analysis/orderings.toml";

/// Resolves the workspace root from this crate's build-time location.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels under the workspace root")
        .to_path_buf()
}

/// Recursively collects `.rs` files under `dir`, workspace-relative,
/// sorted for deterministic reports.
fn rust_sources(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(
                path.strip_prefix(root)
                    .expect("sources live under the root")
                    .to_path_buf(),
            );
        }
    }
    Ok(())
}

/// Runs all three passes over the workspace's linted crates using the
/// checked-in manifest. This is what the binary, the tier-1 regression
/// test, and CI all call.
pub fn run_workspace_lint(root: &Path) -> Report {
    let manifest_text = match std::fs::read_to_string(root.join(MANIFEST_PATH)) {
        Ok(t) => t,
        Err(e) => {
            let mut report = Report::default();
            report.violations.push(Violation {
                file: MANIFEST_PATH.to_string(),
                line: 0,
                pass: Pass::Manifest,
                message: format!("cannot read ordering manifest: {e}"),
            });
            return report;
        }
    };
    let mut files = Vec::new();
    for krate in LINTED_CRATES {
        // Only `src/`: integration tests, benches, and examples are test
        // code by construction.
        let src = root.join(krate).join("src");
        if let Err(e) = rust_sources(root, &src, &mut files) {
            let mut report = Report::default();
            report.violations.push(Violation {
                file: format!("{krate}/src"),
                line: 0,
                pass: Pass::Manifest,
                message: format!("cannot walk sources: {e}"),
            });
            return report;
        }
    }
    run_lint(root, &manifest_text, &files)
}

/// Runs all three passes over an explicit file list with an explicit
/// manifest — the reusable core (fixture tests drive this directly).
pub fn run_lint(root: &Path, manifest_text: &str, files: &[PathBuf]) -> Report {
    let mut report = Report::default();
    let manifest = match manifest::parse(manifest_text) {
        Ok(m) => m,
        Err(e) => {
            report.violations.push(Violation {
                file: MANIFEST_PATH.to_string(),
                line: e.line,
                pass: Pass::Manifest,
                message: e.message,
            });
            return report;
        }
    };
    report.manifest_rows = manifest.sites.len();

    let mut all_sites: Vec<(String, ordering::Site)> = Vec::new();
    for rel in files {
        let path_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let source = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                report.violations.push(Violation {
                    file: path_str,
                    line: 0,
                    pass: Pass::Manifest,
                    message: format!("cannot read source: {e}"),
                });
                continue;
            }
        };
        let file = lexer::scan(&path_str, &source);
        report.files_scanned += 1;
        let sites = ordering::check(&file, &manifest, &mut report);
        unsafe_audit::check(&file, &mut report);
        facade::check(&file, &manifest, &mut report);
        all_sites.extend(sites.into_iter().map(|s| (file.path.clone(), s)));
    }
    ordering::check_stale_rows(&manifest, &all_sites, &mut report);
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}
