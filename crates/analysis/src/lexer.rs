//! A from-scratch, dependency-free token scanner for Rust source.
//!
//! The analysis passes do not need a full parse — they need a token stream
//! in which string literals, character literals, comments, and attributes
//! can never be mistaken for code, plus three derived facts per token:
//! its line, whether it sits inside `#[cfg(test)]` / `#[test]` code, and
//! the name of the innermost enclosing `fn` (or `macro_rules!`) item.
//! That is exactly what this module produces; everything subtler (paths,
//! generics, expressions) stays the passes' problem.
//!
//! The scanner understands: line and (nested) block comments, doc
//! comments, string/raw-string/byte-string literals, char literals vs.
//! lifetimes, numeric literals, identifiers, and attribute brackets.

use std::fmt;

/// One scanned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// A string/char/numeric literal; contents are irrelevant to the passes.
    Lit,
}

/// A token plus the derived facts the passes consume.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// What the token is.
    pub kind: TokKind,
    /// True if the token is inside `#[cfg(test)]` / `#[test]` code.
    pub test: bool,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment (line, block, or doc), kept separate from the token stream
/// for the `SAFETY:` audit.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Raw comment text including its `//` / `/*` introducer.
    pub text: String,
}

/// A scanned source file: tokens, comments, and per-token scope names.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The token stream (comments and whitespace removed).
    pub tokens: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// For each token, the innermost enclosing `fn`/`macro_rules!` name
    /// (empty string at module scope). Parallel to `tokens`.
    pub scopes: Vec<String>,
}

impl fmt::Display for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} tokens)", self.path, self.tokens.len())
    }
}

/// Scans `source`, then derives test regions and enclosing scopes.
pub fn scan(path: &str, source: &str) -> SourceFile {
    let (mut tokens, comments) = tokenize(source);
    mark_test_regions(&mut tokens);
    let scopes = enclosing_scopes(&tokens);
    SourceFile {
        path: path.to_string(),
        tokens,
        comments,
        scopes,
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn tokenize(source: &str) -> (Vec<Tok>, Vec<Comment>) {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: chars[start..i].iter().collect(),
                });
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text: chars[start..i.min(chars.len())].iter().collect(),
                });
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
                tokens.push(Tok {
                    line,
                    kind: TokKind::Lit,
                    test: false,
                });
            }
            'r' | 'b' if starts_raw_or_byte_string(&chars, i) => {
                let lit_line = line;
                i = skip_raw_or_byte_string(&chars, i, &mut line);
                tokens.push(Tok {
                    line: lit_line,
                    kind: TokKind::Lit,
                    test: false,
                });
            }
            '\'' => {
                // Char literal vs. lifetime: '\x', 'a', vs. 'static.
                if chars.get(i + 1) == Some(&'\\') {
                    i += 2; // consume '\ and the escape head
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    tokens.push(Tok {
                        line,
                        kind: TokKind::Lit,
                        test: false,
                    });
                } else if chars.get(i + 2) == Some(&'\'') {
                    i += 3;
                    tokens.push(Tok {
                        line,
                        kind: TokKind::Lit,
                        test: false,
                    });
                } else {
                    // Lifetime: consume the quote and the identifier.
                    i += 1;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    tokens.push(Tok {
                        line,
                        kind: TokKind::Lit,
                        test: false,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while i < chars.len() && (is_ident_continue(chars[i]) || chars[i] == '.') {
                    // Stop a numeric literal at `..` (range) or a method call.
                    if chars[i] == '.'
                        && (chars.get(i + 1) == Some(&'.')
                            || chars.get(i + 1).is_some_and(|n| is_ident_start(*n)))
                    {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Tok {
                    line,
                    kind: TokKind::Lit,
                    test: false,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(Tok {
                    line,
                    kind: TokKind::Ident(chars[start..i].iter().collect()),
                    test: false,
                });
            }
            _ => {
                tokens.push(Tok {
                    line,
                    kind: TokKind::Punct(c),
                    test: false,
                });
                i += 1;
            }
        }
    }
    (tokens, comments)
}

/// True if position `i` starts `r"`, `r#"`, `b"`, `br"`, `br#"`, `b'`.
fn starts_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            return true; // byte char literal b'x'
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    chars.get(j) == Some(&'"')
}

fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(chars[i], '"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_or_byte_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    if chars[i] == 'b' {
        i += 1;
        if chars.get(i) == Some(&'\'') {
            // b'x' or b'\n'
            i += 1;
            if chars.get(i) == Some(&'\\') {
                i += 1;
            }
            while i < chars.len() && chars[i] != '\'' {
                i += 1;
            }
            return i + 1;
        }
    }
    let mut hashes = 0usize;
    if chars.get(i) == Some(&'r') {
        i += 1;
        while chars.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
        debug_assert_eq!(chars.get(i), Some(&'"'));
        i += 1;
        // Scan for `"` followed by `hashes` hash marks.
        while i < chars.len() {
            if chars[i] == '\n' {
                *line += 1;
            }
            if chars[i] == '"' && chars[i + 1..].iter().take_while(|c| **c == '#').count() >= hashes
            {
                return i + 1 + hashes;
            }
            i += 1;
        }
        return i;
    }
    // Plain byte string b"..."
    skip_string(chars, i, line)
}

/// Marks every token belonging to a `#[cfg(test)]`- or `#[test]`-gated item
/// (including the attribute itself) with `test = true`.
///
/// An item is "the next thing after the attribute": any further attributes,
/// then either a `{ ... }`-terminated item (mod/fn/impl) or a `;`-terminated
/// one (`use`, declarations).
fn mark_test_regions(tokens: &mut [Tok]) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, is_test) = classify_attribute(tokens, i);
            if is_test {
                let end = item_end(tokens, attr_end);
                for t in tokens[i..end].iter_mut() {
                    t.test = true;
                }
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
}

/// Returns `(index past the closing ']', attribute gates test code)`.
///
/// "Gates test code" means `#[test]`, or a `#[cfg(...)]` whose predicate
/// mentions `test` without a `not`. (`#[cfg(not(test))]` is production
/// code; `#[cfg(any(test, fuzzing))]` is test code — close enough for a
/// lint that only needs to avoid false positives on production sites.)
fn classify_attribute(tokens: &[Tok], start: usize) -> (usize, bool) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut i = start + 1; // at '['
    while i < tokens.len() {
        if tokens[i].is_punct('[') {
            depth += 1;
        } else if tokens[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        } else if let Some(id) = tokens[i].ident() {
            idents.push(id.to_string());
        }
        i += 1;
    }
    let is_test = match idents.first().map(String::as_str) {
        Some("test") if idents.len() == 1 => true,
        Some("cfg") => idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not"),
        _ => false,
    };
    (i, is_test)
}

/// Index one past the end of the item starting at `i` (attributes allowed).
fn item_end(tokens: &[Tok], mut i: usize) -> usize {
    // Skip any further attributes.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let (end, _) = classify_attribute(tokens, i);
        i = end;
    }
    // Then scan to the first `;` at brace depth 0, or through the first
    // balanced `{ ... }` group.
    let mut depth = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        } else if tokens[i].is_punct(';') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// For every token, the name of the innermost enclosing `fn` item (or
/// `macro_rules!` definition, reported as `name!`). Closures and other
/// brace groups inherit the surrounding function's name.
fn enclosing_scopes(tokens: &[Tok]) -> Vec<String> {
    let mut scopes = Vec::with_capacity(tokens.len());
    // Stack of (brace depth at which the scope opened, name).
    let mut stack: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    // A declared-but-not-yet-opened fn/macro name.
    let mut pending: Option<String> = None;
    for (i, t) in tokens.iter().enumerate() {
        scopes.push(stack.last().map(|(_, n)| n.clone()).unwrap_or_default());
        match &t.kind {
            TokKind::Ident(id) if id == "fn" => {
                if let Some(name) = tokens.get(i + 1).and_then(Tok::ident) {
                    pending = Some(name.to_string());
                }
            }
            TokKind::Ident(id) if id == "macro_rules" => {
                // `macro_rules ! name { ... }`
                if let Some(name) = tokens.get(i + 2).and_then(Tok::ident) {
                    pending = Some(format!("{name}!"));
                }
            }
            TokKind::Punct('{') => {
                depth += 1;
                if let Some(name) = pending.take() {
                    stack.push((depth, name));
                    // The brace token itself belongs to the named scope.
                    *scopes.last_mut().expect("pushed above") = name_of(&stack);
                }
            }
            TokKind::Punct('}') => {
                while stack.last().is_some_and(|(d, _)| *d >= depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct(';') => {
                // Trait method declaration without a body.
                pending = None;
            }
            _ => {}
        }
    }
    scopes
}

fn name_of(stack: &[(usize, String)]) -> String {
    stack.last().map(|(_, n)| n.clone()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_hide_code() {
        let f = scan(
            "t.rs",
            r#"
            // load(Ordering::SeqCst) in a comment
            fn a() { let s = "load(Ordering::SeqCst)"; }
            "#,
        );
        assert!(!f.tokens.iter().any(|t| t.ident() == Some("SeqCst")));
        assert_eq!(f.comments.len(), 1);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let f = scan(
            "t.rs",
            "fn live() { x.load(Ordering::SeqCst); }\n\
             #[cfg(test)]\nmod tests { fn t() { y.load(Ordering::SeqCst); } }\n",
        );
        let seqcst: Vec<bool> = f
            .tokens
            .iter()
            .filter(|t| t.ident() == Some("SeqCst"))
            .map(|t| t.test)
            .collect();
        assert_eq!(seqcst, vec![false, true]);
    }

    #[test]
    fn scopes_name_the_enclosing_fn() {
        let f = scan(
            "t.rs",
            "impl Foo { fn bar(&self) { let c = || { x.load(Ordering::Acquire) }; } }\n",
        );
        let (i, _) = f
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| t.ident() == Some("load"))
            .unwrap();
        assert_eq!(f.scopes[i], "bar");
    }

    #[test]
    fn macro_rules_scope_gets_bang_suffix() {
        let f = scan(
            "t.rs",
            "macro_rules! counters { () => { self.x.load(Ordering::Relaxed) }; }\n",
        );
        let (i, _) = f
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| t.ident() == Some("load"))
            .unwrap();
        assert_eq!(f.scopes[i], "counters!");
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let f = scan(
            "t.rs",
            "fn f<'g>(g: &'g Guard) -> Shared<'g, T> { g.load(Ordering::Acquire) }",
        );
        assert!(f.tokens.iter().any(|t| t.ident() == Some("Acquire")));
    }

    #[test]
    fn raw_strings_are_opaque() {
        let f = scan(
            "t.rs",
            r##"fn f() { let s = r#"x.load(Ordering::SeqCst)"#; }"##,
        );
        assert!(!f.tokens.iter().any(|t| t.ident() == Some("SeqCst")));
    }
}
