//! Pass 2 — the `unsafe` audit.
//!
//! Every `unsafe` block, `unsafe fn`, and `unsafe impl` in non-test code
//! must carry its safety argument where a reviewer will see it:
//!
//! * a `// SAFETY:` (or `/* SAFETY: */`) comment within 3 lines above the
//!   `unsafe` keyword, on its line, or on the line right after it (the
//!   first line inside the block); or
//! * for `unsafe fn` / `unsafe impl` items only, a `# Safety` section (or
//!   `SAFETY:` note) anywhere in the contiguous doc-comment/attribute
//!   block immediately above the item — the rustdoc convention.

use crate::lexer::SourceFile;
use crate::report::{Pass, Report, Violation};

/// How many lines above an `unsafe` keyword a `SAFETY:` comment may sit.
const WINDOW_ABOVE: u32 = 3;
/// Allow the comment on the first line inside the block, too.
const WINDOW_BELOW: u32 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnsafeKind {
    Block,
    Fn,
    Impl,
}

impl UnsafeKind {
    fn describe(self) -> &'static str {
        match self {
            UnsafeKind::Block => "unsafe block",
            UnsafeKind::Fn => "unsafe fn",
            UnsafeKind::Impl => "unsafe impl",
        }
    }
}

/// A maximal run of comments on adjacent lines, treated as one logical
/// comment: a `// SAFETY: ...` explanation spanning several lines counts
/// as near an `unsafe` as long as the run's *last* line is.
struct CommentRun {
    start: u32,
    end: u32,
    has_safety: bool,
}

fn comment_runs(file: &SourceFile) -> Vec<CommentRun> {
    let mut runs: Vec<CommentRun> = Vec::new();
    for c in &file.comments {
        let end = comment_end_line(c);
        let has_safety = c.text.contains("SAFETY:");
        match runs.last_mut() {
            Some(run) if c.line <= run.end + 1 => {
                run.end = run.end.max(end);
                run.has_safety |= has_safety;
            }
            _ => runs.push(CommentRun {
                start: c.line,
                end,
                has_safety,
            }),
        }
    }
    runs
}

/// Runs the unsafe audit for one file, appending findings to `report`.
pub fn check(file: &SourceFile, report: &mut Report) {
    let runs = comment_runs(file);
    for (i, t) in file.tokens.iter().enumerate() {
        if t.test || t.ident() != Some("unsafe") {
            continue;
        }
        // `unsafe fn(..)` with no name after `fn` is a function-pointer
        // *type* (e.g. a field `drop_fn: unsafe fn(*mut ())`), not an
        // unsafe item — nothing to audit.
        if file.tokens.get(i + 1).and_then(|n| n.ident()) == Some("fn")
            && file.tokens.get(i + 2).and_then(|n| n.ident()).is_none()
        {
            continue;
        }
        report.unsafe_audited += 1;
        let kind = match file.tokens.get(i + 1).and_then(|n| n.ident()) {
            Some("fn") => UnsafeKind::Fn,
            Some("impl") => UnsafeKind::Impl,
            // `unsafe extern "C" fn`, `unsafe trait`, or `unsafe {`.
            Some("extern") | Some("trait") => UnsafeKind::Fn,
            _ => UnsafeKind::Block,
        };
        let line = t.line;

        let near = runs.iter().any(|r| {
            r.has_safety && r.end + WINDOW_ABOVE >= line && r.start <= line + WINDOW_BELOW
        });
        let documented = match kind {
            UnsafeKind::Block => false,
            _ => doc_block_has_safety(file, line),
        };
        if !near && !documented {
            report.violations.push(Violation {
                file: file.path.clone(),
                line,
                pass: Pass::UnsafeAudit,
                message: format!(
                    "{} without a safety argument: add `// SAFETY: ...` within \
                     {WINDOW_ABOVE} lines{}",
                    kind.describe(),
                    if kind == UnsafeKind::Block {
                        ""
                    } else {
                        " or a `# Safety` doc section"
                    }
                ),
            });
        }
    }
}

/// True if the contiguous comment run ending directly above `line` (doc
/// comments and attributes count as contiguous) mentions `# Safety` or
/// `SAFETY:`.
fn doc_block_has_safety(file: &SourceFile, line: u32) -> bool {
    // Collect comment lines above the item; walk upward while each comment
    // line is adjacent (within 1 line of the previous, attributes allowed
    // between — approximated by a 2-line tolerance).
    let mut expect = line.saturating_sub(1);
    let mut found = false;
    for c in file.comments.iter().rev() {
        if c.line > expect {
            continue;
        }
        if expect.saturating_sub(comment_end_line(c)) > 2 {
            break;
        }
        if c.text.contains("# Safety") || c.text.contains("SAFETY:") {
            found = true;
            break;
        }
        expect = c.line.saturating_sub(1);
    }
    found
}

/// Last line a (possibly multi-line block) comment touches.
fn comment_end_line(c: &crate::lexer::Comment) -> u32 {
    c.line + c.text.matches('\n').count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run(src: &str) -> Report {
        let mut report = Report::default();
        check(&scan("x.rs", src), &mut report);
        report
    }

    #[test]
    fn commented_block_is_clean() {
        let r = run("fn f() {\n    // SAFETY: exclusive access.\n    unsafe { go() }\n}");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn comment_inside_block_counts() {
        let r = run(
            "fn f() {\n    unsafe {\n        // SAFETY: exclusive access.\n        go()\n    }\n}",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn bare_block_is_flagged() {
        let r = run("fn f() { unsafe { go() } }");
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("unsafe block"));
    }

    #[test]
    fn comment_too_far_is_flagged() {
        let r = run("// SAFETY: too far away.\n\n\n\n\nfn f() { unsafe { go() } }");
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn long_comment_run_counts_from_its_last_line() {
        let r = run(
            "fn f() {\n    // SAFETY: a long argument\n    // spanning\n    // five\n    \
             // whole\n    // lines.\n    unsafe { go() }\n}",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn doc_safety_section_covers_unsafe_fn() {
        let r = run(
            "/// Frees the thing.\n///\n/// # Safety\n///\n/// Caller must own `p`.\n\
             pub unsafe fn free(p: *mut u8) { drop_it(p) }",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn undocumented_unsafe_fn_is_flagged() {
        let r = run("pub unsafe fn free(p: *mut u8) { drop_it(p) }");
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("unsafe fn"));
    }

    #[test]
    fn unsafe_impl_wants_safety_comment() {
        let r = run("unsafe impl Send for Foo {}");
        assert_eq!(r.violations.len(), 1);
        let r = run("// SAFETY: Foo owns nothing thread-bound.\nunsafe impl Send for Foo {}");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn test_code_is_skipped() {
        let r = run("#[cfg(test)]\nmod tests { fn t() { unsafe { go() } } }");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let r = run("struct D { drop_fn: unsafe fn(*mut ()) }");
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.unsafe_audited, 0);
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let r = run("fn f() { let s = \"unsafe { }\"; } // unsafe in prose\n");
        assert!(r.is_clean(), "{r}");
    }
}
