//! Pass 1 — atomics-ordering conformance.
//!
//! Detects every atomic call site in non-test code — a method call named
//! `load`/`store`/`swap`/`compare_exchange{,_weak}`/`fetch_*`, or a
//! `fence(...)` call, whose arguments name at least one ordering literal —
//! and enforces:
//!
//! 1. every site matches a `[[site]]` row in `orderings.toml`
//!    (file + enclosing function + op + exact orderings);
//! 2. every manifest row matches at least one site (no stale rows);
//! 3. no `SeqCst` anywhere in non-test code, except the argument of a
//!    manifested `fence` (DESIGN.md §8 keeps exactly the store-load
//!    fences that `Acquire`/`Release` cannot replace);
//! 4. no `compare_exchange` failure ordering stronger than the load
//!    component of its success ordering.
//!
//! Forwarding shims that take an `Ordering` parameter (e.g.
//! `Atomic::load(&self, ord, guard)` calling `self.data.load(ord)`) are
//! deliberately not sites: DESIGN.md §8's rule is that *call sites* name
//! literal orderings, and those are what the manifest records.

use crate::lexer::{SourceFile, Tok};
use crate::manifest::{Manifest, OPS, ORDERINGS};
use crate::report::{Pass, Report, Violation};

/// A detected atomic call site.
#[derive(Debug)]
pub struct Site {
    /// 1-based line of the operation token.
    pub line: u32,
    /// Enclosing function (`name!` for macro bodies, "" at module scope).
    pub function: String,
    /// The operation name.
    pub op: String,
    /// Ordering literals in argument order (success first for CAS).
    pub orderings: Vec<String>,
    /// Token index range covering the call, for SeqCst accounting.
    pub span: (usize, usize),
}

/// Scans one file for atomic call sites (non-test tokens only).
pub fn detect_sites(file: &SourceFile) -> Vec<Site> {
    let toks = &file.tokens;
    let mut sites = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].test {
            i += 1;
            continue;
        }
        let (op_idx, op) = match site_head(toks, i) {
            Some(x) => x,
            None => {
                i += 1;
                continue;
            }
        };
        // Collect ordering literals inside the balanced argument list.
        let open = op_idx + 1;
        let mut depth = 0usize;
        let mut j = open;
        let mut orderings = Vec::new();
        while j < toks.len() {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if let Some(id) = toks[j].ident() {
                if ORDERINGS.contains(&id) {
                    orderings.push(id.to_string());
                }
            }
            j += 1;
        }
        if orderings.is_empty() {
            // A forwarding shim (parameterized ordering) or an unrelated
            // method that happens to share a name; not a site.
            i = op_idx + 1;
            continue;
        }
        sites.push(Site {
            line: toks[op_idx].line,
            function: file.scopes[op_idx].clone(),
            op,
            orderings,
            span: (i, j + 1),
        });
        i = j + 1;
    }
    sites
}

/// If a site's call head starts at `i`, returns `(op token index, op)`.
/// Method sites are `.op(`; fence sites are a bare `fence(` path segment
/// that is not a declaration or import.
fn site_head(toks: &[Tok], i: usize) -> Option<(usize, String)> {
    if toks[i].is_punct('.') {
        let op = toks.get(i + 1)?.ident()?;
        if OPS.contains(&op) && toks.get(i + 2)?.is_punct('(') {
            return Some((i + 1, op.to_string()));
        }
        return None;
    }
    if toks[i].ident() == Some("fence") && toks.get(i + 1)?.is_punct('(') {
        // Exclude `fn fence(` definitions (the facade's passthrough).
        if i > 0 && toks[i - 1].ident() == Some("fn") {
            return None;
        }
        return Some((i, "fence".to_string()));
    }
    None
}

/// The load component of a success ordering: what a failed CAS's read may
/// legitimately be as strong as.
fn load_component(success: &str) -> &'static str {
    match success {
        "Relaxed" | "Release" => "Relaxed",
        "Acquire" | "AcqRel" => "Acquire",
        _ => "SeqCst",
    }
}

fn load_rank(ord: &str) -> u8 {
    match ord {
        "Relaxed" => 0,
        "Acquire" => 1,
        _ => 2, // SeqCst
    }
}

/// Runs the ordering pass for one file, appending findings to `report`.
pub fn check(file: &SourceFile, manifest: &Manifest, report: &mut Report) -> Vec<Site> {
    let sites = detect_sites(file);
    report.sites_checked += sites.len();

    for site in &sites {
        let is_cas = site.op.starts_with("compare_exchange");
        // Rule 4: failure stronger than success's load component.
        if is_cas && site.orderings.len() >= 2 {
            let (succ, fail) = (&site.orderings[0], &site.orderings[1]);
            if load_rank(fail) > load_rank(load_component(succ)) {
                report.violations.push(Violation {
                    file: file.path.clone(),
                    line: site.line,
                    pass: Pass::Ordering,
                    message: format!(
                        "compare_exchange failure ordering {fail} is stronger than \
                         success {succ} provides on the read ({}); a failed CAS \
                         must not synchronize more than a successful one",
                        load_component(succ)
                    ),
                });
            }
        }

        // Rule 1: manifest conformance.
        let rows = manifest.rows_for(&file.path, &site.function, &site.op);
        let matched = rows.iter().any(|r| {
            r.ordering == site.orderings[0]
                && (!is_cas || r.failure.as_deref() == site.orderings.get(1).map(String::as_str))
        });
        if !matched {
            let observed = site.orderings.join("/");
            let message = if rows.is_empty() {
                format!(
                    "unmanifested atomic site: {}({observed}) in fn {} — add a \
                     justified [[site]] row to crates/analysis/orderings.toml \
                     (and DESIGN.md §8)",
                    site.op,
                    scope_name(&site.function),
                )
            } else {
                let expected: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        r.failure
                            .as_deref()
                            .map(|f| format!("{}/{f}", r.ordering))
                            .unwrap_or_else(|| r.ordering.clone())
                    })
                    .collect();
                format!(
                    "ordering mismatch: {}({observed}) in fn {} — manifest rows \
                     for this site say {}",
                    site.op,
                    scope_name(&site.function),
                    expected.join(" or "),
                )
            };
            report.violations.push(Violation {
                file: file.path.clone(),
                line: site.line,
                pass: Pass::Ordering,
                message,
            });
        }
    }

    // Rule 3: SeqCst accounting. Allowed only inside a manifested fence.
    for (i, t) in file.tokens.iter().enumerate() {
        if t.test || t.ident() != Some("SeqCst") {
            continue;
        }
        let covered = sites.iter().any(|s| {
            s.op == "fence"
                && i >= s.span.0
                && i < s.span.1
                && manifest
                    .rows_for(&file.path, &s.function, "fence")
                    .iter()
                    .any(|r| r.ordering == "SeqCst")
        });
        if !covered {
            report.violations.push(Violation {
                file: file.path.clone(),
                line: t.line,
                pass: Pass::Ordering,
                message: "SeqCst in non-test code: DESIGN.md §8 permits SeqCst only \
                          on manifested fences (store-load races); pick a per-site \
                          Acquire/Release/Relaxed ordering and manifest it"
                    .to_string(),
            });
        }
    }

    sites
}

/// Cross-file staleness check (rule 2): every manifest row must have
/// matched at least one detected site.
pub fn check_stale_rows(manifest: &Manifest, all_sites: &[(String, Site)], report: &mut Report) {
    for row in &manifest.sites {
        let hit = all_sites.iter().any(|(path, s)| {
            *path == row.file
                && s.function == row.function
                && s.op == row.op
                && s.orderings[0] == row.ordering
                && (!row.op.starts_with("compare_exchange")
                    || row.failure.as_deref() == s.orderings.get(1).map(String::as_str))
        });
        if !hit {
            report.violations.push(Violation {
                file: "crates/analysis/orderings.toml".to_string(),
                line: row.line,
                pass: Pass::Manifest,
                message: format!(
                    "stale manifest row: no atomic site matches `{row}` — the code \
                     moved; update the row (and DESIGN.md §8) or delete it"
                ),
            });
        }
    }
}

fn scope_name(function: &str) -> &str {
    if function.is_empty() {
        "<module scope>"
    } else {
        function
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::manifest::parse;

    fn run(src: &str, manifest: &str) -> Report {
        let f = scan("x.rs", src);
        let m = parse(manifest).unwrap();
        let mut report = Report::default();
        let sites = check(&f, &m, &mut report);
        let tagged: Vec<(String, Site)> = sites.into_iter().map(|s| (f.path.clone(), s)).collect();
        check_stale_rows(&m, &tagged, &mut report);
        report
    }

    const ROW: &str = "[[site]]\nfile = \"x.rs\"\nfunction = \"f\"\nop = \"load\"\nordering = \"Acquire\"\nwhy = \"w\"\n";

    #[test]
    fn manifested_site_is_clean() {
        let r = run("fn f() { x.load(Ordering::Acquire); }", ROW);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unmanifested_site_is_flagged() {
        let r = run("fn f() { x.store(1, Ordering::Release); }", "");
        assert_eq!(r.by_pass(Pass::Ordering).len(), 1);
    }

    #[test]
    fn ordering_mismatch_is_flagged() {
        let r = run("fn f() { x.load(Ordering::Relaxed); }", ROW);
        let v = r.by_pass(Pass::Ordering);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("mismatch"), "{}", v[0].message);
    }

    #[test]
    fn stale_row_is_flagged() {
        let r = run("fn g() {}", ROW);
        assert_eq!(r.by_pass(Pass::Manifest).len(), 1);
    }

    #[test]
    fn seqcst_load_is_flagged_even_if_unmanifestable() {
        let r = run("fn f() { x.load(Ordering::SeqCst); }", "");
        // Unmanifested site + SeqCst literal.
        assert_eq!(r.by_pass(Pass::Ordering).len(), 2);
    }

    #[test]
    fn manifested_seqcst_fence_is_allowed() {
        let m = "[[site]]\nfile = \"x.rs\"\nfunction = \"f\"\nop = \"fence\"\nordering = \"SeqCst\"\nwhy = \"store-load race\"\n";
        let r = run("fn f() { fence(Ordering::SeqCst); }", m);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unmanifested_seqcst_fence_is_flagged() {
        let r = run("fn f() { fence(Ordering::SeqCst); }", "");
        assert_eq!(r.by_pass(Pass::Ordering).len(), 2);
    }

    #[test]
    fn cas_failure_stronger_than_success_is_flagged() {
        let r = run(
            "fn f() { x.compare_exchange(a, b, Ordering::Release, Ordering::Acquire); }",
            "[[site]]\nfile = \"x.rs\"\nfunction = \"f\"\nop = \"compare_exchange\"\n\
             ordering = \"Release\"\nfailure = \"Acquire\"\nwhy = \"w\"\n",
        );
        let v = r.by_pass(Pass::Ordering);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("stronger"), "{}", v[0].message);
    }

    #[test]
    fn acqrel_acquire_cas_is_fine() {
        let r = run(
            "fn f() { x.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire); }",
            "[[site]]\nfile = \"x.rs\"\nfunction = \"f\"\nop = \"compare_exchange\"\n\
             ordering = \"AcqRel\"\nfailure = \"Acquire\"\nwhy = \"w\"\n",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn forwarding_shim_is_not_a_site() {
        let r = run(
            "fn load_with(&self, ord: Ordering) { self.data.load(ord); }",
            "",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn test_code_is_skipped() {
        let r = run(
            "#[cfg(test)]\nmod tests { fn t() { x.load(Ordering::SeqCst); } }",
            "",
        );
        assert!(r.is_clean(), "{r}");
    }
}
