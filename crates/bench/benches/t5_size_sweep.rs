//! **T5 (bench)** — read-heavy throughput as the key range grows
//! (logarithmic-depth check is in `exp_size_sweep`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbbst_harness::{prefill, run_ops, WorkloadSpec};
use std::time::Duration;

fn t5(c: &mut Criterion) {
    let mut group = c.benchmark_group("T5_size_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    const THREADS: usize = 2;
    const OPS_PER_THREAD: u64 = 20_000;

    for exp in [8u32, 12, 16] {
        let spec = WorkloadSpec::read_heavy(1 << exp);
        for (name, make) in [
            nbbst_bench::scalable_structures()[0],
            nbbst_bench::scalable_structures()[1],
        ] {
            group.throughput(criterion::Throughput::Elements(
                OPS_PER_THREAD * THREADS as u64,
            ));
            group.bench_function(BenchmarkId::new(name, format!("2^{exp}")), |b| {
                let map = make();
                prefill(&*map, &spec);
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let r = run_ops(&*map, &spec, THREADS, OPS_PER_THREAD);
                        total += r.elapsed;
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, t5);
criterion_main!(benches);
