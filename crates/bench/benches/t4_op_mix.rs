//! **T4 (bench)** — operation-mix sweep on the EFRB tree and the
//! skiplist incumbent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbbst_harness::{prefill, run_ops, OpMix, WorkloadSpec};
use std::time::Duration;

fn t4(c: &mut Criterion) {
    let mut group = c.benchmark_group("T4_op_mix");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    const THREADS: usize = 4;
    const OPS_PER_THREAD: u64 = 20_000;

    for (mix_name, mix) in [
        ("read_only", OpMix::READ_ONLY),
        ("read_heavy", OpMix::READ_HEAVY),
        ("balanced", OpMix::BALANCED),
        ("update_only", OpMix::UPDATE_ONLY),
    ] {
        let spec = WorkloadSpec {
            mix,
            ..WorkloadSpec::read_heavy(1 << 14)
        };
        for (name, make) in [
            nbbst_bench::scalable_structures()[0], // nbbst
            nbbst_bench::scalable_structures()[1], // skiplist
        ] {
            group.throughput(criterion::Throughput::Elements(
                OPS_PER_THREAD * THREADS as u64,
            ));
            group.bench_function(BenchmarkId::new(name, mix_name), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let map = make();
                        prefill(&*map, &spec);
                        let r = run_ops(&*map, &spec, THREADS, OPS_PER_THREAD);
                        total += r.elapsed;
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, t4);
criterion_main!(benches);
