//! **F4 (bench)** — cost of the Figure-4 transition instrumentation:
//! identical single-threaded batches on a tree with and without the CAS
//! counters attached. Verifies the stats used to regenerate Figure 4 do
//! not distort the measured system.

use criterion::{criterion_group, criterion_main, Criterion};
use nbbst_core::NbBst;
use std::time::Duration;

fn batch(tree: &NbBst<u64, u64>) {
    let mut x = 7u64;
    for _ in 0..10_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % 512;
        match x % 3 {
            0 => {
                tree.insert_entry(k, k).ok();
            }
            1 => {
                tree.remove_key(&k);
            }
            _ => {
                tree.contains_key(&k);
            }
        }
    }
}

fn f4(c: &mut Criterion) {
    let mut group = c.benchmark_group("F4_stats_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.throughput(criterion::Throughput::Elements(10_000));
    group.bench_function("stats_off", |b| {
        let tree: NbBst<u64, u64> = NbBst::new();
        b.iter(|| batch(&tree));
    });
    group.bench_function("stats_on", |b| {
        let tree: NbBst<u64, u64> = NbBst::with_stats();
        b.iter(|| batch(&tree));
    });
    group.finish();
}

criterion_group!(benches, f4);
criterion_main!(benches);
