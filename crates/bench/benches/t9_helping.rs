//! **T9 (bench)** — update-only batches under shrinking key ranges: the
//! cost of contention (helping, retries, CAS failures) in time units.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbbst_harness::{prefill, run_ops, OpMix, WorkloadSpec};
use std::time::Duration;

fn t9(c: &mut Criterion) {
    let mut group = c.benchmark_group("T9_contention");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    const THREADS: usize = 4;
    const OPS_PER_THREAD: u64 = 15_000;

    for exp in [2u32, 6, 10, 14] {
        let spec = WorkloadSpec {
            mix: OpMix::UPDATE_ONLY,
            ..WorkloadSpec::read_heavy(1 << exp)
        };
        group.throughput(criterion::Throughput::Elements(
            OPS_PER_THREAD * THREADS as u64,
        ));
        group.bench_function(
            BenchmarkId::new("nbbst_update_only", format!("2^{exp}")),
            |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let map = (nbbst_bench::scalable_structures()[0].1)();
                        prefill(&*map, &spec);
                        let r = run_ops(&*map, &spec, THREADS, OPS_PER_THREAD);
                        total += r.elapsed;
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, t9);
criterion_main!(benches);
