//! **T3 (bench)** — 100% Find batches across structures and thread
//! counts ("Find operations only perform reads of shared memory").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbbst_harness::{prefill, run_ops, OpMix, WorkloadSpec};
use std::time::Duration;

fn t3(c: &mut Criterion) {
    let mut group = c.benchmark_group("T3_find_only");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let spec = WorkloadSpec {
        mix: OpMix::READ_ONLY,
        ..WorkloadSpec::read_heavy(1 << 14)
    };
    const OPS_PER_THREAD: u64 = 30_000;

    for threads in [1usize, 4] {
        for (name, make) in nbbst_bench::scalable_structures() {
            group.throughput(criterion::Throughput::Elements(
                OPS_PER_THREAD * threads as u64,
            ));
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                // Reuse one prefilled map across iterations (reads don't
                // perturb it).
                let map = make();
                prefill(&*map, &spec);
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let r = run_ops(&*map, &spec, threads, OPS_PER_THREAD);
                        total += r.elapsed;
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, t3);
criterion_main!(benches);
