//! **T8 (bench)** — reclamation cost: update batches on the EFRB tree
//! with the collector running freely vs. with a stalled guard pinning the
//! epoch (garbage accumulates, no frees), plus the raw retire/free cost
//! of the two substrates on a stack-shaped workload.

use criterion::{criterion_group, criterion_main, Criterion};
use nbbst_core::NbBst;
use nbbst_dictionary::ConcurrentMap;
use nbbst_reclaim::hazard::Domain;
use std::time::{Duration, Instant};

fn churn(tree: &NbBst<u64, u64>, ops: u64) {
    let mut x = 1u64;
    for _ in 0..ops {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % 1024;
        if x & 1 == 0 {
            tree.insert(k, k);
        } else {
            tree.remove(&k);
        }
    }
}

fn t8(c: &mut Criterion) {
    let mut group = c.benchmark_group("T8_reclamation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    const OPS: u64 = 50_000;

    group.throughput(criterion::Throughput::Elements(OPS));
    group.bench_function("ebr_reclaiming", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let tree: NbBst<u64, u64> = NbBst::new();
                let start = Instant::now();
                churn(&tree, OPS);
                total += start.elapsed();
            }
            total
        });
    });
    group.bench_function("ebr_stalled_guard", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let tree: NbBst<u64, u64> = NbBst::new();
                let handle = tree.collector().register();
                let _guard = handle.pin(); // blocks all frees for the batch
                let start = Instant::now();
                churn(&tree, OPS);
                total += start.elapsed();
            }
            total
        });
    });
    // Raw substrate comparison: allocate-retire cycles.
    group.bench_function("substrate_ebr_retire", |b| {
        let collector = nbbst_reclaim::Collector::new();
        b.iter(|| {
            let guard = collector.pin();
            let a = nbbst_reclaim::Atomic::new(0u64);
            let s = a.load(std::sync::atomic::Ordering::SeqCst, &guard);
            unsafe { guard.defer_destroy(s) };
        });
    });
    group.bench_function("substrate_hp_retire", |b| {
        let domain = Domain::new();
        b.iter(|| {
            let p = Box::into_raw(Box::new(0u64));
            unsafe { domain.retire(p) };
        });
    });
    group.finish();
}

criterion_group!(benches, t8);
criterion_main!(benches);
