//! **T1 (bench)** — throughput vs. thread count for every structure,
//! measured as time per fixed batch of mixed operations (90/5/5).
//!
//! Criterion's lower-is-better time per batch corresponds to the
//! higher-is-better Mops/s column of `exp_scalability`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbbst_harness::{prefill, run_ops, WorkloadSpec};
use std::time::Duration;

fn t1(c: &mut Criterion) {
    let mut group = c.benchmark_group("T1_scalability_90f5i5d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let spec = WorkloadSpec::read_heavy(1 << 14);
    const OPS_PER_THREAD: u64 = 20_000;

    for threads in [1usize, 2, 4] {
        for (name, make) in nbbst_bench::scalable_structures() {
            group.throughput(criterion::Throughput::Elements(
                OPS_PER_THREAD * threads as u64,
            ));
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let map = make();
                        prefill(&*map, &spec);
                        let r = run_ops(&*map, &spec, threads, OPS_PER_THREAD);
                        total += r.elapsed;
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, t1);
criterion_main!(benches);
