//! **T2 (bench)** — update-only batches over disjoint per-thread key
//! slices vs one shared range, on the EFRB tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbbst_core::NbBst;
use nbbst_dictionary::ConcurrentMap;
use std::time::{Duration, Instant};

fn batch(tree: &NbBst<u64, u64>, threads: usize, disjoint: bool, total_range: u64, ops: u64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = &*tree;
            s.spawn(move || {
                let slice = total_range / threads as u64;
                let (base, span) = if disjoint {
                    (t as u64 * slice, slice)
                } else {
                    (0, total_range)
                };
                let mut x = t as u64 + 1;
                for _ in 0..ops {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = base + x % span;
                    if x & 1 == 0 {
                        tree.insert(k, k);
                    } else {
                        tree.remove(&k);
                    }
                }
            });
        }
    });
}

fn t2(c: &mut Criterion) {
    let mut group = c.benchmark_group("T2_disjoint_vs_overlapping");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    const THREADS: usize = 4;
    const OPS: u64 = 20_000;
    const RANGE: u64 = 1 << 14;

    for (label, disjoint) in [("disjoint", true), ("overlapping", false)] {
        group.throughput(criterion::Throughput::Elements(OPS * THREADS as u64));
        group.bench_with_input(BenchmarkId::new(label, THREADS), &disjoint, |b, &dj| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let tree: NbBst<u64, u64> = NbBst::new();
                    let start = Instant::now();
                    batch(&tree, THREADS, dj, RANGE, OPS);
                    total += start.elapsed();
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, t2);
criterion_main!(benches);
