//! Micro-benchmarks of individual operations: EFRB tree vs. the
//! sequential model vs. `BTreeMap` (single-threaded floor costs), plus
//! Search path length effects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbbst_core::NbBst;
use nbbst_dictionary::SeqMap;
use nbbst_model::LeafBst;
use std::time::Duration;

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_ops");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for n in [1_000u64, 100_000] {
        // Prefilled structures.
        let tree: NbBst<u64, u64> = NbBst::new();
        let mut model: LeafBst<u64, u64> = LeafBst::new();
        let mut btree = std::collections::BTreeMap::new();
        let mut x = 3u64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % (n * 2);
            tree.insert_entry(k, k).ok();
            SeqMap::insert(&mut model, k, k);
            SeqMap::insert(&mut btree, k, k);
        }

        group.bench_function(BenchmarkId::new("nbbst_contains", n), |b| {
            let mut y = 17u64;
            b.iter(|| {
                y ^= y << 13;
                y ^= y >> 7;
                y ^= y << 17;
                std::hint::black_box(tree.contains_key(&(y % (n * 2))))
            });
        });
        group.bench_function(BenchmarkId::new("leafbst_contains", n), |b| {
            let mut y = 17u64;
            b.iter(|| {
                y ^= y << 13;
                y ^= y >> 7;
                y ^= y << 17;
                std::hint::black_box(SeqMap::contains(&model, &(y % (n * 2))))
            });
        });
        group.bench_function(BenchmarkId::new("btreemap_contains", n), |b| {
            let mut y = 17u64;
            b.iter(|| {
                y ^= y << 13;
                y ^= y >> 7;
                y ^= y << 17;
                std::hint::black_box(SeqMap::contains(&btree, &(y % (n * 2))))
            });
        });
        group.bench_function(BenchmarkId::new("nbbst_contains_with_cleanup", n), |b| {
            // The Section-6 cleaning search reads the update word per hop;
            // this quantifies that extra cost against plain contains.
            let mut y = 17u64;
            b.iter(|| {
                y ^= y << 13;
                y ^= y >> 7;
                y ^= y << 17;
                std::hint::black_box(tree.contains_with_cleanup(&(y % (n * 2))))
            });
        });
        group.bench_function(BenchmarkId::new("nbbst_insert_remove", n), |b| {
            let mut y = 29u64;
            b.iter(|| {
                y ^= y << 13;
                y ^= y >> 7;
                y ^= y << 17;
                let k = (n * 2) + y % 64; // churn a side range
                tree.insert_entry(k, k).ok();
                tree.remove_key(&k);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
