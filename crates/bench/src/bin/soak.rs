//! Long-running soak test: continuous mixed load with periodic crash
//! injection, cleaning searches and validation sweeps, for as long as you
//! let it run.
//!
//! ```bash
//! cargo run --release -p nbbst-bench --bin soak                    # 10 s
//! cargo run --release -p nbbst-bench --bin soak duration_ms=600000 # 10 min
//! ```
//!
//! Exits non-zero at the first invariant/identity/accounting violation.

use nbbst_core::raw::{DeleteSearch, MarkOutcome, RawDelete, RawInsert};
use nbbst_core::NbBst;
use nbbst_dictionary::ConcurrentMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

const RANGE: u64 = 1 << 10;

fn main() {
    let args = nbbst_bench::ExpArgs::parse(10_000);
    nbbst_bench::banner("SOAK", "continuous chaos soak", "whole-paper torture");
    let threads = args.threads.unwrap_or(6);
    let deadline = Instant::now() + args.duration();

    let mut cycle = 0u64;
    let total_ops = AtomicU64::new(0);
    while Instant::now() < deadline {
        cycle += 1;
        let tree: NbBst<u64, u64> = NbBst::with_stats();
        for k in (0..RANGE).step_by(2) {
            tree.insert(k, k);
        }

        // Crash a handful of operations mid-circuit.
        let mut corpses = 0;
        for i in 0..6u64 {
            match i % 3 {
                0 => {
                    let mut ins = RawInsert::new(&tree, RANGE + i, 0);
                    if ins.search().is_ready() && ins.flag() {
                        corpses += 1;
                        ins.abandon();
                    }
                }
                1 => {
                    let mut del = RawDelete::new(&tree, (i * 97) % RANGE);
                    if del.search() == DeleteSearch::Ready && del.flag() {
                        corpses += 1;
                        del.abandon();
                    }
                }
                _ => {
                    let mut del = RawDelete::new(&tree, (i * 131) % RANGE);
                    if del.search() == DeleteSearch::Ready
                        && del.flag()
                        && del.mark() == MarkOutcome::Marked
                    {
                        corpses += 1;
                        del.abandon();
                    }
                }
            }
        }

        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for tid in 0..threads as u64 {
                let tree = &tree;
                let stop = &stop;
                let total_ops = &total_ops;
                s.spawn(move || {
                    let mut x = cycle * 1_000 + tid + 1;
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..256 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let k = x % (RANGE * 2);
                            match x % 5 {
                                0 | 3 => {
                                    tree.insert(k, k);
                                }
                                1 => {
                                    tree.remove(&k);
                                }
                                2 => {
                                    tree.contains(&k);
                                }
                                _ => {
                                    tree.contains_with_cleanup(&k);
                                }
                            }
                            ops += 1;
                        }
                    }
                    total_ops.fetch_add(ops, Ordering::Relaxed);
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(300));
            stop.store(true, Ordering::Relaxed);
        });

        // Validation sweep.
        if let Err(e) = tree.check_invariants_allowing(true) {
            eprintln!("cycle {cycle}: INVARIANT VIOLATION: {e}");
            std::process::exit(1);
        }
        if let Err(e) = tree
            .stats()
            .expect("stats")
            .check_figure4_allowing_abandoned()
        {
            eprintln!("cycle {cycle}: FIGURE-4 VIOLATION: {e}");
            std::process::exit(1);
        }
        let snapshot = tree.keys_snapshot();
        let observed = (0..RANGE * 2).filter(|k| tree.contains(k)).count();
        if snapshot.len() != observed {
            eprintln!(
                "cycle {cycle}: MEMBERSHIP MISMATCH: snapshot {} vs contains {}",
                snapshot.len(),
                observed
            );
            std::process::exit(1);
        }
        println!(
            "cycle {cycle}: ok ({corpses} corpses, {} keys, {} total ops so far)",
            snapshot.len(),
            total_ops.load(Ordering::Relaxed)
        );
    }
    println!(
        "SOAK PASSED: {cycle} cycles, {} operations, zero violations",
        total_ops.load(Ordering::Relaxed)
    );
}
