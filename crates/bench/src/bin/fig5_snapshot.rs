//! **F5** — regenerate the paper's Figure 5: a snapshot of the data
//! structure with a doomed `Delete` and a winning `Insert` in flight at
//! the same time.
//!
//! The figure shows leaves A, C, E with internal nodes B, D; a
//! `Delete(C)`... (caption: `Delete(E)`) has DFlagged the upper internal
//! node while an `Insert(F)` has IFlagged the lower one. We reconstruct
//! the same configuration with numeric keys, pause both operations
//! mid-flight, render the tree with its states and Info records, and then
//! play out the paper's prediction: the insert is "now guaranteed to
//! succeed", the delete is "doomed to fail" (its mark CAS fails and it
//! backtracks).

use nbbst_core::raw::{MarkOutcome, RawDelete, RawInsert};
use nbbst_core::{NbBst, State};

fn main() {
    nbbst_bench::banner(
        "F5",
        "in-flight Delete + Insert snapshot",
        "Figure 5 and Section 4.1",
    );
    // Leaves A=10, C=30, E=50 (figure letters), internals keyed by
    // insertion order; F=60 is the incoming insert.
    let t: NbBst<u64, u64> = NbBst::new();
    for k in [10u64, 30, 50] {
        t.insert_entry(k, k).unwrap();
    }
    println!("initial tree (leaves A=10, C=30, E=50):\n{}", t.render());

    // Delete(E=50) performs its dflag CAS and pauses.
    let mut del = RawDelete::new(&t, 50);
    assert!(del.search().is_ready());
    assert!(del.flag());

    // Insert(F=60) performs its iflag CAS and pauses.
    let mut ins = RawInsert::new(&t, 60, 60);
    assert!(ins.search().is_ready());
    assert!(ins.flag());

    println!("snapshot with both operations in flight (compare Figure 5):");
    println!("{}", t.render());
    let dflagged = t.state_of_internal(&30); // E's grandparent region
    println!(
        "  (one internal shows DFlag with a DInfo record, one shows IFlag with an IInfo record)"
    );
    let _ = dflagged;

    // Paper: "The Insert is now guaranteed to succeed."
    assert!(ins.execute_child());
    assert!(ins.unflag());
    drop(ins);
    println!(
        "Insert(F) completed: contains(60) = {}",
        t.contains_key(&60)
    );
    assert!(t.contains_key(&60));

    // Paper: "The Delete operation is doomed to fail: ... the mark CAS
    // will fail ... the DFlag ... will eventually be removed by a
    // backtrack CAS, and the Delete will try deleting key C again."
    assert_eq!(del.mark(), MarkOutcome::Failed);
    assert!(del.backtrack());
    println!("Delete(E)'s mark CAS failed and its flag was backtracked, as the caption predicts.");

    // Had the delete gone through with its stale plan, F would have been
    // unlinked — "the newly inserted key F would disappear from the tree.
    // Instead," the retry deletes E cleanly and F survives:
    assert!(del.search().is_ready());
    assert!(del.flag());
    assert_eq!(del.mark(), MarkOutcome::Marked);
    del.execute_child();
    del.unflag();
    println!("retried Delete(E) succeeded.\nfinal tree:\n{}", t.render());
    assert!(!t.contains_key(&50));
    assert!(t.contains_key(&60));
    t.check_invariants().unwrap();

    // All states must be Clean again.
    for k in [10u64, 30, 60] {
        if let Some(state) = t.state_of_internal(&k) {
            assert_eq!(state, State::Clean);
        }
    }
    println!("F5 reproduced: snapshot, doomed delete, guaranteed insert, backtrack, retry.");
}
