//! **T11** — sharded-frontend sweep: throughput vs. shard count across op
//! mixes and key distributions, plus the shards=1 overhead guardrail.
//!
//! The EFRB tree never blocks, but write-heavy workloads still contend on
//! the flag/mark CAS words near the root. `ShardedNbBst` splits the key
//! space over independent trees, so this sweep answers two questions:
//!
//! * does the routing layer cost anything when it buys nothing
//!   (shards=1 vs the plain tree, single thread — must stay within ~5%)?
//! * how does throughput move with shard count as the mix gets more
//!   write-heavy and the key distribution more skewed (Zipf hotspots
//!   concentrate traffic on few shards, eroding the benefit)?
//!
//! On a 1-CPU container the sweep is a *routing-overhead* measurement,
//! not a contention-relief one — shards only pay off with real
//! parallelism; see EXPERIMENTS.md.
//!
//! The table is echoed to stdout and written to `results/exp_sharding.txt`
//! and `results/exp_sharding.csv` (relative to the working directory).

use nbbst_harness::{prefill, run_for, validate_after_run, KeyDist, OpMix, Table, WorkloadSpec};
use std::io::Write;

const ZIPF_THETA: f64 = 0.99;

fn main() {
    let args = nbbst_bench::ExpArgs::parse(200);
    nbbst_bench::banner(
        "T11",
        "sharded frontend: shard count x op mix x key distribution",
        "beyond the paper (Section 1: updates that do not interfere)",
    );
    let key_range = args.key_range.unwrap_or(1 << 14);
    let threads = args.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    println!(
        "key_range={key_range}, threads={threads}, {} ms per cell\n",
        args.duration_ms
    );

    let mixes: [(&str, OpMix); 3] = [
        ("read-heavy", OpMix::READ_HEAVY),
        ("balanced", OpMix::BALANCED),
        ("update-only", OpMix::UPDATE_ONLY),
    ];
    let dists: [(&str, KeyDist); 2] = [
        ("uniform", KeyDist::Uniform),
        ("zipf-0.99", KeyDist::Zipf { theta: ZIPF_THETA }),
    ];

    // One row per (mix, dist); one throughput column per structure:
    // the plain tree first as the baseline, then each shard count.
    let structures: Vec<nbbst_bench::Factory> = {
        let mut v = vec![nbbst_bench::scalable_structures()
            .into_iter()
            .find(|(n, _)| *n == "nbbst")
            .expect("plain tree factory")];
        v.extend(nbbst_bench::sharded_structures());
        v
    };

    let mut header: Vec<String> = vec!["mix".into(), "dist".into()];
    header.extend(structures.iter().map(|(n, _)| format!("{n} (Mops/s)")));
    let mut table = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    for (mix_name, mix) in mixes {
        for (dist_name, dist) in dists {
            let spec = WorkloadSpec {
                key_range,
                mix,
                dist,
                prefill_fraction: 0.5,
                seed: 71,
            };
            let mut row: Vec<String> = vec![mix_name.into(), dist_name.into()];
            for (name, make) in &structures {
                let map = make();
                prefill(&*map, &spec);
                let r = run_for(&*map, &spec, threads, args.duration());
                validate_after_run(&*map, &spec, &r)
                    .unwrap_or_else(|e| panic!("{name} corrupted ({mix_name}/{dist_name}): {e}"));
                row.push(format!("{:.3}", r.mops()));
            }
            table.row_owned(row);
        }
    }
    println!("{table}");

    // Guardrail: the routing layer at shards=1 vs the plain tree on the
    // T1 single-thread read-heavy point. Best-of-3 on each side to shave
    // scheduler noise; the acceptance bound is <= 5% overhead.
    let t1_spec = WorkloadSpec::read_heavy(1 << 16);
    let best_of_3 = |make: fn() -> nbbst_bench::DynMap| -> f64 {
        (0..3)
            .map(|_| {
                let map = make();
                prefill(&*map, &t1_spec);
                let r = run_for(&*map, &t1_spec, 1, args.duration());
                validate_after_run(&*map, &t1_spec, &r).expect("overhead run corrupted");
                r.mops()
            })
            .fold(0.0f64, f64::max)
    };
    let plain = best_of_3(
        nbbst_bench::scalable_structures()
            .into_iter()
            .find(|(n, _)| *n == "nbbst")
            .expect("plain tree factory")
            .1,
    );
    let routed = best_of_3(
        nbbst_bench::sharded_structures()
            .into_iter()
            .find(|(n, _)| *n == "sharded-1")
            .expect("sharded-1 factory")
            .1,
    );
    let overhead_pct = (plain - routed) / plain * 100.0;
    println!(
        "shards=1 overhead vs plain nbbst (T1 single-thread, best of 3): \
         plain {plain:.3} Mops/s, sharded-1 {routed:.3} Mops/s, overhead {overhead_pct:+.2}%"
    );

    std::fs::create_dir_all("results").expect("create results dir");
    let mut txt = std::fs::File::create("results/exp_sharding.txt").expect("open txt report");
    writeln!(txt, "{table}").expect("write txt report");
    writeln!(
        txt,
        "shards=1 overhead vs plain nbbst (T1 single-thread, best of 3): {overhead_pct:+.2}%"
    )
    .expect("write txt report");
    std::fs::write("results/exp_sharding.csv", table.to_csv()).expect("write csv report");
    println!("reports written to results/exp_sharding.txt and results/exp_sharding.csv");
}
