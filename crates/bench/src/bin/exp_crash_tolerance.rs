//! **T6** — non-blocking progress under crash failures.
//!
//! "The implementation ... tolerates any number of crash failures"
//! (abstract). We crash operations at the worst possible moments — after
//! their flag or mark CAS, while they "hold the lock" in the paper's
//! analogy — and show that the surviving threads complete a fixed batch
//! of conflicting operations anyway, because they help the stalled
//! circuits to completion. The fine-grained **lock-based** baseline is
//! shown for contrast analytically: a thread that crashes while holding a
//! node lock blocks every later update that needs that node forever (we
//! obviously cannot run that to completion, which is the point).

use nbbst_core::raw::{MarkOutcome, RawDelete, RawInsert};
use nbbst_core::NbBst;
use nbbst_dictionary::ConcurrentMap;
use nbbst_harness::Table;
use std::time::Instant;

fn main() {
    let args = nbbst_bench::ExpArgs::parse(0);
    nbbst_bench::banner(
        "T6",
        "crash-failure tolerance via helping",
        "abstract; Sections 3 and 5 (non-blocking progress)",
    );
    let survivors = args.threads.unwrap_or(4);
    const CRASHES: usize = 16;
    const OPS_PER_SURVIVOR: u64 = 20_000;
    const RANGE: u64 = 64; // tiny range: survivors constantly hit the crashed flags

    let tree: NbBst<u64, u64> = NbBst::with_stats();
    for k in 0..RANGE {
        tree.insert(k, k);
    }

    // Crash CRASHES operations mid-circuit: a third after iflag, a third
    // after dflag, a third after mark. Their flags stay planted in the
    // tree; their epoch guards stay pinned (as a crashed thread's would).
    let mut crashed_inserts = Vec::new();
    let mut crashed_deletes = Vec::new();
    let mut planted = 0usize;
    for i in 0..CRASHES {
        match i % 3 {
            0 => {
                let mut ins = RawInsert::new(&tree, RANGE + i as u64, 0);
                if ins.search().is_ready() && ins.flag() {
                    planted += 1;
                    crashed_inserts.push(ins); // held = crashed while flagged
                }
            }
            1 => {
                let key = (i as u64 * 17) % RANGE;
                let mut del = RawDelete::new(&tree, key);
                if matches!(del.search(), nbbst_core::raw::DeleteSearch::Ready) && del.flag() {
                    planted += 1;
                    crashed_deletes.push(del);
                }
            }
            _ => {
                let key = (i as u64 * 29 + 5) % RANGE;
                let mut del = RawDelete::new(&tree, key);
                if matches!(del.search(), nbbst_core::raw::DeleteSearch::Ready)
                    && del.flag()
                    && del.mark() == MarkOutcome::Marked
                {
                    planted += 1;
                    crashed_deletes.push(del);
                }
            }
        }
    }
    println!("planted {planted} crashed operations (stalled after iflag / dflag / mark)\n");

    // Survivors run a conflicting update-heavy batch to completion.
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..survivors {
            let tree = &tree;
            s.spawn(move || {
                let mut x = t as u64 + 1;
                for _ in 0..OPS_PER_SURVIVOR {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % (RANGE * 2);
                    if x & 1 == 0 {
                        tree.insert(k, k);
                    } else {
                        tree.remove(&k);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let stats = tree.stats().expect("stats");
    let mut table = Table::new(&["metric", "value"]);
    table.row_owned(vec!["survivor threads".into(), survivors.to_string()]);
    table.row_owned(vec![
        "survivor ops completed".into(),
        (survivors as u64 * OPS_PER_SURVIVOR).to_string(),
    ]);
    table.row_owned(vec!["elapsed".into(), format!("{elapsed:?}")]);
    table.row_owned(vec!["crashed circuits planted".into(), planted.to_string()]);
    table.row_owned(vec![
        "Help() calls by survivors".into(),
        stats.helps.to_string(),
    ]);
    table.row_owned(vec![
        "help_insert / help_delete / help_marked".into(),
        format!(
            "{} / {} / {}",
            stats.help_insert_calls, stats.help_delete_calls, stats.help_marked_calls
        ),
    ]);
    println!("{table}");

    assert!(
        stats.helps > 0,
        "survivors must have helped the crashed operations"
    );
    // All crashed circuits were completed by helpers (or backtracked); the
    // tree is structurally sound even though the crashed guards are still
    // pinned.
    tree.check_invariants_allowing(true)
        .expect("invariants with crashed ops outstanding");
    println!(
        "\nT6 verified: {} survivor operations completed despite {planted} operations crashed",
        survivors as u64 * OPS_PER_SURVIVOR
    );
    println!("mid-circuit; helping provided the progress the paper proves (lock-freedom).");
    println!("Contrast: in the lock-based baselines a crashed lock holder blocks all");
    println!("conflicting updates forever — no bounded-time version of this experiment exists.");

    // Leak note: crashed drivers still hold their guards; dropping them
    // here models the process exiting, after which the tree tears down.
    drop(crashed_inserts);
    drop(crashed_deletes);
}
