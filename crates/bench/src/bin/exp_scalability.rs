//! **T1** — throughput vs. thread count, EFRB tree vs. baselines.
//!
//! The paper's headline qualitative claim: a non-blocking tree whose
//! updates "do not interfere with one another" keeps its throughput as
//! concurrency grows, while coarse locking serializes and fine-grained
//! locking pays blocking costs — especially once threads are preempted
//! while holding locks (the oversubscribed right edge of the sweep).

use nbbst_harness::{prefill, run_for, validate_after_run, Table, WorkloadSpec};

fn main() {
    let args = nbbst_bench::ExpArgs::parse(300);
    nbbst_bench::banner(
        "T1",
        "throughput scaling, 90/5/5 mix",
        "Section 1/3 (concurrent non-interfering updates)",
    );
    let key_range = args.key_range.unwrap_or(1 << 16);
    let spec = WorkloadSpec::read_heavy(key_range);
    println!("workload: {spec}; {} ms per cell\n", args.duration_ms);

    let threads = match args.threads {
        Some(t) => vec![t],
        None => nbbst_bench::thread_counts(),
    };

    let mut header: Vec<String> = vec!["structure".into()];
    header.extend(threads.iter().map(|t| format!("{t}t (Mops/s)")));
    let mut table = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    for (name, make) in nbbst_bench::scalable_structures() {
        let mut row: Vec<String> = vec![name.to_string()];
        for &t in &threads {
            let map = make();
            prefill(&*map, &spec);
            let r = run_for(&*map, &spec, t, args.duration());
            validate_after_run(&*map, &spec, &r)
                .unwrap_or_else(|e| panic!("{name} corrupted at {t} threads: {e}"));
            row.push(format!("{:.3}", r.mops()));
        }
        table.row_owned(row);
    }
    println!("{table}");
    println!("csv:\n{}", table.to_csv());
}
