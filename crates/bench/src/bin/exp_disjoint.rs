//! **T2** — non-interference of updates on different parts of the tree.
//!
//! "Insert and Delete operations that modify different parts of the tree
//! do not interfere with one another, so they can run completely
//! concurrently" (abstract). We run update-only workloads where each
//! thread either owns a private key range (disjoint) or all threads share
//! one range (overlapping), and compare throughput and the helping/retry
//! counters. Disjoint updates should see (near-)zero helping.

use nbbst_core::NbBst;
use nbbst_dictionary::ConcurrentMap;
use nbbst_harness::Table;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Runs an update-only loop where thread `t` draws keys from
/// `[base_t, base_t + span_t)`.
fn run(
    tree: &NbBst<u64, u64>,
    threads: usize,
    disjoint: bool,
    ms: u64,
    total_range: u64,
) -> (f64, u64) {
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    let mut total = 0u64;
    let mut elapsed = 0.0;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let stop = &stop;
            let barrier = &barrier;
            let tree = &*tree;
            handles.push(s.spawn(move || {
                // Each thread alternates insert/delete over its keys.
                // Both variants cover the same TOTAL key range so tree
                // depth is comparable; only the per-thread slices differ.
                let slice = total_range / threads as u64;
                let (base, span) = if disjoint {
                    (t as u64 * slice, slice)
                } else {
                    (0u64, total_range)
                };
                let mut x = t as u64 + 1;
                let mut ops = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..128 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = base + x % span;
                        if x & 1 == 0 {
                            tree.insert(k, k);
                        } else {
                            tree.remove(&k);
                        }
                        ops += 1;
                    }
                }
                ops
            }));
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(ms));
        stop.store(true, Ordering::Relaxed);
        total = handles.into_iter().map(|h| h.join().unwrap()).sum();
        elapsed = start.elapsed().as_secs_f64();
    });
    (total as f64 / elapsed / 1e6, total)
}

fn main() {
    let args = nbbst_bench::ExpArgs::parse(300);
    nbbst_bench::banner(
        "T2",
        "disjoint vs overlapping update ranges (update-only)",
        "abstract; Section 3 (flags only on 1-2 nodes near the leaf)",
    );
    let threads = args.threads.unwrap_or(4);
    let total_range = args.key_range.unwrap_or(1 << 14);

    let mut table = Table::new(&[
        "variant",
        "Mops/s",
        "helps/update",
        "retries/update",
        "backtracks",
    ]);
    // (range, disjoint, label): same total range for the fair pair, plus a
    // tiny-range row where conflicts are unavoidable.
    let variants: [(u64, bool, &str); 3] = [
        (total_range, true, "disjoint slices"),
        (total_range, false, "overlapping range"),
        (threads as u64 * 4, false, "overlapping, tiny range"),
    ];
    for (range, disjoint, label) in variants {
        let tree: NbBst<u64, u64> = NbBst::with_stats();
        let (mops, _ops) = run(&tree, threads, disjoint, args.duration_ms, range);
        let s = tree.stats().expect("stats");
        let updates = (s.inserts + s.deletes).max(1);
        let retries = (s.insert_retries + s.delete_retries) as f64 / updates as f64;
        table.row_owned(vec![
            label.into(),
            format!("{mops:.3}"),
            format!("{:.5}", s.helps_per_update()),
            format!("{retries:.5}"),
            s.backtrack_success.to_string(),
        ]);
        tree.check_invariants().expect("invariants");
        s.check_figure4().expect("figure 4");
    }
    println!("{table}");
    println!("expected shape: disjoint slices show ~0 helping/retries; overlapping shows");
    println!("more, growing sharply as the shared range shrinks (tiny-range row). On a");
    println!("single-core host conflicts require preemption mid-operation, so the");
    println!("moderate-range numbers are small but the ordering still holds.");
}
