//! **T10** — empirical linearizability checking (the paper's main
//! theorem, tested).
//!
//! Records thousands of short, genuinely concurrent histories against the
//! EFRB tree (and, as a control, every baseline — plus the *broken* naive
//! tree, which must FAIL) and searches each for a valid linearization
//! with the Wing–Gong checker.

use nbbst_core::NbBst;
use nbbst_dictionary::ConcurrentMap;
use nbbst_harness::{
    check_linearizable, check_map_linearizable, record_history, KeyDist, OpMix, Table, WorkloadSpec,
};

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        key_range: 8, // tiny: maximal overlap per history
        mix: OpMix::new(20, 40, 40),
        dist: KeyDist::Uniform,
        prefill_fraction: 0.5,
        seed: 1,
    }
}

fn main() {
    let args = nbbst_bench::ExpArgs::parse(0);
    let rounds = args.key_range.unwrap_or(400) as usize; // reuse knob
    let threads = args.threads.unwrap_or(4);
    let ops_per_thread = 12u64;
    nbbst_bench::banner(
        "T10",
        "linearizability of recorded concurrent histories",
        "abstract + Section 5 (linearization points)",
    );
    println!("{rounds} histories x {threads} threads x {ops_per_thread} ops, keys in [0, 8)\n");

    let mut table = Table::new(&["structure", "histories", "verdict"]);

    // The tree and every honest baseline must pass.
    table.row_owned(vec![
        "nbbst".into(),
        rounds.to_string(),
        match check_map_linearizable(
            NbBst::<u64, u64>::new,
            &spec(),
            threads,
            ops_per_thread,
            rounds,
        ) {
            Ok(()) => "linearizable".into(),
            Err(e) => panic!("nbbst NOT linearizable: {e}"),
        },
    ]);
    table.row_owned(vec![
        "skiplist".into(),
        rounds.to_string(),
        match check_map_linearizable(
            nbbst_baselines::SkipList::<u64, u64>::new,
            &spec(),
            threads,
            ops_per_thread,
            rounds,
        ) {
            Ok(()) => "linearizable".into(),
            Err(e) => panic!("skiplist NOT linearizable: {e}"),
        },
    ]);
    table.row_owned(vec![
        "fine-lock-bst".into(),
        rounds.to_string(),
        match check_map_linearizable(
            nbbst_baselines::FineLockBst::<u64, u64>::new,
            &spec(),
            threads,
            ops_per_thread,
            rounds,
        ) {
            Ok(()) => "linearizable".into(),
            Err(e) => panic!("fine-lock NOT linearizable: {e}"),
        },
    ]);

    // Control: the naive single-CAS tree must eventually produce a
    // non-linearizable history (it loses updates). We wrap it in the
    // ConcurrentMap interface locally.
    struct NaiveWrap(nbbst_baselines::naive::NaiveBst<u64, u64>);
    impl ConcurrentMap<u64, u64> for NaiveWrap {
        fn insert(&self, k: u64, v: u64) -> bool {
            self.0.insert(k, v)
        }
        fn remove(&self, k: &u64) -> bool {
            self.0.remove(k)
        }
        fn contains(&self, k: &u64) -> bool {
            self.0.contains(k)
        }
        fn get(&self, k: &u64) -> Option<u64> {
            self.0.contains(k).then_some(*k)
        }
        fn quiescent_len(&self) -> usize {
            self.0.keys_snapshot().len()
        }
    }

    let mut naive_violation = None;
    for round in 0..rounds.max(2_000) {
        let mut s = spec();
        s.seed = 77 + round as u64;
        let map = NaiveWrap(nbbst_baselines::naive::NaiveBst::new());
        for k in s.prefill_keys() {
            map.insert(k, k);
        }
        let initial = s.prefill_keys();
        let history = record_history(&map, &s, threads, ops_per_thread);
        if let Err(e) = check_linearizable(&history, &initial) {
            naive_violation = Some((round, e));
            break;
        }
    }
    match &naive_violation {
        Some((round, _)) => {
            table.row_owned(vec![
                "naive single-CAS (control)".into(),
                format!("{}", round + 1),
                "VIOLATION found (as required)".into(),
            ]);
        }
        None => {
            // On a single hardware thread the racy window may be too small
            // to hit probabilistically; the deterministic fig3_races
            // binary always exhibits it.
            table.row_owned(vec![
                "naive single-CAS (control)".into(),
                "-".into(),
                "no violation sampled (see fig3_races for the deterministic one)".into(),
            ]);
        }
    }

    println!("{table}");
    if let Some((round, e)) = naive_violation {
        let first_line = e.lines().next().unwrap_or_default().to_string();
        println!("naive violation detail (round {round}): {first_line}");
    }
    println!("\nT10 verified: every recorded nbbst history is linearizable; the broken");
    println!("control is distinguishable by the same checker.");
}
