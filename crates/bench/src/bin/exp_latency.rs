//! **T13** — operation latency tails.
//!
//! The progress property the paper buys is visible in the *tail*: with
//! locks, a preempted lock holder stalls every operation that needs that
//! lock until it is rescheduled (milliseconds); in the EFRB tree the
//! blocked operation helps and completes in microseconds. Under an
//! oversubscribed update-heavy workload, the lock-based structures'
//! p99.9/max latencies blow up while the lock-free structures' stay
//! bounded by path length.

use nbbst_harness::{prefill, run_for, OpMix, Table, WorkloadSpec};

fn main() {
    let args = nbbst_bench::ExpArgs::parse(500);
    nbbst_bench::banner(
        "T13",
        "latency tails under oversubscribed update load",
        "abstract (non-blocking progress) made visible in tail latency",
    );
    // Oversubscribe deliberately: lock-holder preemption is the phenomenon.
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = args.threads.unwrap_or(hw * 8);
    let spec = WorkloadSpec {
        mix: OpMix::UPDATE_ONLY,
        ..WorkloadSpec::read_heavy(args.key_range.unwrap_or(1 << 12))
    };
    println!(
        "workload: {spec} x {threads} threads (hw={hw}), {} ms\n",
        args.duration_ms
    );

    let mut table = Table::new(&[
        "structure",
        "Mops/s",
        "p50 ns",
        "p90 ns",
        "p99 ns",
        "p99.9 ns",
        "max ns",
    ]);
    for (name, make) in nbbst_bench::scalable_structures() {
        let map = make();
        prefill(&*map, &spec);
        let r = run_for(&*map, &spec, threads, args.duration());
        let h = &r.latency;
        table.row_owned(vec![
            name.to_string(),
            format!("{:.3}", r.mops()),
            h.percentile(50.0).to_string(),
            h.percentile(90.0).to_string(),
            h.percentile(99.0).to_string(),
            h.percentile(99.9).to_string(),
            h.max().to_string(),
        ]);
    }
    println!("{table}");
    println!("expected shape: medians are similar (path length dominates); the lock-based");
    println!("rows grow multi-millisecond p99.9/max tails as preempted lock holders stall");
    println!("their successors, while the lock-free rows' tails stay scheduler-bounded only");
    println!("for the preempted operation itself, not for the operations it would block.");
}
