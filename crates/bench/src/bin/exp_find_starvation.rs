//! **T7** — the adversarial schedule of Section 6: `Find` is not
//! wait-free.
//!
//! "Starting from an empty tree, one process inserts keys 1, 2 and 3 and
//! then starts a Find(2) that reaches the internal node with key 2. A
//! second process then deletes 1, re-inserts 1, deletes 3 and re-inserts
//! 3. Then, the first process advances two steps down the tree, again
//! reaching an internal node with key 2. This can be repeated ad
//! infinitum."
//!
//! We drive exactly that schedule with the stepped `RawFind` driver and
//! count how many edges the Find traverses without ever completing —
//! demonstrating non-wait-freedom — then stop the adversary and show the
//! Find completes immediately (lock-freedom: *system-wide* progress was
//! never lost; the adversary's updates completed the whole time).

use nbbst_core::raw::RawFind;
use nbbst_core::NbBst;
use nbbst_harness::Table;

fn main() {
    let args = nbbst_bench::ExpArgs::parse(0);
    let rounds = args.key_range.unwrap_or(10_000); // reuse the knob as round count
    nbbst_bench::banner(
        "T7",
        "adversarial Find starvation",
        "Section 6, paragraph 2 (Find is lock-free but not wait-free)",
    );

    let tree: NbBst<u64, u64> = NbBst::new();
    for k in [1u64, 2, 3] {
        tree.insert_entry(k, k).unwrap();
    }

    // The Find(2) starts walking and pauses at the internal node keyed 2.
    let mut find = RawFind::new(&tree, 2);
    let mut at_leaf = false;
    while !at_leaf && !find.at_internal_keyed(&2) {
        at_leaf = find.step();
    }
    assert!(
        find.at_internal_keyed(&2),
        "schedule setup: reach internal 2"
    );

    let mut adversary_updates = 0u64;
    let mut rounds_done = 0u64;
    for _ in 0..rounds {
        // Adversary: delete 1, re-insert 1, delete 3, re-insert 3. Each
        // re-insert replaces a leaf *below* the internal node keyed 2 on
        // the Find's path, adding two edges the Find must descend.
        assert!(tree.remove_key(&1));
        tree.insert_entry(1, 1).unwrap();
        assert!(tree.remove_key(&3));
        tree.insert_entry(3, 3).unwrap();
        adversary_updates += 4;

        // The Find takes two steps — and lands on an internal node keyed 2
        // again, no closer to a leaf.
        let mut done = find.step();
        if !done {
            done = find.step();
        }
        if done {
            break;
        }
        rounds_done += 1;
        if !find.at_internal_keyed(&2) {
            // The schedule depends on tree shape details; as long as the
            // Find is still above a leaf the starvation continues.
            continue;
        }
    }

    let mut table = Table::new(&["metric", "value"]);
    table.row_owned(vec!["adversary rounds".into(), rounds_done.to_string()]);
    table.row_owned(vec![
        "adversary updates completed".into(),
        adversary_updates.to_string(),
    ]);
    table.row_owned(vec![
        "Find(2) edges traversed".into(),
        find.steps_taken().to_string(),
    ]);
    table.row_owned(vec![
        "Find(2) completed?".into(),
        find.result().is_some().to_string(),
    ]);
    println!("{table}");

    assert!(
        find.result().is_none(),
        "the Find must still be in flight after {rounds_done} adversary rounds"
    );
    assert!(
        find.steps_taken() >= rounds_done,
        "the Find kept taking steps without completing — starvation, not deadlock"
    );

    // Lock-freedom: the adversary completed 4 updates per round while the
    // Find starved. Once the adversary stops, the Find finishes at once.
    let mut extra = 0;
    while !find.step() {
        extra += 1;
        assert!(extra < 1_000, "find must finish in a quiet tree");
    }
    assert_eq!(find.result(), Some(true));
    println!(
        "\nT7 verified: Find(2) starved for {rounds_done} rounds ({} edges) while the adversary",
        find.steps_taken()
    );
    println!("completed {adversary_updates} updates (system-wide progress = lock-freedom), then");
    println!("finished in {extra} steps once the adversary stopped. Find is not wait-free.");
    tree.check_invariants().unwrap();
}
