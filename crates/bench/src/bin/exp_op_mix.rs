//! **T4** — operation-mix sweep at a fixed thread count.
//!
//! How the structures respond as the workload shifts from read-only to
//! update-only: the EFRB tree's updates cost a small constant number of
//! CAS steps near a leaf, so its curve should degrade gracefully, whereas
//! coarse locking collapses once writers appear.

use nbbst_harness::{prefill, run_for, validate_after_run, OpMix, Table, WorkloadSpec};

fn main() {
    let args = nbbst_bench::ExpArgs::parse(300);
    nbbst_bench::banner(
        "T4",
        "operation-mix sweep",
        "Section 3 (update cost: 1-2 flags)",
    );
    let threads = args.threads.unwrap_or(4);
    let key_range = args.key_range.unwrap_or(1 << 16);
    let mixes = [
        ("100f/0i/0d", OpMix::READ_ONLY),
        ("90f/5i/5d", OpMix::READ_HEAVY),
        ("50f/25i/25d", OpMix::BALANCED),
        ("0f/50i/50d", OpMix::UPDATE_ONLY),
    ];
    println!(
        "threads={threads} key_range={key_range}; {} ms per cell\n",
        args.duration_ms
    );

    let mut header: Vec<String> = vec!["structure".into()];
    header.extend(mixes.iter().map(|(n, _)| format!("{n} (Mops/s)")));
    let mut table = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    for (name, make) in nbbst_bench::scalable_structures() {
        let mut row = vec![name.to_string()];
        for (_, mix) in mixes {
            let spec = WorkloadSpec {
                mix,
                ..WorkloadSpec::read_heavy(key_range)
            };
            let map = make();
            prefill(&*map, &spec);
            let r = run_for(&*map, &spec, threads, args.duration());
            validate_after_run(&*map, &spec, &r)
                .unwrap_or_else(|e| panic!("{name} corrupted on mix {mix}: {e}"));
            row.push(format!("{:.3}", r.mops()));
        }
        table.row_owned(row);
    }
    println!("{table}");
    println!("csv:\n{}", table.to_csv());
}
