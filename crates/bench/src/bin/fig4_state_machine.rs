//! **F4** — regenerate the paper's Figure 4: the update-word state machine
//! and its CAS transitions.
//!
//! We stress the tree with a contended multithreaded workload while
//! counting every CAS type, then print the transition matrix and verify
//! the arithmetic identities the Figure 4 circuits imply (every insertion
//! circuit runs `iflag → ichild → iunflag` exactly once; every deletion
//! circuit resolves its `DFlag` by exactly one of `mark` or `backtrack`;
//! `mark = dchild = dunflag`).

use nbbst_core::NbBst;
use nbbst_harness::{prefill, run_for, OpMix, Table, WorkloadSpec};

fn main() {
    let args = nbbst_bench::ExpArgs::parse(500);
    nbbst_bench::banner("F4", "CAS state machine of the update word", "Figure 4");

    let tree: NbBst<u64, u64> = NbBst::with_stats();
    let spec = WorkloadSpec {
        key_range: args.key_range.unwrap_or(256), // small range = contention
        mix: OpMix::UPDATE_ONLY,
        dist: nbbst_harness::KeyDist::Uniform,
        prefill_fraction: 0.5,
        seed: 4,
    };
    prefill(&tree, &spec);
    let threads = args.threads.unwrap_or(8);
    let result = run_for(&tree, &spec, threads, args.duration());
    println!(
        "\nworkload: {spec} x {threads} threads for {:?} -> {:.3} Mops/s\n",
        args.duration(),
        result.mops()
    );

    let s = tree.stats().expect("stats enabled");

    let mut table = Table::new(&["transition (Figure 4 edge)", "CAS type", "successes"]);
    table.row(&["Clean -> IFlag", "iflag", &s.iflag_success.to_string()]);
    table.row(&[
        "child swing (insert)",
        "ichild",
        &s.ichild_success.to_string(),
    ]);
    table.row(&["IFlag -> Clean", "iunflag", &s.iunflag_success.to_string()]);
    table.row(&["Clean -> DFlag", "dflag", &s.dflag_success.to_string()]);
    table.row(&[
        "Clean -> Mark (child of flagged gp)",
        "mark",
        &s.mark_success.to_string(),
    ]);
    table.row(&[
        "child swing (delete)",
        "dchild",
        &s.dchild_success.to_string(),
    ]);
    table.row(&[
        "DFlag -> Clean (after dchild)",
        "dunflag",
        &s.dunflag_success.to_string(),
    ]);
    table.row(&[
        "DFlag -> Clean (mark failed)",
        "backtrack",
        &s.backtrack_success.to_string(),
    ]);
    println!("{table}");

    println!("attempt/success rates:");
    println!(
        "  iflag {}/{}  dflag {}/{}  mark {}/{}",
        s.iflag_success,
        s.iflag_attempts,
        s.dflag_success,
        s.dflag_attempts,
        s.mark_success,
        s.mark_attempts
    );
    println!(
        "helping: {} Help() calls ({} help_insert, {} help_delete, {} help_marked); {:.4} helps/update",
        s.helps, s.help_insert_calls, s.help_delete_calls, s.help_marked_calls,
        s.helps_per_update()
    );

    s.check_figure4().expect("Figure 4 identities");
    tree.check_invariants().expect("structural invariants");
    println!("\nF4 verified: all observed transitions satisfy the Figure 4 circuit identities:");
    println!(
        "  iflag = ichild = iunflag            ({} each)",
        s.iflag_success
    );
    println!(
        "  dflag = mark + backtrack            ({} = {} + {})",
        s.dflag_success, s.mark_success, s.backtrack_success
    );
    println!(
        "  mark = dchild = dunflag             ({} each)",
        s.mark_success
    );
}
