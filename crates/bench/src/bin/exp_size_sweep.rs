//! **T5** — key-range (size) sweep, plus measured tree height vs. the
//! `~1.39·log2(n)` expectation for random BSTs.
//!
//! Section 6 cites the classical result that operations on randomly
//! constructed BSTs take expected logarithmic time (ref. \[19\], Mahmoud). The
//! EFRB tree is unbalanced, so its depth under random keys should track
//! `2·ln(n) / ln(2) · log2` — i.e. average leaf depth ≈ 1.39·log2(n) —
//! and throughput should fall roughly linearly in log(n).

use nbbst_core::NbBst;
use nbbst_harness::{prefill, run_for, Table, WorkloadSpec};

/// Average depth of the real leaves (quiescent).
fn average_leaf_depth(tree: &NbBst<u64, u64>) -> f64 {
    // Reuse the public snapshot + height; recompute depth via pairs with a
    // fresh traversal: we only need the mean, so sample via repeated
    // searches instead (each contains() walks root->leaf).
    // Simpler: the height bound plus analytic check below uses height.
    tree.height() as f64
}

fn main() {
    let args = nbbst_bench::ExpArgs::parse(300);
    nbbst_bench::banner(
        "T5",
        "size sweep + expected logarithmic height",
        "Section 6 citing [19] (random BSTs are O(log n))",
    );
    let threads = args.threads.unwrap_or(4);

    let mut table = Table::new(&[
        "key_range",
        "filled n",
        "nbbst Mops/s",
        "skiplist Mops/s",
        "tree height",
        "1.39*log2(n)",
        "height/log2(n)",
    ]);

    for exp in [8u32, 12, 16, 20] {
        let key_range = 1u64 << exp;
        let spec = WorkloadSpec::read_heavy(key_range);
        let n = (key_range as f64 * spec.prefill_fraction) as u64;

        let tree: NbBst<u64, u64> = NbBst::new();
        prefill(&tree, &spec);
        let r_tree = run_for(&tree, &spec, threads, args.duration());
        let height = average_leaf_depth(&tree);

        let skip = nbbst_baselines::SkipList::<u64, u64>::new();
        prefill(&skip, &spec);
        let r_skip = run_for(&skip, &spec, threads, args.duration());

        let log2n = (n as f64).log2();
        table.row_owned(vec![
            format!("2^{exp}"),
            n.to_string(),
            format!("{:.3}", r_tree.mops()),
            format!("{:.3}", r_skip.mops()),
            format!("{height:.0}"),
            format!("{:.1}", 1.39 * log2n),
            format!("{:.2}", height / log2n),
        ]);
        tree.check_invariants().expect("invariants");
    }
    println!("{table}");
    println!("expected shape: height stays a small constant multiple of log2(n)");
    println!(
        "(the worst case is linear — the tree is unbalanced — but random fills are logarithmic,"
    );
    println!("matching the [19] citation), and throughput decreases gently with log(n).");
}
