//! **F6** — regenerate the paper's Figure 6: the sentinel (`∞1`, `∞2`)
//! tree shapes for the empty and non-empty dictionary.
//!
//! "We append two special values ∞1 < ∞2 to the universe Key of keys ...
//! Deletion of the leaves with dummy keys is not permitted, so the tree
//! will always contain at least two leaves and one internal node"
//! (Section 4.1).

use nbbst_core::NbBst;

fn main() {
    nbbst_bench::banner("F6", "sentinel trees", "Figure 6 and Section 4.1");

    let t: NbBst<u64, u64> = NbBst::new();
    println!("(a) empty dictionary:\n{}", t.render());
    assert_eq!(t.len_slow(), 0);
    assert_eq!(t.height(), 1);
    t.check_invariants().unwrap();

    for k in [5u64, 2, 8] {
        t.insert_entry(k, k).unwrap();
    }
    println!("(b) non-empty dictionary (keys 2, 5, 8):\n{}", t.render());
    println!("note the invariant shape: the root is keyed ∞2 with the ∞2 leaf as its right child,");
    println!("and the dictionary contents live in the subtree left of the ∞1 routing structure.");
    t.check_invariants().unwrap();

    // Sentinels can never be deleted: deleting any key not in the
    // dictionary — and the sentinels are not dictionary keys — is a no-op,
    // and even draining the dictionary leaves the Figure 6(a) shape.
    for k in [5u64, 2, 8] {
        assert!(t.remove_key(&k));
    }
    println!(
        "after deleting everything, the Figure 6(a) shape returns:\n{}",
        t.render()
    );
    assert_eq!(t.len_slow(), 0);
    assert_eq!(t.height(), 1, "exactly the two sentinel leaves remain");
    t.check_invariants().unwrap();

    println!("F6 reproduced: both sentinel shapes verified structurally.");
}
