//! **F1/F2** — regenerate the paper's Figures 1 and 2: the three-node
//! insertion shape and the splice-out deletion shape.
//!
//! The figures use letters; we use the numeric keys B=20, C=30, D=40 so
//! that `Insert(C)` lands next to leaf `D` under an internal node keyed by
//! the larger of the pair, exactly as the figure draws it.

use nbbst_core::NbBst;

fn main() {
    nbbst_bench::banner("F1/F2", "insertion and deletion shapes", "Figures 1 and 2");

    let tree: NbBst<u64, &str> = NbBst::new();
    tree.insert_entry(20, "B").unwrap();
    tree.insert_entry(40, "D").unwrap();
    println!("\ninitial tree (leaves B=20, D=40):\n{}", tree.render());

    println!("--- Figure 1: Insert(C=30) replaces leaf D by the subtree (40){{[30],[40]}} ---");
    tree.insert_entry(30, "C").unwrap();
    println!("{}", tree.render());
    tree.check_invariants().expect("invariants after insert");

    println!(
        "--- Figure 2: Delete(C=30) removes the leaf and its parent; the sibling moves up ---"
    );
    assert!(tree.remove_key(&30));
    println!("{}", tree.render());
    tree.check_invariants().expect("invariants after delete");

    println!(
        "F1/F2 reproduced: shapes match Figures 1 and 2 (see tests/shapes.rs for the assertions)."
    );
}
