//! **F3** — regenerate the paper's Figure 3: the lost-update anomalies of
//! single-CAS tree updates, and the EFRB protocol's immunity to the same
//! schedules.
//!
//! Part 1 drives the deliberately broken [`NaiveBst`] through the two
//! schedules of Figures 3(b) and 3(c) and shows the anomalies. Part 2
//! replays the *same* interleavings against the EFRB tree using the
//! stepped drivers: the flag/mark protocol forces one of the conflicting
//! operations to fail/retry, and no update is lost.

use nbbst_baselines::naive::{CommitOutcome, NaiveBst};
use nbbst_core::raw::{MarkOutcome, RawDelete, RawInsert};
use nbbst_core::NbBst;

// Figure 3 letters as keys: A=10, C=30, E=50, F=60, H=80.
const A: u64 = 10;
const C: u64 = 30;
const E: u64 = 50;
const F: u64 = 60;
const H: u64 = 80;

fn naive_fig3b() {
    println!("--- Figure 3(b) on the naive single-CAS tree ---");
    let t: NaiveBst<u64, u64> = NaiveBst::new();
    for k in [A, C, E, H] {
        t.insert(k, k);
    }
    let del_c = t.prepare_delete(&C).expect("C present");
    let del_e = t.prepare_delete(&E).expect("E present");
    assert!(matches!(del_e.commit(), CommitOutcome::Applied));
    assert!(matches!(del_c.commit(), CommitOutcome::Applied));
    println!(
        "after Delete(C) || Delete(E): contains(E={E}) = {} (expected by Figure 3(b): true — E was LOST-DELETED)",
        t.contains(&E)
    );
    assert!(t.contains(&E), "anomaly must reproduce");
}

fn naive_fig3c() {
    println!("--- Figure 3(c) on the naive single-CAS tree ---");
    let t: NaiveBst<u64, u64> = NaiveBst::new();
    for k in [A, C, E, H] {
        t.insert(k, k);
    }
    let del_e = t.prepare_delete(&E).expect("E present");
    let ins_f = t.prepare_insert(F, F).expect("F absent");
    assert!(matches!(ins_f.commit(), CommitOutcome::Applied));
    assert!(matches!(del_e.commit(), CommitOutcome::Applied));
    println!(
        "after Delete(E) || Insert(F): contains(F={F}) = {} (expected by Figure 3(c): false — F became UNREACHABLE)",
        t.contains(&F)
    );
    assert!(!t.contains(&F), "anomaly must reproduce");
}

fn efrb_fig3b() {
    println!("--- the same Delete(C) || Delete(E) schedule on the EFRB tree ---");
    let t: NbBst<u64, u64> = NbBst::new();
    for k in [A, C, E, H] {
        t.insert_entry(k, k).unwrap();
    }
    // Both deletes search against the same initial tree, then Delete(E)
    // runs all its CAS steps first — the schedule of Figure 3(b).
    let mut del_c = RawDelete::new(&t, C);
    let mut del_e = RawDelete::new(&t, E);
    assert!(del_c.search().is_ready());
    assert!(del_e.search().is_ready());
    assert!(del_e.flag());
    assert_eq!(del_e.mark(), MarkOutcome::Marked);
    del_e.execute_child();
    del_e.unflag();

    // Delete(C) proceeds from its STALE search snapshot. The protocol must
    // reject it: either the dflag CAS fails (grandparent word changed) or
    // the mark CAS fails (parent word changed) and the delete backtracks.
    let mut stale_rejections = 0;
    loop {
        if !del_c.flag() {
            stale_rejections += 1;
            assert!(del_c.search().is_ready());
            continue;
        }
        match del_c.mark() {
            MarkOutcome::Marked => {
                del_c.execute_child();
                del_c.unflag();
                break;
            }
            MarkOutcome::Failed => {
                stale_rejections += 1;
                assert!(del_c.backtrack());
                assert!(del_c.search().is_ready());
            }
        }
    }
    println!(
        "Delete(C)'s stale attempt was rejected {stale_rejections} time(s) before a fresh retry succeeded"
    );
    assert!(
        stale_rejections > 0,
        "the protocol must detect the stale snapshot"
    );
    println!(
        "after both deletes: contains(C)={} contains(E)={} (both false -- no anomaly)",
        t.contains_key(&C),
        t.contains_key(&E)
    );
    assert!(!t.contains_key(&C) && !t.contains_key(&E));
    t.check_invariants().unwrap();
}

fn efrb_fig3c() {
    println!("--- the same Delete(E) || Insert(F) schedule on the EFRB tree ---");
    let t: NbBst<u64, u64> = NbBst::new();
    for k in [A, C, E, H] {
        t.insert_entry(k, k).unwrap();
    }
    // Delete(E) flags its grandparent (capturing its pupdate snapshot),
    // then Insert(F) runs to completion on E's parent — exactly the
    // Figure 5 "doomed delete" configuration, which is what prevents the
    // Figure 3(c) lost insert.
    let mut del_e = RawDelete::new(&t, E);
    assert!(del_e.search().is_ready());
    assert!(del_e.flag());

    let mut ins_f = RawInsert::new(&t, F, F);
    assert!(
        ins_f.search().is_ready(),
        "F's parent is not the flagged node here"
    );
    assert!(ins_f.flag());
    assert!(ins_f.execute_child());
    assert!(ins_f.unflag());
    drop(ins_f);

    // The delete's mark CAS must fail — its pupdate snapshot is stale —
    // and the backtrack CAS removes its flag; the retried delete succeeds
    // without touching F.
    assert_eq!(del_e.mark(), MarkOutcome::Failed);
    println!("Delete(E)'s mark CAS failed (pupdate stale) -> backtrack CAS");
    assert!(del_e.backtrack());
    assert!(del_e.search().is_ready());
    assert!(del_e.flag());
    assert_eq!(del_e.mark(), MarkOutcome::Marked);
    del_e.execute_child();
    del_e.unflag();

    println!(
        "after both ops: contains(E)={} contains(F)={} (E deleted, F PRESENT -- no anomaly)",
        t.contains_key(&E),
        t.contains_key(&F)
    );
    assert!(!t.contains_key(&E));
    assert!(t.contains_key(&F), "the EFRB tree must not lose the insert");
    t.check_invariants().unwrap();
}

fn main() {
    nbbst_bench::banner(
        "F3",
        "lost updates under bare CAS vs. EFRB flag/mark protocol",
        "Figure 3 (a)-(c) and Section 3",
    );
    naive_fig3b();
    naive_fig3c();
    efrb_fig3b();
    efrb_fig3c();
    println!("\nF3 reproduced: the naive tree exhibits both anomalies; the EFRB tree rejects both schedules.");
}
