//! Runs the complete experiment suite (F1–F6, T1–T10) in order and writes
//! one combined transcript — the single-command reproduction driver for
//! EXPERIMENTS.md.
//!
//! ```bash
//! cargo run --release -p nbbst-bench --bin run_all            # default budget
//! cargo run --release -p nbbst-bench --bin run_all duration_ms=1000
//! ```
//!
//! The transcript is written to `results/experiments.txt` (relative to the
//! working directory) and echoed to stdout.

use std::io::Write;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig1_fig2_shapes",
    "fig3_races",
    "fig4_state_machine",
    "fig5_snapshot",
    "fig6_sentinels",
    "exp_scalability",
    "exp_disjoint",
    "exp_find_scaling",
    "exp_op_mix",
    "exp_size_sweep",
    "exp_crash_tolerance",
    "exp_find_starvation",
    "exp_reclaim",
    "exp_helping",
    "exp_latency",
    "exp_linearize",
    "exp_sharding",
    "exp_range",
];

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    std::fs::create_dir_all("results").expect("create results dir");
    let mut transcript = String::new();
    let mut failures = Vec::new();

    for name in EXPERIMENTS {
        println!("=== running {name} ===");
        let bin = exe_dir.join(name);
        let output = Command::new(&bin)
            .args(&passthrough)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", bin.display()));
        transcript.push_str(&format!("### {name}\n"));
        transcript.push_str(&String::from_utf8_lossy(&output.stdout));
        if !output.stderr.is_empty() {
            transcript.push_str("--- stderr ---\n");
            transcript.push_str(&String::from_utf8_lossy(&output.stderr));
        }
        transcript.push('\n');
        if !output.status.success() {
            failures.push(*name);
            println!("!!! {name} FAILED ({})", output.status);
        }
    }

    let mut f = std::fs::File::create("results/experiments.txt").expect("open transcript");
    f.write_all(transcript.as_bytes())
        .expect("write transcript");
    println!(
        "\ntranscript written to results/experiments.txt ({} bytes)",
        transcript.len()
    );
    if failures.is_empty() {
        println!(
            "all {} experiments completed successfully",
            EXPERIMENTS.len()
        );
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
