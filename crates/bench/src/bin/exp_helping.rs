//! **T9** — the conservative-helping ablation: how much helping actually
//! happens as contention varies.
//!
//! "We choose a conservative helping strategy: a process P helps another
//! process's operation only if the other operation is preventing P's own
//! progress" (Section 3). Consequence: helping should be *rare* when the
//! key range is large (collisions unlikely) and grow as the range
//! shrinks. We sweep the key range under an update-only workload and
//! report helps, retries and backtracks per update.

use nbbst_core::NbBst;
use nbbst_harness::{prefill, run_for, OpMix, Table, WorkloadSpec};

fn main() {
    let args = nbbst_bench::ExpArgs::parse(300);
    nbbst_bench::banner(
        "T9",
        "conservative helping vs contention",
        "Section 3 (helping strategy); Section 6 (amortized cost)",
    );
    let threads = args.threads.unwrap_or(8);
    println!(
        "update-only, {threads} threads, {} ms per cell\n",
        args.duration_ms
    );

    let mut table = Table::new(&[
        "key range",
        "Mops/s",
        "helps/update",
        "retries/update",
        "backtracks/update",
        "mark fail rate",
    ]);

    for exp in [2u32, 4, 6, 8, 12, 16] {
        let spec = WorkloadSpec {
            mix: OpMix::UPDATE_ONLY,
            ..WorkloadSpec::read_heavy(1 << exp)
        };
        let tree: NbBst<u64, u64> = NbBst::with_stats();
        prefill(&tree, &spec);
        let r = run_for(&tree, &spec, threads, args.duration());
        let s = tree.stats().expect("stats");
        let updates = (s.inserts + s.deletes).max(1) as f64;
        table.row_owned(vec![
            format!("2^{exp}"),
            format!("{:.3}", r.mops()),
            format!("{:.5}", s.helps_per_update()),
            format!(
                "{:.5}",
                (s.insert_retries + s.delete_retries) as f64 / updates
            ),
            format!("{:.5}", s.backtrack_success as f64 / updates),
            format!(
                "{:.5}",
                (s.mark_attempts - s.mark_success) as f64 / s.mark_attempts.max(1) as f64
            ),
        ]);
        tree.check_invariants().expect("invariants");
        s.check_figure4().expect("figure 4");
    }
    println!("{table}");
    println!("expected shape: helps/retries/backtracks per update decrease monotonically");
    println!("(to ~0) as the key range grows — helping is conservative, paid only under");
    println!("actual conflict, unlike Barnes-style universal helping (Section 2).");
}
