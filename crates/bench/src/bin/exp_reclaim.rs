//! **T8** — memory-reclamation behaviour (Section 6's memory-management
//! discussion, realized with epochs).
//!
//! Shows that (a) the epoch collector actually frees what the tree
//! retires — retired vs freed counters converge at quiescence — and
//! (b) what the reclamation costs: throughput with reclamation active vs
//! a run where a parked guard (a stalled reader, the EBR worst case)
//! prevents any epoch advance, vs the hazard-pointer substrate's
//! stack-level costs measured in its own crate.

use nbbst_core::NbBst;
use nbbst_harness::{prefill, run_for, OpMix, Table, WorkloadSpec};

fn main() {
    let args = nbbst_bench::ExpArgs::parse(400);
    nbbst_bench::banner(
        "T8",
        "epoch reclamation: counters and stalled-reader ablation",
        "Sections 4.1 and 6 (memory management)",
    );
    let threads = args.threads.unwrap_or(4);
    let spec = WorkloadSpec {
        mix: OpMix::UPDATE_ONLY,
        ..WorkloadSpec::read_heavy(args.key_range.unwrap_or(1 << 12))
    };
    println!(
        "workload: {spec} x {threads} threads, {} ms per cell\n",
        args.duration_ms
    );

    let mut table = Table::new(&[
        "variant",
        "Mops/s",
        "retired",
        "freed",
        "freed %",
        "epoch advances",
        "bags stolen",
        "peak KiB",
    ]);

    // (0) the paper's literal memory model: leak everything (fresh
    // allocations forever). Upper bound on throughput without any
    // reclamation work; memory grows without bound.
    {
        let tree: NbBst<u64, u64> = NbBst::new_leaky();
        prefill(&tree, &spec);
        let r = run_for(&tree, &spec, threads, args.duration());
        let s = tree.collector().stats();
        table.row_owned(vec![
            "leaky (paper's model)".into(),
            format!("{:.3}", r.mops()),
            s.retired.to_string(),
            s.freed.to_string(),
            format!("{:.1}", 100.0 * s.freed as f64 / s.retired.max(1) as f64),
            s.epoch_advances.to_string(),
            s.bags_stolen.to_string(),
            format!("{:.1}", s.peak_deferred_bytes as f64 / 1024.0),
        ]);
        assert_eq!(s.freed, 0, "leaky mode must not free");
    }

    // (a) normal run: reclamation keeps up.
    {
        let tree: NbBst<u64, u64> = NbBst::new();
        prefill(&tree, &spec);
        let r = run_for(&tree, &spec, threads, args.duration());
        // Quiesce (exited workers hand garbage over asynchronously).
        tree.collector().try_drain(10_000);
        let s = tree.collector().stats();
        table.row_owned(vec![
            "reclaiming (EBR)".into(),
            format!("{:.3}", r.mops()),
            s.retired.to_string(),
            s.freed.to_string(),
            format!("{:.1}", 100.0 * s.freed as f64 / s.retired.max(1) as f64),
            s.epoch_advances.to_string(),
            s.bags_stolen.to_string(),
            format!("{:.1}", s.peak_deferred_bytes as f64 / 1024.0),
        ]);
        assert!(
            s.freed as f64 >= 0.95 * s.retired as f64,
            "EBR must keep up at quiescence: {s:?}"
        );
    }

    // (b) a stalled reader pins an epoch for the whole run: nothing can be
    // freed (the EBR worst case the paper's GC assumption hides).
    {
        let tree: NbBst<u64, u64> = NbBst::new();
        prefill(&tree, &spec);
        let handle = tree.collector().register();
        let stalled_guard = handle.pin(); // never released during the run
        let r = run_for(&tree, &spec, threads, args.duration());
        let s = tree.collector().stats();
        table.row_owned(vec![
            "stalled reader (no frees)".into(),
            format!("{:.3}", r.mops()),
            s.retired.to_string(),
            s.freed.to_string(),
            format!("{:.1}", 100.0 * s.freed as f64 / s.retired.max(1) as f64),
            s.epoch_advances.to_string(),
            s.bags_stolen.to_string(),
            format!("{:.1}", s.peak_deferred_bytes as f64 / 1024.0),
        ]);
        assert!(
            s.freed <= s.retired / 10,
            "a pinned guard must block reclamation: {s:?}"
        );
        drop(stalled_guard);
        tree.collector().try_drain(10_000);
        let after = tree.collector().stats();
        assert!(
            after.freed as f64 >= 0.95 * after.retired as f64,
            "releasing the guard must drain the backlog: {after:?}"
        );
        table.row_owned(vec![
            "  ... after release + flush".into(),
            "-".into(),
            after.retired.to_string(),
            after.freed.to_string(),
            format!(
                "{:.1}",
                100.0 * after.freed as f64 / after.retired.max(1) as f64
            ),
            after.epoch_advances.to_string(),
            after.bags_stolen.to_string(),
            format!("{:.1}", after.peak_deferred_bytes as f64 / 1024.0),
        ]);
    }

    println!("{table}");
    println!("expected shape: the reclaiming run frees ~100% of retirements by quiescence;");
    println!("the stalled-reader run frees ~0% until the guard drops, then drains fully —");
    println!("exactly the trade-off Section 6 discusses (hazard pointers bound this at the");
    println!("cost of per-hop validation; see nbbst-reclaim's hazard module and its tests).");
}
