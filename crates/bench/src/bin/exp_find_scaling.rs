//! **T3** — read-only scaling: "Find operations only perform reads of
//! shared memory".
//!
//! With a 100% find workload, the EFRB tree performs no writes at all —
//! no CAS, no lock word traffic — so adding readers should not slow
//! existing ones. Reader-writer-locked baselines pay lock-word cache
//! traffic per read. We report per-thread throughput (Mops/s per thread,
//! which should stay flat for read-only-friendly structures).

use nbbst_harness::{prefill, run_for, OpMix, Table, WorkloadSpec};

fn main() {
    let args = nbbst_bench::ExpArgs::parse(300);
    nbbst_bench::banner(
        "T3",
        "100% Find scaling",
        "abstract / Section 3 (Finds never write, never help)",
    );
    let spec = WorkloadSpec {
        mix: OpMix::READ_ONLY,
        ..WorkloadSpec::read_heavy(args.key_range.unwrap_or(1 << 16))
    };
    println!("workload: {spec}; {} ms per cell\n", args.duration_ms);

    let threads = match args.threads {
        Some(t) => vec![t],
        None => nbbst_bench::thread_counts(),
    };
    let mut header: Vec<String> = vec!["structure".into()];
    header.extend(threads.iter().map(|t| format!("{t}t (Mops/s)")));
    let mut table = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    for (name, make) in nbbst_bench::scalable_structures() {
        let mut row = vec![name.to_string()];
        for &t in &threads {
            let map = make();
            prefill(&*map, &spec);
            let r = run_for(&*map, &spec, t, args.duration());
            row.push(format!("{:.3}", r.mops()));
        }
        table.row_owned(row);
    }
    println!("{table}");
    println!("csv:\n{}", table.to_csv());
}
