//! **T12** — cross-shard range queries: route choice (hash vs. range
//! partitioning) under range-query mixes and key skew.
//!
//! The sharded frontend offers globally ordered `range_snapshot` either
//! way, but the cost model differs sharply:
//!
//! * `FibonacciRoute` scatters every key interval over all shards, so a
//!   range query must snapshot **every** shard and k-way-merge — even
//!   for a tiny span.
//! * `RangeRoute` keeps intervals contiguous, so a range query touches
//!   only the shards the split-point table says can overlap, and the
//!   per-shard results concatenate. The flip side is load skew: a Zipf
//!   key stream concentrates point operations on the shard owning the
//!   hot interval (the `imbal` column, from `shard_load_report`).
//!
//! Each cell runs a mixed workload — `range_pct`% bounded range queries
//! of span `span`, the rest the balanced point mix — and reports point
//! throughput, range-query throughput, and the per-shard op imbalance
//! (max/mean; 1.0 = even).
//!
//! The table is echoed to stdout and written to `results/exp_range.txt`
//! and `results/exp_range.csv` (relative to the working directory).

use nbbst_dictionary::{Operation, RangeRoute, ShardRoute, UniformU64};
use nbbst_harness::{KeyDist, OpMix, Table, WorkloadSpec};
use nbbst_sharded::ShardedNbBst;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

const ZIPF_THETA: f64 = 0.99;
const SHARDS: usize = 8;

struct CellResult {
    point_mops: f64,
    ranges_per_s: f64,
    avg_scan_len: f64,
    imbalance: f64,
}

/// Drives `threads` workers for `duration`: `range_pct`% of operations
/// are `range_snapshot(k, k + span)`, the rest point ops from the spec's
/// mix. Returns throughputs and the post-run shard imbalance.
fn run_cell<R: ShardRoute<u64>>(
    map: &ShardedNbBst<u64, u64, R>,
    spec: &WorkloadSpec,
    range_pct: u8,
    span: u64,
    threads: usize,
    duration: Duration,
) -> CellResult {
    for k in spec.prefill_keys() {
        map.insert_entry(k, k).ok();
    }
    let stop = AtomicBool::new(false);
    let point_ops = AtomicU64::new(0);
    let range_ops = AtomicU64::new(0);
    let scanned = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (map, stop) = (&map, &stop);
            let (point_ops, range_ops, scanned) = (&point_ops, &range_ops, &scanned);
            let mut gen = spec.generator(t);
            s.spawn(move || {
                let (mut points, mut ranges, mut keys_seen) = (0u64, 0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    // Batch the stop-flag check like the harness driver.
                    for _ in 0..64 {
                        let k = gen.next_key();
                        if k % 100 < range_pct as u64 {
                            let hi = k.saturating_add(span);
                            let r = map.range_snapshot(Bound::Included(&k), Bound::Excluded(&hi));
                            keys_seen += r.len() as u64;
                            ranges += 1;
                        } else {
                            match gen.next_op() {
                                Operation::Insert(k, v) => {
                                    map.insert_entry(k, v).ok();
                                }
                                Operation::Remove(k) => {
                                    map.remove_key(&k);
                                }
                                Operation::Contains(k) => {
                                    map.contains_key(&k);
                                }
                            }
                            points += 1;
                        }
                    }
                }
                point_ops.fetch_add(points, Ordering::Relaxed);
                range_ops.fetch_add(ranges, Ordering::Relaxed);
                scanned.fetch_add(keys_seen, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    map.check_invariants().expect("map corrupted after run");
    let secs = duration.as_secs_f64();
    let ranges = range_ops.load(Ordering::Relaxed);
    CellResult {
        point_mops: point_ops.load(Ordering::Relaxed) as f64 / secs / 1e6,
        ranges_per_s: ranges as f64 / secs,
        avg_scan_len: if ranges == 0 {
            0.0
        } else {
            scanned.load(Ordering::Relaxed) as f64 / ranges as f64
        },
        imbalance: map
            .shard_load_report()
            .map(|r| r.imbalance())
            .unwrap_or(f64::NAN),
    }
}

fn main() {
    let args = nbbst_bench::ExpArgs::parse(200);
    nbbst_bench::banner(
        "T12",
        "cross-shard range queries: route x range mix x key distribution",
        "beyond the paper (ordered reads over the Section 3 dictionary)",
    );
    let key_range = args.key_range.unwrap_or(1 << 14);
    let threads = args.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    println!(
        "key_range={key_range}, shards={SHARDS}, threads={threads}, {} ms per cell\n",
        args.duration_ms
    );

    let mixes: [(&str, u8, u64); 3] = [
        ("scan-light", 5, 100),
        ("scan-heavy", 50, 100),
        ("scan-wide", 10, 1 << 12),
    ];
    let dists: [(&str, KeyDist); 2] = [
        ("uniform", KeyDist::Uniform),
        ("zipf-0.99", KeyDist::Zipf { theta: ZIPF_THETA }),
    ];

    let mut table = Table::new(&[
        "mix",
        "dist",
        "route",
        "point (Mops/s)",
        "ranges/s",
        "avg scan",
        "imbal",
    ]);

    for (mix_name, range_pct, span) in mixes {
        for (dist_name, dist) in dists {
            let spec = WorkloadSpec {
                key_range,
                mix: OpMix::BALANCED,
                dist,
                prefill_fraction: 0.5,
                seed: 1712,
            };
            // Same spec through both routes; only the splitter differs.
            let fib: ShardedNbBst<u64, u64> = ShardedNbBst::with_stats_and_shards(SHARDS);
            let rng_route = RangeRoute::even(
                &UniformU64 {
                    lo: 0,
                    hi: key_range - 1,
                },
                SHARDS,
            );
            let rng: ShardedNbBst<u64, u64, _> =
                ShardedNbBst::with_stats_route_and_shards(rng_route, SHARDS);
            for (route_name, cell) in [
                (
                    "fibonacci",
                    run_cell(&fib, &spec, range_pct, span, threads, args.duration()),
                ),
                (
                    "range",
                    run_cell(&rng, &spec, range_pct, span, threads, args.duration()),
                ),
            ] {
                table.row_owned(vec![
                    mix_name.into(),
                    dist_name.into(),
                    route_name.into(),
                    format!("{:.3}", cell.point_mops),
                    format!("{:.0}", cell.ranges_per_s),
                    format!("{:.1}", cell.avg_scan_len),
                    format!("{:.2}", cell.imbalance),
                ]);
            }
        }
    }
    println!("{table}");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/exp_range.txt", format!("{table}\n")).expect("write txt report");
    std::fs::write("results/exp_range.csv", table.to_csv()).expect("write csv report");
    println!("reports written to results/exp_range.txt and results/exp_range.csv");
}
