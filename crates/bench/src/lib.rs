//! Shared scaffolding for the experiment binaries and Criterion benches.
//!
//! Every structure is exposed as a boxed [`ConcurrentMap`] factory so the
//! same driver measures the EFRB tree and each baseline identically. The
//! experiment ids (`F1`–`F6`, `T1`–`T10`) are defined in DESIGN.md §5 and
//! the measured results recorded in EXPERIMENTS.md.

use nbbst_baselines::{CoarseLockBst, FineLockBst, LockFreeList, SkipList, StdBTreeMap};
use nbbst_core::NbBst;
use nbbst_dictionary::ConcurrentMap;
use nbbst_sharded::ShardedNbBst;

/// A type-erased dictionary under test.
pub type DynMap = Box<dyn ConcurrentMap<u64, u64>>;

/// A named factory.
pub type Factory = (&'static str, fn() -> DynMap);

fn make_nbbst() -> DynMap {
    Box::new(NbBst::new())
}
fn make_skiplist() -> DynMap {
    Box::new(SkipList::new())
}
fn make_fine() -> DynMap {
    Box::new(FineLockBst::new())
}
fn make_coarse() -> DynMap {
    Box::new(CoarseLockBst::new())
}
fn make_list() -> DynMap {
    Box::new(LockFreeList::new())
}
fn make_std_btree() -> DynMap {
    Box::new(StdBTreeMap::new())
}
fn make_sharded() -> DynMap {
    Box::new(ShardedNbBst::new())
}

/// Factories for the sharded frontend at each swept shard count, plus the
/// default-count entry (`Factory` is a fn pointer, so each count needs its
/// own monomorphic constructor).
pub fn sharded_structures() -> Vec<Factory> {
    fn make_1() -> DynMap {
        Box::new(ShardedNbBst::with_shards(1))
    }
    fn make_2() -> DynMap {
        Box::new(ShardedNbBst::with_shards(2))
    }
    fn make_4() -> DynMap {
        Box::new(ShardedNbBst::with_shards(4))
    }
    fn make_8() -> DynMap {
        Box::new(ShardedNbBst::with_shards(8))
    }
    vec![
        ("sharded-1", make_1),
        ("sharded-2", make_2),
        ("sharded-4", make_4),
        ("sharded-8", make_8),
    ]
}

/// The structures compared in the large-key-range experiments
/// (T1/T2/T3/T4/T5).
pub fn scalable_structures() -> Vec<Factory> {
    vec![
        ("nbbst", make_nbbst),
        ("nbbst-sharded", make_sharded),
        ("skiplist", make_skiplist),
        ("fine-lock-bst", make_fine),
        ("coarse-lock-bst", make_coarse),
        ("std-btreemap-rwlock", make_std_btree),
    ]
}

/// The structures compared when the key range is small enough for the
/// `O(n)` list to participate (contention experiments).
pub fn small_range_structures() -> Vec<Factory> {
    let mut v = scalable_structures();
    v.push(("lock-free-list", make_list));
    v
}

/// Thread counts for scaling sweeps: powers of two up to twice the
/// available parallelism (the oversubscribed points are where blocking
/// structures fall over, which is the paper's qualitative claim).
pub fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize];
    while *counts.last().expect("non-empty") < hw * 2 {
        counts.push(counts.last().expect("non-empty") * 2);
    }
    counts.dedup();
    counts
}

/// Parses `NAME=value`-style overrides from the command line, e.g.
/// `duration_ms=500 threads=8`.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Measured milliseconds per cell.
    pub duration_ms: u64,
    /// Optional fixed thread count (otherwise the sweep default).
    pub threads: Option<usize>,
    /// Optional key-range override.
    pub key_range: Option<u64>,
}

impl ExpArgs {
    /// Parses `std::env::args`, with `default_ms` per cell.
    pub fn parse(default_ms: u64) -> ExpArgs {
        let mut args = ExpArgs {
            duration_ms: default_ms,
            threads: None,
            key_range: None,
        };
        for a in std::env::args().skip(1) {
            if let Some(v) = a.strip_prefix("duration_ms=") {
                args.duration_ms = v.parse().expect("duration_ms=<u64>");
            } else if let Some(v) = a.strip_prefix("threads=") {
                args.threads = Some(v.parse().expect("threads=<usize>"));
            } else if let Some(v) = a.strip_prefix("key_range=") {
                args.key_range = Some(v.parse().expect("key_range=<u64>"));
            } else {
                eprintln!("ignoring unknown argument {a:?}");
            }
        }
        args
    }

    /// The per-cell measurement duration.
    pub fn duration(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.duration_ms)
    }
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("  paper: {paper_ref}");
    println!(
        "  host: {} hardware thread(s)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_produce_working_maps() {
        for (name, make) in small_range_structures() {
            let m = make();
            assert!(m.insert(1, 10), "{name}");
            assert!(!m.insert(1, 11), "{name}");
            assert_eq!(m.get(&1), Some(10), "{name}");
            assert!(m.remove(&1), "{name}");
            assert_eq!(m.quiescent_len(), 0, "{name}");
        }
    }

    #[test]
    fn thread_counts_start_at_one_and_grow() {
        let c = thread_counts();
        assert_eq!(c[0], 1);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }
}
