//! A sequential leaf-oriented BST following the paper's Figures 1, 2 and 6.
//!
//! This is the *reference model*: the concurrent tree must behave, under any
//! linearization, exactly like this structure behaves sequentially. It is
//! deliberately written in plain safe Rust with owned boxes so its
//! correctness is evident, and it doubles as the single-threaded baseline in
//! benchmarks.

use nbbst_dictionary::{real_vs_node, SentinelKey, SeqMap};
use std::cmp::Ordering;
use std::fmt;
use std::mem;

/// A node of the sequential tree: internal nodes route, leaves store keys
/// (and values). Matches the paper's `Internal`/`Leaf` types minus the
/// concurrency fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node<K, V> {
    /// A routing node with exactly two children.
    Internal {
        /// Routing key: left descendants are `< key`, right are `>= key`.
        key: SentinelKey<K>,
        /// Left child.
        left: Box<Node<K, V>>,
        /// Right child.
        right: Box<Node<K, V>>,
    },
    /// A leaf; holds a dictionary key (or a sentinel) and its value.
    Leaf {
        /// The key stored at this leaf.
        key: SentinelKey<K>,
        /// The auxiliary data; `None` for sentinel leaves.
        value: Option<V>,
    },
}

impl<K, V> Node<K, V> {
    fn leaf(key: SentinelKey<K>, value: Option<V>) -> Box<Node<K, V>> {
        Box::new(Node::Leaf { key, value })
    }

    /// Placeholder used while splicing; never observable.
    fn placeholder() -> Node<K, V> {
        Node::Leaf {
            key: SentinelKey::Inf2,
            value: None,
        }
    }

    /// `true` iff this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// The node's key (routing key for internals, stored key for leaves).
    pub fn key(&self) -> &SentinelKey<K> {
        match self {
            Node::Internal { key, .. } | Node::Leaf { key, .. } => key,
        }
    }
}

/// The sequential leaf-oriented BST of the paper, with `∞1`/`∞2` dummy
/// leaves (Figure 6) and the update shapes of Figures 1 and 2.
///
/// # Examples
///
/// ```
/// use nbbst_model::LeafBst;
/// use nbbst_dictionary::SeqMap;
///
/// let mut t = LeafBst::new();
/// assert!(t.insert(2u64, "b"));
/// assert!(t.insert(1, "a"));
/// assert!(!t.insert(2, "B"));           // duplicate
/// assert_eq!(t.get(&2), Some("b"));
/// assert!(t.remove(&2));
/// assert_eq!(t.len(), 1);
/// assert_eq!(t.keys().collect::<Vec<_>>(), vec![1]);
/// ```
pub struct LeafBst<K, V> {
    root: Node<K, V>,
    len: usize,
}

impl<K: Ord + Clone, V> LeafBst<K, V> {
    /// Creates the Figure 6(a) initial tree: an internal `∞2` root with
    /// `∞1` and `∞2` leaves.
    pub fn new() -> LeafBst<K, V> {
        LeafBst {
            root: Node::Internal {
                key: SentinelKey::Inf2,
                left: Node::leaf(SentinelKey::Inf1, None),
                right: Node::leaf(SentinelKey::Inf2, None),
            },
            len: 0,
        }
    }

    /// Number of real keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no real keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Walks to the leaf on the search path for `key` (the paper's
    /// sequential `Search`).
    fn search_leaf(&self, key: &K) -> &Node<K, V> {
        let mut cur = &self.root;
        while let Node::Internal {
            key: nk,
            left,
            right,
        } = cur
        {
            cur = if real_vs_node(key, nk) == Ordering::Less {
                left
            } else {
                right
            };
        }
        cur
    }

    /// The height of the tree (edges on the longest root-to-leaf path).
    ///
    /// The initial sentinel tree has height 1.
    pub fn height(&self) -> usize {
        fn h<K, V>(n: &Node<K, V>) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Internal { left, right, .. } => 1 + h(left).max(h(right)),
            }
        }
        h(&self.root)
    }

    /// In-order iterator over the real keys.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_
    where
        K: Clone,
        V: Clone,
    {
        self.iter().map(|(k, _)| k)
    }

    /// In-order iterator over `(key, value)` clones.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            stack: vec![&self.root],
        }
    }

    /// Read-only access to the root, for structural tests and rendering.
    pub fn root(&self) -> &Node<K, V> {
        &self.root
    }

    /// Checks every structural invariant of the paper's tree shape:
    ///
    /// 1. every internal node has exactly two children (by construction),
    /// 2. BST order: left descendants `<` node key `<=` right descendants,
    /// 3. the dummy shape of Figure 6: root keyed `∞2`, its right child the
    ///    `∞2` leaf, and the `∞1` leaf present,
    /// 4. leaf count equals `len() + 2` sentinels.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String>
    where
        K: fmt::Debug,
    {
        // (3) sentinel shape.
        let Node::Internal { key, right, .. } = &self.root else {
            return Err("root is a leaf".into());
        };
        if *key != SentinelKey::Inf2 {
            return Err(format!("root key is {key:?}, expected ∞2"));
        }
        match right.as_ref() {
            Node::Leaf {
                key: SentinelKey::Inf2,
                ..
            } => {}
            other => return Err(format!("root right child is {:?}", other.key())),
        }

        // (2) order, via bounded recursion; also count leaves.
        fn check<K: Ord + Clone + fmt::Debug, V>(
            n: &Node<K, V>,
            lo: Option<&SentinelKey<K>>,
            hi: Option<&SentinelKey<K>>,
            leaves: &mut usize,
            sentinels: &mut usize,
        ) -> Result<(), String> {
            let k = n.key();
            if let Some(lo) = lo {
                // keys in a right subtree must be >= parent key
                if k < lo {
                    return Err(format!("key {k:?} below lower bound {lo:?}"));
                }
            }
            if let Some(hi) = hi {
                // keys in a left subtree must be < parent key
                if k >= hi {
                    return Err(format!("key {k:?} not below upper bound {hi:?}"));
                }
            }
            match n {
                Node::Leaf { key, .. } => {
                    *leaves += 1;
                    if key.is_sentinel() {
                        *sentinels += 1;
                    }
                    Ok(())
                }
                Node::Internal { key, left, right } => {
                    check(left, lo, Some(key), leaves, sentinels)?;
                    check(right, Some(key), hi, leaves, sentinels)
                }
            }
        }
        let mut leaves = 0;
        let mut sentinels = 0;
        check(&self.root, None, None, &mut leaves, &mut sentinels)?;
        if sentinels != 2 {
            return Err(format!("expected 2 sentinel leaves, found {sentinels}"));
        }
        // (4)
        if leaves != self.len + 2 {
            return Err(format!(
                "leaf count {leaves} != len {} + 2 sentinels",
                self.len
            ));
        }
        Ok(())
    }

    /// Renders the tree as indented ASCII, internal nodes in `(parens)`,
    /// leaves in `[brackets]` — used to regenerate the paper's figures.
    pub fn render(&self) -> String
    where
        K: fmt::Display,
    {
        fn go<K: fmt::Display, V>(n: &Node<K, V>, prefix: &str, last: bool, out: &mut String) {
            let branch = if prefix.is_empty() {
                ""
            } else if last {
                "└── "
            } else {
                "├── "
            };
            match n {
                Node::Leaf { key, .. } => {
                    out.push_str(&format!("{prefix}{branch}[{key}]\n"));
                }
                Node::Internal { key, left, right } => {
                    out.push_str(&format!("{prefix}{branch}({key})\n"));
                    let child_prefix = if prefix.is_empty() {
                        String::new()
                    } else {
                        format!("{prefix}{}", if last { "    " } else { "│   " })
                    };
                    go(left, &child_prefix, false, out);
                    go(right, &child_prefix, true, out);
                }
            }
        }
        let mut out = String::new();
        go(&self.root, "", true, &mut out);
        out
    }

    fn insert_rec(node: &mut Node<K, V>, key: K, value: V) -> bool {
        match node {
            Node::Internal {
                key: nk,
                left,
                right,
            } => {
                let child = if real_vs_node(&key, nk) == Ordering::Less {
                    left.as_mut()
                } else {
                    right.as_mut()
                };
                Self::insert_rec(child, key, value)
            }
            Node::Leaf { key: lk, .. } => {
                if *lk == SentinelKey::Key(key.clone()) {
                    return false;
                }
                // Figure 1: replace the leaf by an internal node whose key
                // is the larger of the two leaf keys; smaller key goes left.
                let old = mem::replace(node, Node::placeholder());
                let Node::Leaf {
                    key: old_key,
                    value: old_value,
                } = old
                else {
                    unreachable!("matched Leaf above")
                };
                let new_leaf = Node::leaf(SentinelKey::Key(key), Some(value));
                let old_leaf = Box::new(Node::Leaf {
                    key: old_key.clone(),
                    value: old_value,
                });
                let (routing, left, right) = if *new_leaf.key() < old_key {
                    (old_key, new_leaf, old_leaf)
                } else {
                    (new_leaf.key().clone(), old_leaf, new_leaf)
                };
                *node = Node::Internal {
                    key: routing,
                    left,
                    right,
                };
                true
            }
        }
    }

    fn remove_rec(node: &mut Node<K, V>, key: &K) -> Option<V> {
        // Invariant: `node` is internal (callers never recurse into leaves).
        let Node::Internal {
            key: nk,
            left,
            right,
        } = node
        else {
            unreachable!("remove_rec called on a leaf")
        };
        let go_left = real_vs_node(key, nk) == Ordering::Less;
        let child = if go_left {
            left.as_ref()
        } else {
            right.as_ref()
        };
        match child {
            Node::Leaf { key: lk, .. } => {
                if lk.as_key() == Some(key) {
                    // Figure 2: remove the leaf and its parent; the sibling
                    // takes the parent's place.
                    let old = mem::replace(node, Node::placeholder());
                    let Node::Internal { left, right, .. } = old else {
                        unreachable!("node is internal")
                    };
                    let (target, sibling) = if go_left {
                        (left, right)
                    } else {
                        (right, left)
                    };
                    let Node::Leaf { value, .. } = *target else {
                        unreachable!("matched Leaf above")
                    };
                    *node = *sibling;
                    value
                } else {
                    None
                }
            }
            Node::Internal { .. } => {
                let child = if go_left {
                    left.as_mut()
                } else {
                    right.as_mut()
                };
                Self::remove_rec(child, key)
            }
        }
    }

    /// In-order `(key, value)` clones with keys inside the bounds,
    /// pruning subtrees that cannot intersect the range.
    pub fn range(&self, lo: std::ops::Bound<&K>, hi: std::ops::Bound<&K>) -> Vec<(K, V)>
    where
        V: Clone,
    {
        use std::ops::Bound;
        fn in_lo<K: Ord>(k: &K, lo: Bound<&K>) -> bool {
            match lo {
                Bound::Unbounded => true,
                Bound::Included(b) => k >= b,
                Bound::Excluded(b) => k > b,
            }
        }
        fn in_hi<K: Ord>(k: &K, hi: Bound<&K>) -> bool {
            match hi {
                Bound::Unbounded => true,
                Bound::Included(b) => k <= b,
                Bound::Excluded(b) => k < b,
            }
        }
        fn go<K: Ord + Clone, V: Clone>(
            n: &Node<K, V>,
            lo: Bound<&K>,
            hi: Bound<&K>,
            out: &mut Vec<(K, V)>,
        ) {
            match n {
                Node::Leaf {
                    key: SentinelKey::Key(k),
                    value,
                } => {
                    if in_lo(k, lo) && in_hi(k, hi) {
                        out.push((k.clone(), value.clone().expect("real leaves carry values")));
                    }
                }
                Node::Leaf { .. } => {}
                Node::Internal { key, left, right } => {
                    let visit_left = match (key, lo) {
                        (SentinelKey::Key(nk), Bound::Included(b) | Bound::Excluded(b)) => nk > b,
                        _ => true,
                    };
                    let visit_right = match (key, hi) {
                        (SentinelKey::Key(nk), Bound::Included(b) | Bound::Excluded(b)) => nk <= b,
                        _ => true,
                    };
                    if visit_left {
                        go(left, lo, hi, out);
                    }
                    if visit_right {
                        go(right, lo, hi, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        go(&self.root, lo, hi, &mut out);
        out
    }

    /// Removes and returns the smallest key (with its value), if any.
    pub fn remove_min(&mut self) -> Option<(K, V)> {
        let min = self.keys_internal_min()?;
        let v = self.remove_entry(&min)?;
        Some((min, v))
    }

    /// The smallest real key, if any.
    fn keys_internal_min(&self) -> Option<K> {
        let mut cur = &self.root;
        loop {
            match cur {
                Node::Leaf { key, .. } => return key.as_key().cloned(),
                Node::Internal { left, .. } => cur = left,
            }
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove_entry(&mut self, key: &K) -> Option<V> {
        let v = Self::remove_rec(&mut self.root, key);
        if v.is_some() {
            self.len -= 1;
        }
        v
    }
}

impl<K: Ord + Clone, V> SeqMap<K, V> for LeafBst<K, V> {
    fn insert(&mut self, key: K, value: V) -> bool {
        let inserted = Self::insert_rec(&mut self.root, key, value);
        if inserted {
            self.len += 1;
        }
        inserted
    }

    fn remove(&mut self, key: &K) -> bool {
        self.remove_entry(key).is_some()
    }

    fn contains(&self, key: &K) -> bool {
        self.search_leaf(key).key().as_key() == Some(key)
    }

    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        match self.search_leaf(key) {
            Node::Leaf {
                key: lk,
                value: Some(v),
            } if lk.as_key() == Some(key) => Some(v.clone()),
            _ => None,
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

impl<K: Ord + Clone, V> Default for LeafBst<K, V> {
    fn default() -> Self {
        LeafBst::new()
    }
}

impl<K: Ord + Clone, V> FromIterator<(K, V)> for LeafBst<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut t = LeafBst::new();
        t.extend(iter);
        t
    }
}

impl<K: Ord + Clone, V> Extend<(K, V)> for LeafBst<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            SeqMap::insert(self, k, v);
        }
    }
}

impl<K: Ord + Clone + fmt::Debug, V: fmt::Debug> fmt::Debug for LeafBst<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LeafBst")
            .field("len", &self.len)
            .field("root", &self.root)
            .finish()
    }
}

/// In-order iterator over the real `(key, value)` pairs of a [`LeafBst`].
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<K: Clone, V: Clone> Iterator for Iter<'_, K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        while let Some(n) = self.stack.pop() {
            match n {
                Node::Internal { left, right, .. } => {
                    // Push right first so left is visited first (in-order
                    // for leaf-oriented trees == leaf order).
                    self.stack.push(right);
                    self.stack.push(left);
                }
                Node::Leaf {
                    key: SentinelKey::Key(k),
                    value,
                } => {
                    return Some((
                        k.clone(),
                        value.as_ref().cloned().expect("real leaves carry values"),
                    ));
                }
                Node::Leaf { .. } => {} // sentinel leaves
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tree_matches_figure_6a() {
        let t: LeafBst<u64, ()> = LeafBst::new();
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        let Node::Internal { key, left, right } = t.root() else {
            panic!("root must be internal");
        };
        assert_eq!(*key, SentinelKey::Inf2);
        assert_eq!(*left.key(), SentinelKey::Inf1);
        assert_eq!(*right.key(), SentinelKey::Inf2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_replaces_leaf_with_three_nodes_figure_1() {
        // Figure 1: inserting C next to leaf D creates internal D with
        // leaves C and D.
        let mut t: LeafBst<char, ()> = LeafBst::new();
        assert!(SeqMap::insert(&mut t, 'D', ()));
        assert!(SeqMap::insert(&mut t, 'C', ()));
        t.check_invariants().unwrap();
        // Find the subtree that holds C and D.
        let keys: Vec<char> = t.keys().collect();
        assert_eq!(keys, vec!['C', 'D']);
        // The parent of the two leaves must be keyed by the larger key D,
        // with C left and D right.
        fn find_parent_of(n: &Node<char, ()>, a: char) -> Option<&Node<char, ()>> {
            if let Node::Internal { left, right, .. } = n {
                if left.is_leaf() && *left.key() == SentinelKey::Key(a) {
                    return Some(n);
                }
                find_parent_of(left, a).or_else(|| find_parent_of(right, a))
            } else {
                None
            }
        }
        let parent = find_parent_of(t.root(), 'C').expect("C's parent");
        let Node::Internal { key, left, right } = parent else {
            unreachable!()
        };
        assert_eq!(*key, SentinelKey::Key('D'));
        assert_eq!(*left.key(), SentinelKey::Key('C'));
        assert_eq!(*right.key(), SentinelKey::Key('D'));
    }

    #[test]
    fn delete_splices_out_parent_figure_2() {
        let mut t: LeafBst<char, ()> = LeafBst::new();
        for c in ['B', 'D', 'C'] {
            assert!(SeqMap::insert(&mut t, c, ()));
        }
        let height_before = t.height();
        assert!(SeqMap::remove(&mut t, &'C'));
        t.check_invariants().unwrap();
        assert_eq!(t.keys().collect::<Vec<_>>(), vec!['B', 'D']);
        assert!(t.height() <= height_before);
        // C's former sibling (leaf D) must now be a direct child of the
        // node that was C's grandparent; i.e. no internal node with key C
        // or a dangling D-parent remains.
        fn no_internal_keyed(n: &Node<char, ()>, k: char) -> bool {
            match n {
                Node::Leaf { .. } => true,
                Node::Internal { key, left, right } => {
                    *key != SentinelKey::Key(k)
                        && no_internal_keyed(left, k)
                        && no_internal_keyed(right, k)
                }
            }
        }
        // Inserting B,D,C: C's parent is keyed D... removing C removes one
        // internal D node but the other (from inserting D) remains. Check
        // leaf count instead:
        assert_eq!(t.len(), 2);
        let _ = no_internal_keyed; // structural helper kept for clarity
    }

    #[test]
    fn duplicate_insert_rejected_without_overwrite() {
        let mut t = LeafBst::new();
        assert!(SeqMap::insert(&mut t, 1u64, "one"));
        assert!(!SeqMap::insert(&mut t, 1, "uno"));
        assert_eq!(SeqMap::get(&t, &1), Some("one"));
    }

    #[test]
    fn remove_missing_key_is_noop() {
        let mut t: LeafBst<u64, ()> = LeafBst::new();
        assert!(!SeqMap::remove(&mut t, &1));
        SeqMap::insert(&mut t, 2, ());
        assert!(!SeqMap::remove(&mut t, &1));
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_entry_returns_value() {
        let mut t = LeafBst::new();
        SeqMap::insert(&mut t, 4u64, "four");
        assert_eq!(t.remove_entry(&4), Some("four"));
        assert_eq!(t.remove_entry(&4), None);
    }

    #[test]
    fn in_order_iteration_is_sorted() {
        let mut t: LeafBst<u64, u64> = LeafBst::new();
        for k in [5u64, 1, 9, 3, 7, 2, 8] {
            SeqMap::insert(&mut t, k, k * 10);
        }
        let pairs: Vec<(u64, u64)> = t.iter().collect();
        assert_eq!(
            pairs,
            vec![
                (1, 10),
                (2, 20),
                (3, 30),
                (5, 50),
                (7, 70),
                (8, 80),
                (9, 90)
            ]
        );
    }

    #[test]
    fn interleaved_inserts_and_removes_keep_invariants() {
        let mut t: LeafBst<u64, u64> = LeafBst::new();
        for i in 0..200u64 {
            SeqMap::insert(&mut t, (i * 37) % 101, i);
            if i % 3 == 0 {
                SeqMap::remove(&mut t, &((i * 17) % 101));
            }
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn render_produces_figure_style_output() {
        let mut t: LeafBst<u64, ()> = LeafBst::new();
        SeqMap::insert(&mut t, 1, ());
        let s = t.render();
        assert!(s.contains("(∞2)"));
        assert!(s.contains("[∞1]"));
        assert!(s.contains("[1]"));
    }

    #[test]
    fn range_matches_btreemap() {
        use std::collections::BTreeMap;
        use std::ops::Bound;
        let mut t: LeafBst<u64, u64> = LeafBst::new();
        let mut m = BTreeMap::new();
        for i in 0..200u64 {
            let k = (i * 37) % 128;
            SeqMap::insert(&mut t, k, k);
            m.entry(k).or_insert(k);
        }
        for (lo, hi) in [(0u64, 128u64), (10, 30), (60, 60), (120, 128)] {
            let got: Vec<u64> = t
                .range(Bound::Included(&lo), Bound::Excluded(&hi))
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            let want: Vec<u64> = m.range(lo..hi).map(|(k, _)| *k).collect();
            assert_eq!(got, want, "range {lo}..{hi}");
        }
    }

    #[test]
    fn remove_min_drains_in_order() {
        let mut t: LeafBst<u64, u64> = LeafBst::new();
        for k in [5u64, 1, 9, 3] {
            SeqMap::insert(&mut t, k, k * 10);
        }
        let mut drained = Vec::new();
        while let Some((k, v)) = t.remove_min() {
            assert_eq!(v, k * 10);
            drained.push(k);
        }
        assert_eq!(drained, vec![1, 3, 5, 9]);
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn height_of_left_spine_grows_linearly() {
        // Descending inserts produce a left spine under the sentinels.
        let mut t: LeafBst<u64, ()> = LeafBst::new();
        for k in (0..50u64).rev() {
            SeqMap::insert(&mut t, k, ());
        }
        assert!(t.height() >= 50);
        t.check_invariants().unwrap();
    }
}
