//! Sequential reference models for the `nbbst` workspace.
//!
//! Two models with identical dictionary semantics but very different
//! representations:
//!
//! * [`LeafBst`] — the paper's leaf-oriented BST (Figures 1, 2 and 6) in
//!   plain owned-box form. The concurrent EFRB tree must be
//!   indistinguishable from this structure under any linearization, and its
//!   update *shapes* must match this structure's node-for-node.
//! * [`VecModel`] — a sorted vector whose correctness is immediate; used to
//!   cross-check `LeafBst` and as the state inside the linearizability
//!   checker.
//!
//! Both implement [`nbbst_dictionary::SeqMap`].

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod leaf_bst;
mod vec_model;

pub use leaf_bst::{Iter, LeafBst, Node};
pub use vec_model::VecModel;

#[cfg(test)]
mod cross_check {
    use super::*;
    use nbbst_dictionary::{Operation, SeqMap};
    use proptest::prelude::*;

    fn op_strategy() -> impl Strategy<Value = Operation<u8, u8>> {
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Operation::Insert(k % 32, v)),
            any::<u8>().prop_map(|k| Operation::Remove(k % 32)),
            any::<u8>().prop_map(|k| Operation::Contains(k % 32)),
        ]
    }

    proptest! {
        /// The paper-shaped tree and the sorted vector agree on every
        /// response and on the final key set, for arbitrary op sequences.
        #[test]
        fn leaf_bst_equals_vec_model(ops in proptest::collection::vec(op_strategy(), 0..400)) {
            let mut bst: LeafBst<u8, u8> = LeafBst::new();
            let mut vec: VecModel<u8, u8> = VecModel::new();
            for op in ops {
                prop_assert_eq!(op.apply_seq(&mut bst), op.apply_seq(&mut vec));
            }
            prop_assert_eq!(bst.keys().collect::<Vec<_>>(), vec.keys());
            prop_assert_eq!(SeqMap::len(&bst), SeqMap::len(&vec));
            bst.check_invariants().unwrap();
        }

        /// Values survive unrelated churn.
        #[test]
        fn values_are_stable(ops in proptest::collection::vec(op_strategy(), 0..200)) {
            let mut bst: LeafBst<u8, u8> = LeafBst::new();
            let mut vec: VecModel<u8, u8> = VecModel::new();
            for op in ops {
                op.apply_seq(&mut bst);
                op.apply_seq(&mut vec);
                for k in 0..32u8 {
                    prop_assert_eq!(SeqMap::get(&bst, &k), SeqMap::get(&vec, &k));
                }
            }
        }
    }
}
