//! A trivially-correct sorted-vector dictionary.
//!
//! Used to cross-check [`LeafBst`](crate::LeafBst) in property tests and as
//! the state representation inside the linearizability checker (a compact,
//! hashable dictionary state).

use nbbst_dictionary::SeqMap;
use std::fmt;

/// A dictionary stored as a sorted `Vec<(K, V)>`.
///
/// Every operation is implemented with a binary search, making the
/// semantics obviously correct at the cost of `O(n)` updates.
///
/// # Examples
///
/// ```
/// use nbbst_model::VecModel;
/// use nbbst_dictionary::SeqMap;
///
/// let mut m = VecModel::new();
/// assert!(m.insert(2u8, 'b'));
/// assert!(m.insert(1, 'a'));
/// assert_eq!(m.keys(), vec![1, 2]);
/// assert!(m.remove(&1));
/// assert!(!m.remove(&1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VecModel<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord, V> VecModel<K, V> {
    /// Creates an empty model.
    pub fn new() -> VecModel<K, V> {
        VecModel {
            entries: Vec::new(),
        }
    }

    fn position(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// The sorted keys currently stored.
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        self.entries.iter().map(|(k, _)| k.clone()).collect()
    }

    /// Iterates over the stored entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = &(K, V)> {
        self.entries.iter()
    }
}

impl<K: Ord, V> SeqMap<K, V> for VecModel<K, V> {
    fn insert(&mut self, key: K, value: V) -> bool {
        match self.position(&key) {
            Ok(_) => false,
            Err(i) => {
                self.entries.insert(i, (key, value));
                true
            }
        }
    }

    fn remove(&mut self, key: &K) -> bool {
        match self.position(key) {
            Ok(i) => {
                self.entries.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    fn contains(&self, key: &K) -> bool {
        self.position(key).is_ok()
    }

    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.position(key).ok().map(|i| self.entries[i].1.clone())
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for VecModel<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = VecModel::new();
        for (k, v) in iter {
            SeqMap::insert(&mut m, k, v);
        }
        m
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for VecModel<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_insertion_order() {
        let mut m = VecModel::new();
        for k in [3u64, 1, 2] {
            assert!(SeqMap::insert(&mut m, k, ()));
        }
        assert_eq!(m.keys(), vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_rejected() {
        let mut m = VecModel::new();
        assert!(SeqMap::insert(&mut m, 1u8, 'a'));
        assert!(!SeqMap::insert(&mut m, 1, 'b'));
        assert_eq!(SeqMap::get(&m, &1), Some('a'));
    }

    #[test]
    fn from_iter_dedups() {
        let m: VecModel<u8, u8> = [(1, 1), (1, 2), (2, 2)].into_iter().collect();
        assert_eq!(SeqMap::len(&m), 2);
        assert_eq!(SeqMap::get(&m, &1), Some(1));
    }
}
