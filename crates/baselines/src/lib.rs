//! Comparator dictionaries for the `nbbst` evaluation.
//!
//! The paper argues the EFRB tree against three families of alternatives;
//! this crate implements one representative of each, from scratch, plus
//! the strawman the paper's Figure 3 uses to motivate its protocol:
//!
//! * [`CoarseLockBst`] — the sequential tree behind a global RwLock
//!   (the "no concurrency" floor for experiment T1).
//! * [`FineLockBst`] — per-node locks with optimistic lock-free reads,
//!   standing in for the Section-2 lock-based trees (Kung–Lehman,
//!   chromatic trees): updates block each other locally, and a stalled
//!   lock holder blocks successors — the *blocking* behaviour the EFRB
//!   protocol removes.
//! * [`LockFreeList`] — Harris's marked-pointer ordered list, the direct
//!   ancestor of the tree's mark-before-splice idea (Section 3).
//! * [`SkipList`] — a lock-free skiplist, the incumbent non-blocking
//!   dictionary from the paper's opening Lea quote.
//! * [`StdBTreeMap`] — `RwLock<std::collections::BTreeMap>`, the Rust
//!   practitioner's default, anchoring the tables to a familiar point.
//! * [`naive::NaiveBst`] — the **deliberately broken** single-CAS BST of
//!   Figure 3, with two-phase prepared operations for deterministic
//!   anomaly replay.
//!
//! All (except the naive strawman, which is an experimental control)
//! implement [`nbbst_dictionary::ConcurrentMap`] and run under the same
//! epoch-reclamation substrate as the tree, so benchmark comparisons are
//! apples-to-apples.

#![warn(missing_docs, missing_debug_implementations)]

mod coarse;
mod fine;
mod list;
pub mod naive;
mod skiplist;
mod std_btree;

pub use coarse::CoarseLockBst;
pub use fine::FineLockBst;
pub use list::LockFreeList;
pub use skiplist::SkipList;
pub use std_btree::StdBTreeMap;

#[cfg(test)]
mod equivalence {
    //! Every baseline agrees with the sequential model on random
    //! single-threaded op sequences.
    use nbbst_dictionary::{ConcurrentMap, Operation, SeqMap};
    use nbbst_model::VecModel;
    use proptest::prelude::*;

    fn op_strategy() -> impl Strategy<Value = Operation<u8, u8>> {
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Operation::Insert(k % 24, v)),
            any::<u8>().prop_map(|k| Operation::Remove(k % 24)),
            any::<u8>().prop_map(|k| Operation::Contains(k % 24)),
        ]
    }

    macro_rules! equivalence_test {
        ($name:ident, $ty:ty) => {
            proptest! {
                #[test]
                fn $name(ops in proptest::collection::vec(op_strategy(), 0..300)) {
                    let map: $ty = Default::default();
                    let mut model: VecModel<u8, u8> = VecModel::new();
                    for op in ops {
                        prop_assert_eq!(op.apply(&map), op.apply_seq(&mut model), "{:?}", op);
                    }
                    prop_assert_eq!(map.quiescent_len(), SeqMap::len(&model));
                    for k in 0..24u8 {
                        prop_assert_eq!(
                            ConcurrentMap::get(&map, &k),
                            SeqMap::get(&model, &k)
                        );
                    }
                }
            }
        };
    }

    equivalence_test!(coarse_matches_model, super::CoarseLockBst<u8, u8>);
    equivalence_test!(fine_matches_model, super::FineLockBst<u8, u8>);
    equivalence_test!(list_matches_model, super::LockFreeList<u8, u8>);
    equivalence_test!(skiplist_matches_model, super::SkipList<u8, u8>);
    equivalence_test!(std_btree_matches_model, super::StdBTreeMap<u8, u8>);
}
