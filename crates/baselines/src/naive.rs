//! The *broken* single-CAS BST of the paper's Figure 3.
//!
//! "Simply using a CAS on the one child pointer that an update must change
//! would lead to problems if there are concurrent updates" (Section 3).
//! This module implements exactly that strawman — a leaf-oriented BST
//! whose insert and delete each perform **one child CAS with no flagging
//! or marking** — together with *prepared* (two-phase) operations so tests
//! can replay the paper's two schedules deterministically:
//!
//! * **Figure 3(b)**: `Delete(C)` ∥ `Delete(E)` — after both CASes, the
//!   deleted key `E` is still reachable.
//! * **Figure 3(c)**: `Delete(E)` ∥ `Insert(F)` — the insert's CAS
//!   succeeds, yet `F` ends up unreachable.
//!
//! The structure is **intentionally incorrect under concurrency**; it is
//! sequentially correct (verified by property tests) and exists solely as
//! the experimental control for the EFRB protocol.
//!
//! Prepared deletions capture their sibling pointer at *prepare* time, so
//! memory is never retired here (freed only at drop) — the point is the
//! lost-update anomaly, not reclamation.

use nbbst_dictionary::{real_vs_node, SentinelKey};
use nbbst_reclaim::{Atomic, Collector, Guard, Shared};
use std::cmp::Ordering as CmpOrdering;
use std::fmt;
use std::sync::atomic::Ordering;

const ORD: Ordering = Ordering::SeqCst;

struct NaiveNode<K, V> {
    key: SentinelKey<K>,
    value: Option<V>,
    is_leaf: bool,
    left: Atomic<NaiveNode<K, V>>,
    right: Atomic<NaiveNode<K, V>>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for NaiveNode<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for NaiveNode<K, V> {}

impl<K, V> NaiveNode<K, V> {
    fn leaf(key: SentinelKey<K>, value: Option<V>) -> *mut NaiveNode<K, V> {
        Box::into_raw(Box::new(NaiveNode {
            key,
            value,
            is_leaf: true,
            left: Atomic::null(),
            right: Atomic::null(),
        }))
    }

    fn internal(
        key: SentinelKey<K>,
        left: *const NaiveNode<K, V>,
        right: *const NaiveNode<K, V>,
    ) -> *mut NaiveNode<K, V> {
        let n = Box::new(NaiveNode {
            key,
            value: None,
            is_leaf: false,
            left: Atomic::null(),
            right: Atomic::null(),
        });
        unsafe {
            n.left
                .store(Shared::from_data(left as usize), Ordering::Relaxed);
            n.right
                .store(Shared::from_data(right as usize), Ordering::Relaxed);
        }
        Box::into_raw(n)
    }

    fn child<'g>(&self, go_left: bool, guard: &'g Guard) -> Shared<'g, NaiveNode<K, V>> {
        if go_left {
            self.left.load(ORD, guard)
        } else {
            self.right.load(ORD, guard)
        }
    }
}

/// The Figure 3 strawman: a leaf-oriented BST whose updates are one bare
/// child CAS each.
///
/// Correct sequentially; **loses updates under concurrency** (by design —
/// see the module docs).
pub struct NaiveBst<K, V> {
    root: Box<NaiveNode<K, V>>,
    collector: Collector,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for NaiveBst<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for NaiveBst<K, V> {}

impl<K, V> NaiveBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Creates the sentinel tree of Figure 6(a).
    pub fn new() -> NaiveBst<K, V> {
        let left = NaiveNode::leaf(SentinelKey::Inf1, None);
        let right = NaiveNode::leaf(SentinelKey::Inf2, None);
        let root = NaiveNode::internal(SentinelKey::Inf2, left, right);
        NaiveBst {
            // SAFETY: just allocated, uniquely owned.
            root: unsafe { Box::from_raw(root) },
            collector: Collector::new(),
        }
    }

    #[allow(clippy::type_complexity)] // (gp, gp_left, p, p_left, l) quintuple
    fn search<'g>(
        &self,
        key: &K,
        guard: &'g Guard,
    ) -> (
        Shared<'g, NaiveNode<K, V>>, // gp (may be null)
        bool,                        // gp -> p went left?
        Shared<'g, NaiveNode<K, V>>, // p
        bool,                        // p -> l went left?
        Shared<'g, NaiveNode<K, V>>, // l (leaf)
    ) {
        let mut gp: Shared<'g, NaiveNode<K, V>> = Shared::null();
        let mut gp_left = false;
        let mut p: Shared<'g, NaiveNode<K, V>> = Shared::null();
        let mut p_left = false;
        let mut l: Shared<'g, NaiveNode<K, V>> =
            unsafe { Shared::from_data(&*self.root as *const NaiveNode<K, V> as usize) };
        loop {
            let l_ref = unsafe { l.deref() };
            if l_ref.is_leaf {
                break;
            }
            gp = p;
            gp_left = p_left;
            p = l;
            p_left = real_vs_node(key, &l_ref.key) == CmpOrdering::Less;
            l = l_ref.child(p_left, guard);
        }
        (gp, gp_left, p, p_left, l)
    }

    /// Two-phase insert: search and build the replacement subtree now,
    /// CAS later ([`PreparedInsert::commit`]).
    ///
    /// Returns `None` if the key is already present.
    pub fn prepare_insert(&self, key: K, value: V) -> Option<PreparedInsert<'_, K, V>> {
        let guard = self.collector.pin();
        let (_, _, p, p_left, l) = self.search(&key, &guard);
        let l_ref = unsafe { l.deref() };
        if l_ref.key.as_key() == Some(&key) {
            return None;
        }
        let new_leaf = NaiveNode::leaf(SentinelKey::Key(key.clone()), Some(value));
        let sibling = NaiveNode::leaf(l_ref.key.clone(), l_ref.value.clone());
        let new_key = SentinelKey::Key(key);
        let (routing, left, right) = if new_key < l_ref.key {
            (l_ref.key.clone(), new_leaf as *const _, sibling as *const _)
        } else {
            (new_key, sibling as *const _, new_leaf as *const _)
        };
        let internal = NaiveNode::internal(routing, left, right);
        let (p_raw, l_raw) = (p.as_raw(), l.as_raw());
        Some(PreparedInsert {
            _tree: std::marker::PhantomData,
            guard,
            p: p_raw,
            p_left,
            l: l_raw,
            internal,
            new_leaf,
            sibling,
        })
    }

    /// Two-phase delete: record grandparent, parent and the sibling
    /// subtree now, CAS later ([`PreparedDelete::commit`]).
    ///
    /// Returns `None` if the key is absent.
    pub fn prepare_delete(&self, key: &K) -> Option<PreparedDelete<'_, K, V>> {
        let guard = self.collector.pin();
        let (gp, gp_left, p, p_left, l) = self.search(key, &guard);
        let l_ref = unsafe { l.deref() };
        if l_ref.key.as_key() != Some(key) {
            return None;
        }
        assert!(!gp.is_null(), "real leaves have grandparents");
        let p_ref = unsafe { p.deref() };
        let sibling = p_ref.child(!p_left, &guard);
        let (gp_raw, p_raw, sib_raw) = (gp.as_raw(), p.as_raw(), sibling.as_raw());
        Some(PreparedDelete {
            guard,
            gp: gp_raw,
            gp_left,
            p: p_raw,
            sibling: sib_raw,
            _tree: std::marker::PhantomData,
        })
    }

    /// One-shot insert (prepare + commit loop); sequentially correct.
    pub fn insert(&self, key: K, value: V) -> bool {
        let mut kv = (key, value);
        loop {
            match self.prepare_insert(kv.0, kv.1) {
                None => return false,
                Some(prep) => match prep.commit() {
                    CommitOutcome::Applied => return true,
                    CommitOutcome::CasFailed(recovered) => match recovered {
                        Some(pair) => kv = pair,
                        None => unreachable!("insert commit returns the pair"),
                    },
                },
            }
        }
    }

    /// One-shot delete; sequentially correct.
    pub fn remove(&self, key: &K) -> bool {
        loop {
            match self.prepare_delete(key) {
                None => return false,
                Some(prep) => {
                    if matches!(prep.commit(), CommitOutcome::Applied) {
                        return true;
                    }
                }
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, key: &K) -> bool {
        let guard = self.collector.pin();
        let (_, _, _, _, l) = self.search(key, &guard);
        unsafe { l.deref() }.key.as_key() == Some(key)
    }

    /// In-order snapshot of real keys — including any *resurrected* keys a
    /// lost update left behind, which is how the Figure 3 anomalies are
    /// observed.
    pub fn keys_snapshot(&self) -> Vec<K> {
        fn go<K: Clone, V>(n: &NaiveNode<K, V>, guard: &Guard, out: &mut Vec<K>) {
            if n.is_leaf {
                if let SentinelKey::Key(k) = &n.key {
                    out.push(k.clone());
                }
                return;
            }
            go(unsafe { n.child(true, guard).deref() }, guard, out);
            go(unsafe { n.child(false, guard).deref() }, guard, out);
        }
        let guard = self.collector.pin();
        let mut keys = Vec::new();
        go(&self.root, &guard, &mut keys);
        keys
    }
}

impl<K, V> Default for NaiveBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    fn default() -> Self {
        NaiveBst::new()
    }
}

impl<K, V> Drop for NaiveBst<K, V> {
    fn drop(&mut self) {
        // The naive tree never retires nodes during operation (lost
        // updates make unlink tracking unreliable — the whole point);
        // instead, spliced-out subtrees are still reachable only from
        // prepared ops. We free the reachable tree here; prepared-op
        // allocations free themselves.
        let guard = unsafe { nbbst_reclaim::unprotected() };
        let mut stack = vec![
            self.root.left.load(ORD, &guard).as_raw() as *mut NaiveNode<K, V>,
            self.root.right.load(ORD, &guard).as_raw() as *mut NaiveNode<K, V>,
        ];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            // SAFETY: teardown; tree nodes are reachable exactly once.
            let node = unsafe { Box::from_raw(n) };
            if !node.is_leaf {
                stack.push(node.left.load(ORD, &guard).as_raw() as *mut _);
                stack.push(node.right.load(ORD, &guard).as_raw() as *mut _);
            }
        }
    }
}

impl<K, V> fmt::Debug for NaiveBst<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("NaiveBst")
    }
}

/// Outcome of committing a prepared naive operation.
#[derive(Debug)]
pub enum CommitOutcome<K, V> {
    /// The single CAS succeeded.
    Applied,
    /// The CAS failed (the tree changed under us). For inserts, the
    /// `(key, value)` pair is handed back for a retry.
    CasFailed(Option<(K, V)>),
}

/// A naive insert that has searched and built its subtree but not yet
/// CASed. Holding several `Prepared*` values and committing them in a
/// chosen order is how Figure 3 schedules are replayed.
pub struct PreparedInsert<'t, K, V> {
    _tree: std::marker::PhantomData<&'t NaiveBst<K, V>>,
    guard: Guard,
    p: *const NaiveNode<K, V>,
    p_left: bool,
    l: *const NaiveNode<K, V>,
    /// Speculative subtree root; null once committed or reclaimed.
    internal: *mut NaiveNode<K, V>,
    new_leaf: *mut NaiveNode<K, V>,
    sibling: *mut NaiveNode<K, V>,
}

impl<K, V> PreparedInsert<'_, K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Performs the single child CAS.
    pub fn commit(mut self) -> CommitOutcome<K, V> {
        let p = unsafe { &*self.p };
        let slot = if self.p_left { &p.left } else { &p.right };
        let old: Shared<'_, NaiveNode<K, V>> = unsafe { Shared::from_data(self.l as usize) };
        let new: Shared<'_, NaiveNode<K, V>> = unsafe { Shared::from_data(self.internal as usize) };
        match slot.compare_exchange(old, new, ORD, ORD, &self.guard) {
            Ok(_) => {
                // NOTE (deliberate bug): the replaced leaf is NOT retired
                // and no flags were taken; concurrent updates can now lose
                // each other's effects.
                self.internal = std::ptr::null_mut(); // owned by the tree
                CommitOutcome::Applied
            }
            Err(_) => {
                // SAFETY: never published; reclaim the subtree and hand the
                // key/value back for a retry.
                let pair = unsafe {
                    drop(Box::from_raw(self.internal));
                    drop(Box::from_raw(self.sibling));
                    let fresh = Box::from_raw(self.new_leaf);
                    match (fresh.key, fresh.value) {
                        (SentinelKey::Key(k), Some(v)) => Some((k, v)),
                        _ => None,
                    }
                };
                self.internal = std::ptr::null_mut();
                CommitOutcome::CasFailed(pair)
            }
        }
    }
}

impl<K, V> Drop for PreparedInsert<'_, K, V> {
    fn drop(&mut self) {
        if self.internal.is_null() {
            return; // committed (tree owns it) or already reclaimed
        }
        // Never committed: free the speculative subtree.
        // SAFETY: unpublished, exclusively ours.
        unsafe {
            drop(Box::from_raw(self.internal));
            drop(Box::from_raw(self.sibling));
            drop(Box::from_raw(self.new_leaf));
        }
    }
}

impl<K, V> fmt::Debug for PreparedInsert<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PreparedInsert")
    }
}

/// A naive delete that has searched (capturing its stale sibling pointer)
/// but not yet CASed.
pub struct PreparedDelete<'t, K, V> {
    guard: Guard,
    gp: *const NaiveNode<K, V>,
    gp_left: bool,
    p: *const NaiveNode<K, V>,
    sibling: *const NaiveNode<K, V>,
    // Ties the lifetime to the tree without an unused-field warning.
    _tree: std::marker::PhantomData<&'t NaiveBst<K, V>>,
}

impl<K, V> PreparedDelete<'_, K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Performs the single child CAS (splice the parent out, replacing it
    /// by the *prepared-time* sibling — the staleness that loses updates).
    pub fn commit(self) -> CommitOutcome<K, V> {
        let gp = unsafe { &*self.gp };
        let slot = if self.gp_left { &gp.left } else { &gp.right };
        let old: Shared<'_, NaiveNode<K, V>> = unsafe { Shared::from_data(self.p as usize) };
        let new: Shared<'_, NaiveNode<K, V>> = unsafe { Shared::from_data(self.sibling as usize) };
        match slot.compare_exchange(old, new, ORD, ORD, &self.guard) {
            Ok(_) => CommitOutcome::Applied,
            Err(_) => CommitOutcome::CasFailed(None),
        }
    }
}

impl<K, V> fmt::Debug for PreparedDelete<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PreparedDelete")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequentially_correct() {
        let t: NaiveBst<u64, u64> = NaiveBst::new();
        assert!(t.insert(2, 20));
        assert!(t.insert(1, 10));
        assert!(!t.insert(2, 22));
        assert!(t.contains(&1));
        assert!(t.remove(&1));
        assert!(!t.remove(&1));
        assert_eq!(t.keys_snapshot(), vec![2]);
    }

    #[test]
    fn failed_insert_commit_recovers_the_pair() {
        let t: NaiveBst<u64, u64> = NaiveBst::new();
        t.insert(10, 100);
        // Two prepared inserts against the same leaf: the second commit
        // loses its CAS and must hand the key/value back.
        let first = t.prepare_insert(20, 200).unwrap();
        let second = t.prepare_insert(30, 300).unwrap();
        assert!(matches!(first.commit(), CommitOutcome::Applied));
        match second.commit() {
            CommitOutcome::CasFailed(Some((k, v))) => {
                assert_eq!((k, v), (30, 300));
            }
            other => panic!("expected recovered pair, got {other:?}"),
        }
        assert!(t.contains(&20));
        assert!(!t.contains(&30));
        // A retry via the one-shot API lands it.
        assert!(t.insert(30, 300));
        assert!(t.contains(&30));
    }

    #[test]
    fn failed_delete_commit_is_reported() {
        let t: NaiveBst<u64, u64> = NaiveBst::new();
        for k in [10u64, 20, 30] {
            t.insert(k, k);
        }
        let a = t.prepare_delete(&20).unwrap();
        let b = t.prepare_delete(&20).unwrap();
        assert!(matches!(a.commit(), CommitOutcome::Applied));
        assert!(matches!(b.commit(), CommitOutcome::CasFailed(None)));
        assert!(!t.contains(&20));
    }

    #[test]
    fn prepared_insert_dropped_without_commit_is_clean() {
        let t: NaiveBst<u64, u64> = NaiveBst::new();
        t.insert(5, 50);
        let prep = t.prepare_insert(7, 70).unwrap();
        drop(prep);
        assert!(!t.contains(&7));
        assert_eq!(t.keys_snapshot(), vec![5]);
    }

    /// Figure 3(b): two deletes whose CAS steps run back to back leave the
    /// second deleted key reachable.
    #[test]
    fn figure_3b_concurrent_deletes_resurrect_a_key() {
        // Keys mirror the figure: A=10 C=30 E=50 H=80 as leaves.
        let t: NaiveBst<u64, u64> = NaiveBst::new();
        for k in [10u64, 30, 50, 80] {
            assert!(t.insert(k, k));
        }
        // Prepare both deletes against the same initial tree.
        let del_c = t.prepare_delete(&30).unwrap();
        let del_e = t.prepare_delete(&50).unwrap();
        // Delete(E) commits first, then Delete(C) (its sibling snapshot
        // still contains E's subtree).
        assert!(matches!(del_e.commit(), CommitOutcome::Applied));
        assert!(matches!(del_c.commit(), CommitOutcome::Applied));
        // ANOMALY: E (=50) was deleted but is still in the tree.
        assert!(
            t.contains(&50),
            "the naive tree must exhibit the Figure 3(b) lost delete"
        );
        assert!(!t.contains(&30));
    }

    /// Figure 3(c): a delete and an insert whose CAS steps run back to
    /// back make the inserted key unreachable.
    #[test]
    fn figure_3c_insert_lost_under_concurrent_delete() {
        let t: NaiveBst<u64, u64> = NaiveBst::new();
        for k in [10u64, 30, 50, 80] {
            assert!(t.insert(k, k));
        }
        // Prepare Delete(E=50) first (captures the pre-insert sibling),
        // then Insert(F=60) commits, then the delete commits.
        let del_e = t.prepare_delete(&50).unwrap();
        let ins_f = t.prepare_insert(60, 60).unwrap();
        assert!(matches!(ins_f.commit(), CommitOutcome::Applied));
        assert!(matches!(del_e.commit(), CommitOutcome::Applied));
        // ANOMALY: the insert's CAS succeeded, yet F (=60) is gone.
        assert!(
            !t.contains(&60),
            "the naive tree must exhibit the Figure 3(c) lost insert"
        );
    }

    #[test]
    fn anomalies_visible_in_snapshot() {
        let t: NaiveBst<u64, u64> = NaiveBst::new();
        for k in [10u64, 30, 50, 80] {
            t.insert(k, k);
        }
        let del_c = t.prepare_delete(&30).unwrap();
        let del_e = t.prepare_delete(&50).unwrap();
        del_e.commit();
        del_c.commit();
        let keys = t.keys_snapshot();
        assert!(keys.contains(&50), "snapshot shows the resurrected key");
    }
}
