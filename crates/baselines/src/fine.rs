//! A fine-grained lock-based leaf-oriented BST.
//!
//! Stands in for the lock-based concurrent search trees of the paper's
//! Section 2 (Kung–Lehman; Nurmi–Soisalon-Soininen): reads traverse
//! optimistically without locks, while each update locks only the one or
//! two nodes it modifies (parent for insert; grandparent + parent for
//! delete) and validates before mutating. Unlike the EFRB tree, a thread
//! that is preempted — or crashes — while holding a lock blocks every later
//! update that needs the same node: the structure is *blocking*.
//!
//! Reads are made safe by the same epoch collector the lock-free
//! structures use: removed nodes are retired, not freed, so optimistic
//! traversals never touch freed memory.

use nbbst_dictionary::{real_vs_node, ConcurrentMap, SentinelKey};
use nbbst_reclaim::{Atomic, Collector, Guard, Shared};
use parking_lot::Mutex;
use std::cmp::Ordering as CmpOrdering;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

const ORD: Ordering = Ordering::SeqCst;

struct FineNode<K, V> {
    key: SentinelKey<K>,
    value: Option<V>,
    is_leaf: bool,
    left: Atomic<FineNode<K, V>>,
    right: Atomic<FineNode<K, V>>,
    /// Guards this node's child pointers.
    lock: Mutex<()>,
    /// Set (under `lock`) when the node is spliced out; validation fails
    /// against removed nodes.
    removed: AtomicBool,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for FineNode<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for FineNode<K, V> {}

impl<K, V> FineNode<K, V> {
    fn leaf(key: SentinelKey<K>, value: Option<V>) -> *mut FineNode<K, V> {
        Box::into_raw(Box::new(FineNode {
            key,
            value,
            is_leaf: true,
            left: Atomic::null(),
            right: Atomic::null(),
            lock: Mutex::new(()),
            removed: AtomicBool::new(false),
        }))
    }

    fn internal(
        key: SentinelKey<K>,
        left: *const FineNode<K, V>,
        right: *const FineNode<K, V>,
    ) -> *mut FineNode<K, V> {
        let n = Box::new(FineNode {
            key,
            value: None,
            is_leaf: false,
            left: Atomic::null(),
            right: Atomic::null(),
            lock: Mutex::new(()),
            removed: AtomicBool::new(false),
        });
        // Initialization stores before publication.
        unsafe {
            n.left
                .store(Shared::from_data(left as usize), Ordering::Relaxed);
            n.right
                .store(Shared::from_data(right as usize), Ordering::Relaxed);
        }
        Box::into_raw(n)
    }

    fn child<'g>(&self, go_left: bool, guard: &'g Guard) -> Shared<'g, FineNode<K, V>> {
        if go_left {
            self.left.load(ORD, guard)
        } else {
            self.right.load(ORD, guard)
        }
    }

    fn set_child(&self, go_left: bool, new: Shared<'_, FineNode<K, V>>) {
        if go_left {
            self.left.store(new, ORD);
        } else {
            self.right.store(new, ORD);
        }
    }
}

/// A leaf-oriented BST with per-node locks and optimistic lock-free reads.
///
/// # Examples
///
/// ```
/// use nbbst_baselines::FineLockBst;
/// use nbbst_dictionary::ConcurrentMap;
///
/// let m: FineLockBst<u64, &str> = FineLockBst::new();
/// assert!(m.insert(3, "c"));
/// assert_eq!(m.get(&3), Some("c"));
/// assert!(m.remove(&3));
/// ```
pub struct FineLockBst<K, V> {
    root: Box<FineNode<K, V>>,
    collector: Collector,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for FineLockBst<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for FineLockBst<K, V> {}

struct FineSearch<'g, K, V> {
    gp: Shared<'g, FineNode<K, V>>,
    gp_left: bool,
    p: Shared<'g, FineNode<K, V>>,
    p_left: bool,
    l: Shared<'g, FineNode<K, V>>,
}

impl<K, V> FineLockBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Creates the sentinel tree of Figure 6(a).
    pub fn new() -> FineLockBst<K, V> {
        let left = FineNode::leaf(SentinelKey::Inf1, None);
        let right = FineNode::leaf(SentinelKey::Inf2, None);
        let root = FineNode::internal(SentinelKey::Inf2, left, right);
        // SAFETY: just allocated, uniquely owned.
        let root = unsafe { Box::from_raw(root) };
        FineLockBst {
            root,
            collector: Collector::new(),
        }
    }

    fn search<'g>(&self, key: &K, guard: &'g Guard) -> FineSearch<'g, K, V> {
        let mut gp: Shared<'g, FineNode<K, V>> = Shared::null();
        let mut gp_left = false;
        let mut p: Shared<'g, FineNode<K, V>> = Shared::null();
        let mut p_left = false;
        let mut l: Shared<'g, FineNode<K, V>> =
            unsafe { Shared::from_data(&*self.root as *const FineNode<K, V> as usize) };
        loop {
            let l_ref = unsafe { l.deref() };
            if l_ref.is_leaf {
                break;
            }
            gp = p;
            gp_left = p_left;
            p = l;
            p_left = real_vs_node(key, &l_ref.key) == CmpOrdering::Less;
            l = l_ref.child(p_left, guard);
        }
        FineSearch {
            gp,
            gp_left,
            p,
            p_left,
            l,
        }
    }

    /// Inserts `key`; `false` on duplicate.
    pub fn insert_kv(&self, key: K, value: V) -> bool {
        loop {
            let guard = self.collector.pin();
            let s = self.search(&key, &guard);
            let l_ref = unsafe { s.l.deref() };
            if l_ref.key.as_key() == Some(&key) {
                return false;
            }
            let p_ref = unsafe { s.p.deref() };
            let _lock = p_ref.lock.lock();
            // Validate under the lock: p still in the tree and still points
            // to l on the same side.
            if p_ref.removed.load(ORD) || s.l != p_ref.child(s.p_left, &guard) {
                continue; // retry with a fresh search
            }
            // Build the Figure 1 subtree and swing the pointer.
            let new_leaf = FineNode::leaf(SentinelKey::Key(key.clone()), Some(value));
            let sibling = FineNode::leaf(l_ref.key.clone(), l_ref.value.clone());
            let new_key = SentinelKey::Key(key);
            let (routing, left, right) = if new_key < l_ref.key {
                (l_ref.key.clone(), new_leaf as *const _, sibling as *const _)
            } else {
                (new_key, sibling as *const _, new_leaf as *const _)
            };
            let internal = FineNode::internal(routing, left, right);
            let internal_shared: Shared<'_, FineNode<K, V>> =
                unsafe { Shared::from_data(internal as usize) };
            p_ref.set_child(s.p_left, internal_shared);
            l_ref.removed.store(true, ORD);
            // SAFETY: l was just unlinked under p's lock; unique retire.
            unsafe { guard.defer_destroy(s.l) };
            return true;
        }
    }

    /// Removes `key`; `false` if absent.
    pub fn remove_k(&self, key: &K) -> bool {
        loop {
            let guard = self.collector.pin();
            let s = self.search(key, &guard);
            let l_ref = unsafe { s.l.deref() };
            if l_ref.key.as_key() != Some(key) {
                return false;
            }
            debug_assert!(!s.gp.is_null(), "real leaves have grandparents");
            let gp_ref = unsafe { s.gp.deref() };
            let p_ref = unsafe { s.p.deref() };
            // Ancestor-first lock order (gp is always p's ancestor): no
            // deadlock.
            let _gp_lock = gp_ref.lock.lock();
            let _p_lock = p_ref.lock.lock();
            if gp_ref.removed.load(ORD)
                || p_ref.removed.load(ORD)
                || s.p != gp_ref.child(s.gp_left, &guard)
                || s.l != p_ref.child(s.p_left, &guard)
            {
                continue;
            }
            let sibling = p_ref.child(!s.p_left, &guard);
            gp_ref.set_child(s.gp_left, sibling);
            p_ref.removed.store(true, ORD);
            l_ref.removed.store(true, ORD);
            // SAFETY: both unlinked under the locks; unique retire.
            unsafe {
                guard.defer_destroy(s.p);
                guard.defer_destroy(s.l);
            }
            return true;
        }
    }

    /// Lock-free membership test.
    pub fn contains_k(&self, key: &K) -> bool {
        let guard = self.collector.pin();
        let s = self.search(key, &guard);
        unsafe { s.l.deref() }.key.as_key() == Some(key)
    }

    /// Lock-free read of the value.
    pub fn get_k(&self, key: &K) -> Option<V> {
        let guard = self.collector.pin();
        let s = self.search(key, &guard);
        let l_ref = unsafe { s.l.deref() };
        if l_ref.key.as_key() == Some(key) {
            l_ref.value.clone()
        } else {
            None
        }
    }

    fn count_leaves(&self) -> usize {
        fn go<K, V>(n: &FineNode<K, V>, guard: &Guard) -> usize {
            if n.is_leaf {
                return usize::from(!n.key.is_sentinel());
            }
            let l = unsafe { n.child(true, guard).deref() };
            let r = unsafe { n.child(false, guard).deref() };
            go(l, guard) + go(r, guard)
        }
        let guard = self.collector.pin();
        go(&self.root, &guard)
    }
}

impl<K, V> Default for FineLockBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    fn default() -> Self {
        FineLockBst::new()
    }
}

impl<K, V> ConcurrentMap<K, V> for FineLockBst<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_kv(key, value)
    }
    fn remove(&self, key: &K) -> bool {
        self.remove_k(key)
    }
    fn contains(&self, key: &K) -> bool {
        self.contains_k(key)
    }
    fn get(&self, key: &K) -> Option<V> {
        self.get_k(key)
    }
    fn quiescent_len(&self) -> usize {
        self.count_leaves()
    }
}

impl<K, V> Drop for FineLockBst<K, V> {
    fn drop(&mut self) {
        // Free all reachable nodes; the collector frees retired ones.
        let guard = unsafe { nbbst_reclaim::unprotected() };
        let mut stack: Vec<*mut FineNode<K, V>> = Vec::new();
        let l = self.root.left.load(ORD, &guard);
        let r = self.root.right.load(ORD, &guard);
        stack.push(l.as_raw() as *mut _);
        stack.push(r.as_raw() as *mut _);
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            // SAFETY: teardown, exclusive access; each reachable node is
            // pushed exactly once because this is a tree.
            let node = unsafe { Box::from_raw(n) };
            if !node.is_leaf {
                stack.push(node.left.load(ORD, &guard).as_raw() as *mut _);
                stack.push(node.right.load(ORD, &guard).as_raw() as *mut _);
            }
        }
    }
}

impl<K: fmt::Debug, V> fmt::Debug for FineLockBst<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FineLockBst")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let m: FineLockBst<u64, u64> = FineLockBst::new();
        assert!(!m.contains(&1));
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 11));
        assert_eq!(m.get(&1), Some(10));
        assert!(m.remove(&1));
        assert!(!m.remove(&1));
        assert_eq!(m.quiescent_len(), 0);
    }

    #[test]
    fn many_keys_roundtrip() {
        let m: FineLockBst<u64, u64> = FineLockBst::new();
        for k in 0..101 {
            assert!(m.insert(k * 3 % 101, k), "key {}", k * 3 % 101);
        }
        // Second pass: every insert is a duplicate.
        for k in 0..101 {
            assert!(!m.insert(k * 3 % 101, k));
        }
        assert_eq!(m.quiescent_len(), 101);
        for k in 0..101 {
            assert!(m.contains(&k));
        }
    }

    #[test]
    fn concurrent_mixed_ops_stay_consistent() {
        let m: FineLockBst<u64, u64> = FineLockBst::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = &m;
                s.spawn(move || {
                    let mut x = t + 1;
                    for _ in 0..2_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 64;
                        match x % 3 {
                            0 => {
                                m.insert(k, k);
                            }
                            1 => {
                                m.remove(&k);
                            }
                            _ => {
                                m.contains(&k);
                            }
                        }
                    }
                });
            }
        });
        // Every remaining key is observable.
        let n = m.quiescent_len();
        let observed = (0..64u64).filter(|k| m.contains(k)).count();
        assert_eq!(n, observed);
    }

    #[test]
    fn disjoint_range_parallel_inserts() {
        let m: FineLockBst<u64, u64> = FineLockBst::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..500 {
                        assert!(m.insert(t * 10_000 + i, i));
                    }
                });
            }
        });
        assert_eq!(m.quiescent_len(), 2_000);
    }
}
