//! The simplest possible concurrent dictionary: the sequential
//! leaf-oriented BST behind one reader-writer lock.
//!
//! This is the "do nothing clever" baseline: all updates serialize on a
//! single lock, and — unlike the EFRB tree — a stalled writer blocks the
//! entire structure. Its throughput curve is the foil for experiment T1.

use nbbst_dictionary::{ConcurrentMap, SeqMap};
use nbbst_model::LeafBst;
use parking_lot::RwLock;
use std::fmt;

/// A [`LeafBst`] wrapped in a [`parking_lot::RwLock`].
///
/// # Examples
///
/// ```
/// use nbbst_baselines::CoarseLockBst;
/// use nbbst_dictionary::ConcurrentMap;
///
/// let m: CoarseLockBst<u64, u64> = CoarseLockBst::new();
/// assert!(m.insert(1, 10));
/// assert!(m.contains(&1));
/// assert!(m.remove(&1));
/// ```
pub struct CoarseLockBst<K, V> {
    inner: RwLock<LeafBst<K, V>>,
}

impl<K: Ord + Clone, V> CoarseLockBst<K, V> {
    /// Creates an empty dictionary.
    pub fn new() -> CoarseLockBst<K, V> {
        CoarseLockBst {
            inner: RwLock::new(LeafBst::new()),
        }
    }
}

impl<K: Ord + Clone, V> Default for CoarseLockBst<K, V> {
    fn default() -> Self {
        CoarseLockBst::new()
    }
}

impl<K, V> ConcurrentMap<K, V> for CoarseLockBst<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.inner.write().insert(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        SeqMap::remove(&mut *self.inner.write(), key)
    }

    fn contains(&self, key: &K) -> bool {
        SeqMap::contains(&*self.inner.read(), key)
    }

    fn get(&self, key: &K) -> Option<V> {
        SeqMap::get(&*self.inner.read(), key)
    }

    fn quiescent_len(&self) -> usize {
        self.inner.read().len()
    }
}

impl<K: Ord + Clone + fmt::Debug, V> fmt::Debug for CoarseLockBst<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoarseLockBst")
            .field("len", &self.inner.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let m: CoarseLockBst<u64, &str> = CoarseLockBst::new();
        assert!(m.insert(1, "a"));
        assert!(!m.insert(1, "b"));
        assert_eq!(m.get(&1), Some("a"));
        assert!(m.remove(&1));
        assert!(!m.remove(&1));
        assert!(m.quiescent_is_empty());
    }

    #[test]
    fn concurrent_inserts_serialize_correctly() {
        let m: CoarseLockBst<u64, u64> = CoarseLockBst::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..250 {
                        m.insert(t * 1_000 + i, i);
                    }
                });
            }
        });
        assert_eq!(m.quiescent_len(), 1_000);
    }
}
