//! The standard-library reference point: `RwLock<BTreeMap>`.
//!
//! Not part of the paper's comparison set, but the first thing a Rust
//! practitioner would reach for — including it anchors every experiment
//! table to a familiar baseline (and shows what the lock-free structures
//! must beat to be worth adopting on a given machine).

use nbbst_dictionary::{ConcurrentMap, SeqMap};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;

/// `parking_lot::RwLock<std::collections::BTreeMap>` behind the common
/// dictionary interface (duplicate-rejecting insert, like the paper's).
///
/// # Examples
///
/// ```
/// use nbbst_baselines::StdBTreeMap;
/// use nbbst_dictionary::ConcurrentMap;
///
/// let m: StdBTreeMap<u64, u64> = StdBTreeMap::new();
/// assert!(m.insert(1, 10));
/// assert!(!m.insert(1, 11));
/// assert_eq!(m.get(&1), Some(10));
/// ```
pub struct StdBTreeMap<K, V> {
    inner: RwLock<BTreeMap<K, V>>,
}

impl<K: Ord, V> StdBTreeMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> StdBTreeMap<K, V> {
        StdBTreeMap {
            inner: RwLock::new(BTreeMap::new()),
        }
    }
}

impl<K: Ord, V> Default for StdBTreeMap<K, V> {
    fn default() -> Self {
        StdBTreeMap::new()
    }
}

impl<K, V> ConcurrentMap<K, V> for StdBTreeMap<K, V>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        SeqMap::insert(&mut *self.inner.write(), key, value)
    }
    fn remove(&self, key: &K) -> bool {
        SeqMap::remove(&mut *self.inner.write(), key)
    }
    fn contains(&self, key: &K) -> bool {
        SeqMap::contains(&*self.inner.read(), key)
    }
    fn get(&self, key: &K) -> Option<V> {
        SeqMap::get(&*self.inner.read(), key)
    }
    fn quiescent_len(&self) -> usize {
        self.inner.read().len()
    }
}

impl<K: Ord + fmt::Debug, V: fmt::Debug> fmt::Debug for StdBTreeMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.inner.read().iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantics_match_the_dictionary_contract() {
        let m: StdBTreeMap<u64, &str> = StdBTreeMap::new();
        assert!(!m.contains(&1));
        assert!(m.insert(1, "a"));
        assert!(!m.insert(1, "b"), "duplicate rejected");
        assert_eq!(m.get(&1), Some("a"), "not overwritten");
        assert!(m.remove(&1));
        assert!(m.quiescent_is_empty());
    }

    #[test]
    fn concurrent_access_is_serializable() {
        let m: StdBTreeMap<u64, u64> = StdBTreeMap::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..500 {
                        m.insert(t * 1_000 + i, i);
                        m.contains(&(t * 1_000 + i));
                    }
                });
            }
        });
        assert_eq!(m.quiescent_len(), 2_000);
    }
}
