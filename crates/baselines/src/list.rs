//! A lock-free ordered linked list (Harris 2001 / Michael 2002).
//!
//! The paper's marking protocol descends directly from Harris's linked
//! list: "Harris avoided analogous problems in his linked list
//! implementation by setting a 'marked' bit in the successor pointer of a
//! node before deleting that node from the list" (Section 3). This module
//! implements that ancestor technique — deletion first *marks* the victim's
//! `next` pointer (tag bit 1), then physically unlinks it — both as a
//! dictionary baseline for small key ranges and as a self-contained
//! demonstration of the mark-before-unlink idea the tree generalizes.
//!
//! Physical unlinking follows Michael's variant: traversals CAS marked
//! nodes out as they pass (and retire them to the epoch collector), and
//! restart if a CAS fails.

use nbbst_dictionary::ConcurrentMap;
use nbbst_reclaim::{Atomic, Collector, Guard, Owned, Shared};
use std::fmt;
use std::sync::atomic::Ordering;

const ORD: Ordering = Ordering::SeqCst;

/// Tag bit on a node's `next` pointer: the node is logically deleted.
const MARK: usize = 1;

struct ListNode<K, V> {
    key: K,
    value: V,
    next: Atomic<ListNode<K, V>>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for ListNode<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for ListNode<K, V> {}

/// A sorted lock-free linked-list dictionary.
///
/// `O(n)` operations — intended for correctness comparisons and
/// small-key-range contention experiments, not as a scalable dictionary.
///
/// # Examples
///
/// ```
/// use nbbst_baselines::LockFreeList;
/// use nbbst_dictionary::ConcurrentMap;
///
/// let l: LockFreeList<u64, u64> = LockFreeList::new();
/// assert!(l.insert(2, 20));
/// assert!(l.insert(1, 10));
/// assert!(!l.insert(2, 22));
/// assert!(l.remove(&1));
/// assert!(l.contains(&2));
/// ```
pub struct LockFreeList<K, V> {
    head: Atomic<ListNode<K, V>>,
    collector: Collector,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for LockFreeList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for LockFreeList<K, V> {}

/// Result of the internal search: the first unmarked node with
/// `node.key >= key` (`curr`, possibly null) and the link that points to it.
struct ListPos<'g, K, V> {
    /// The `next` field of the predecessor (or the list head).
    prev: &'g Atomic<ListNode<K, V>>,
    curr: Shared<'g, ListNode<K, V>>,
}

impl<K, V> LockFreeList<K, V>
where
    K: Ord,
{
    /// Creates an empty list.
    pub fn new() -> LockFreeList<K, V> {
        LockFreeList {
            head: Atomic::null(),
            collector: Collector::new(),
        }
    }

    /// Michael-style search: positions at `key`, unlinking (and retiring)
    /// any marked nodes encountered. Restarts on CAS failure.
    fn search<'g>(&'g self, key: &K, guard: &'g Guard) -> ListPos<'g, K, V> {
        'retry: loop {
            let mut prev: &'g Atomic<ListNode<K, V>> = &self.head;
            let mut curr = prev.load(ORD, guard);
            loop {
                let Some(curr_ref) = (unsafe { curr.with_tag(0).as_ref() }) else {
                    return ListPos {
                        prev,
                        curr: Shared::null(),
                    };
                };
                let next = curr_ref.next.load(ORD, guard);
                if next.tag() & MARK != 0 {
                    // `curr` is logically deleted: try to unlink it.
                    let unmarked_next = next.with_tag(0);
                    match prev.compare_exchange(curr.with_tag(0), unmarked_next, ORD, ORD, guard) {
                        Ok(_) => {
                            // SAFETY: we unlinked it; unique retire (only
                            // the successful unlinker retires).
                            unsafe { guard.defer_destroy(curr.with_tag(0)) };
                            curr = unmarked_next;
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                if curr_ref.key >= *key {
                    return ListPos {
                        prev,
                        curr: curr.with_tag(0),
                    };
                }
                prev = &curr_ref.next;
                curr = next;
            }
        }
    }

    /// Inserts `(key, value)`; `false` on duplicate.
    pub fn insert_kv(&self, key: K, value: V) -> bool {
        let guard = self.collector.pin();
        let mut new = Owned::new(ListNode {
            key,
            value,
            next: Atomic::null(),
        });
        loop {
            let pos = self.search(&new.key, &guard);
            if let Some(curr_ref) = unsafe { pos.curr.as_ref() } {
                if curr_ref.key == new.key {
                    return false; // duplicate (the allocation drops here)
                }
            }
            new.next.store(pos.curr, ORD);
            match pos.prev.compare_exchange(pos.curr, new, ORD, ORD, &guard) {
                Ok(_) => return true,
                Err(e) => new = e.new, // reuse the allocation and retry
            }
        }
    }

    /// Removes `key`; `false` if absent.
    pub fn remove_k(&self, key: &K) -> bool {
        let guard = self.collector.pin();
        loop {
            let pos = self.search(key, &guard);
            let Some(curr_ref) = (unsafe { pos.curr.as_ref() }) else {
                return false;
            };
            if curr_ref.key != *key {
                return false;
            }
            let next = curr_ref.next.load(ORD, &guard);
            if next.tag() & MARK != 0 {
                continue; // someone else is deleting it; re-search
            }
            // Logical deletion: mark the successor pointer (Harris).
            if curr_ref
                .next
                .compare_exchange(next, next.with_tag(MARK), ORD, ORD, &guard)
                .is_err()
            {
                continue;
            }
            // Physical deletion: best effort; a failed CAS leaves the node
            // for the next traversal to unlink.
            if pos
                .prev
                .compare_exchange(pos.curr, next.with_tag(0), ORD, ORD, &guard)
                .is_ok()
            {
                // SAFETY: unique retire by the successful unlinker.
                unsafe { guard.defer_destroy(pos.curr) };
            }
            return true;
        }
    }

    /// Membership test (wait-free over the unmarked chain, restarts only
    /// via `search`'s unlink CAS).
    pub fn contains_k(&self, key: &K) -> bool {
        let guard = self.collector.pin();
        let pos = self.search(key, &guard);
        matches!(unsafe { pos.curr.as_ref() }, Some(c) if c.key == *key)
    }

    /// Clones the value stored under `key`.
    pub fn get_k(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let guard = self.collector.pin();
        let pos = self.search(key, &guard);
        match unsafe { pos.curr.as_ref() } {
            Some(c) if c.key == *key => Some(c.value.clone()),
            _ => None,
        }
    }

    /// Counts unmarked nodes (quiescent).
    pub fn len_slow(&self) -> usize {
        let guard = self.collector.pin();
        let mut n = 0;
        let mut curr = self.head.load(ORD, &guard);
        while let Some(c) = unsafe { curr.with_tag(0).as_ref() } {
            let next = c.next.load(ORD, &guard);
            if next.tag() & MARK == 0 {
                n += 1;
            }
            curr = next;
        }
        n
    }

    /// The keys currently in the list, in order (quiescent).
    pub fn keys_snapshot(&self) -> Vec<K>
    where
        K: Clone,
    {
        let guard = self.collector.pin();
        let mut keys = Vec::new();
        let mut curr = self.head.load(ORD, &guard);
        while let Some(c) = unsafe { curr.with_tag(0).as_ref() } {
            let next = c.next.load(ORD, &guard);
            if next.tag() & MARK == 0 {
                keys.push(c.key.clone());
            }
            curr = next;
        }
        keys
    }
}

impl<K: Ord, V> Default for LockFreeList<K, V> {
    fn default() -> Self {
        LockFreeList::new()
    }
}

impl<K, V> ConcurrentMap<K, V> for LockFreeList<K, V>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_kv(key, value)
    }
    fn remove(&self, key: &K) -> bool {
        self.remove_k(key)
    }
    fn contains(&self, key: &K) -> bool {
        self.contains_k(key)
    }
    fn get(&self, key: &K) -> Option<V> {
        self.get_k(key)
    }
    fn quiescent_len(&self) -> usize {
        self.len_slow()
    }
}

impl<K, V> Drop for LockFreeList<K, V> {
    fn drop(&mut self) {
        // Free the remaining chain (marked nodes still linked included).
        let guard = unsafe { nbbst_reclaim::unprotected() };
        let mut curr = self.head.load(ORD, &guard);
        while !curr.with_tag(0).is_null() {
            // SAFETY: teardown; exclusive access.
            let node = unsafe { Box::from_raw(curr.with_tag(0).as_raw() as *mut ListNode<K, V>) };
            curr = node.next.load(ORD, &guard);
        }
    }
}

impl<K, V> fmt::Debug for LockFreeList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LockFreeList")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let l: LockFreeList<u64, u64> = LockFreeList::new();
        assert!(!l.contains(&1));
        assert!(l.insert(1, 10));
        assert!(!l.insert(1, 11));
        assert_eq!(l.get(&1), Some(10));
        assert!(l.remove(&1));
        assert!(!l.remove(&1));
        assert_eq!(l.quiescent_len(), 0);
    }

    #[test]
    fn keys_stay_sorted() {
        let l: LockFreeList<u64, ()> = LockFreeList::new();
        for k in [5u64, 2, 9, 1, 7, 3] {
            assert!(l.insert(k, ()));
        }
        assert_eq!(l.keys_snapshot(), vec![1, 2, 3, 5, 7, 9]);
    }

    #[test]
    fn marked_nodes_are_skipped_and_unlinked() {
        let l: LockFreeList<u64, ()> = LockFreeList::new();
        for k in 0..10u64 {
            l.insert(k, ());
        }
        for k in (0..10u64).step_by(2) {
            assert!(l.remove(&k));
        }
        assert_eq!(l.keys_snapshot(), vec![1, 3, 5, 7, 9]);
        for k in (0..10u64).step_by(2) {
            assert!(!l.contains(&k));
        }
    }

    #[test]
    fn concurrent_stress_agrees_with_observation() {
        let l: LockFreeList<u64, u64> = LockFreeList::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let l = &l;
                s.spawn(move || {
                    let mut x = t + 1;
                    for _ in 0..2_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 32;
                        match x % 3 {
                            0 => {
                                l.insert(k, k);
                            }
                            1 => {
                                l.remove(&k);
                            }
                            _ => {
                                l.contains(&k);
                            }
                        }
                    }
                });
            }
        });
        let n = l.quiescent_len();
        let observed = (0..32u64).filter(|k| l.contains(k)).count();
        assert_eq!(n, observed);
        let keys = l.keys_snapshot();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "list must stay sorted and duplicate-free");
    }

    #[test]
    fn drop_with_marked_but_linked_nodes() {
        let l: LockFreeList<u64, u64> = LockFreeList::new();
        for k in 0..100 {
            l.insert(k, k);
        }
        for k in 0..100 {
            l.remove(&k);
        }
        drop(l);
    }
}
