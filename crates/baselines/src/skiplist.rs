//! A lock-free skiplist (Herlihy–Shavit style, built on Harris marking).
//!
//! The paper opens with Doug Lea's remark that Java's non-blocking
//! dictionary uses a *skiplist* because "there are no known efficient
//! lock-free insertion and deletion algorithms for search trees". This
//! module provides that incumbent as a from-scratch baseline, so the
//! evaluation can put the EFRB tree next to exactly the structure it was
//! positioned against.
//!
//! Design: a tower of Harris-marked lists. Insertion splices bottom-up
//! (the bottom-level CAS linearizes), deletion marks top-down and
//! linearizes at the bottom-level mark; traversals physically unlink
//! marked nodes as they pass. The logical deleter retires the node to the
//! epoch collector only after verifying it is unreachable from the head at
//! every level, which makes reclamation safe without per-node reference
//! counts.

use nbbst_dictionary::ConcurrentMap;
use nbbst_reclaim::{Atomic, Collector, Guard, Owned, Shared};
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::Ordering;

const ORD: Ordering = Ordering::SeqCst;
const MARK: usize = 1;

/// Maximum tower height; supports ~2^20 elements comfortably.
const MAX_HEIGHT: usize = 20;

struct SkipNode<K, V> {
    key: K,
    value: V,
    height: usize,
    next: [Atomic<SkipNode<K, V>>; MAX_HEIGHT],
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for SkipNode<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SkipNode<K, V> {}

/// A lock-free skiplist dictionary.
///
/// # Examples
///
/// ```
/// use nbbst_baselines::SkipList;
/// use nbbst_dictionary::ConcurrentMap;
///
/// let s: SkipList<u64, u64> = SkipList::new();
/// assert!(s.insert(5, 50));
/// assert!(!s.insert(5, 55));
/// assert_eq!(s.get(&5), Some(50));
/// assert!(s.remove(&5));
/// ```
pub struct SkipList<K, V> {
    head: [Atomic<SkipNode<K, V>>; MAX_HEIGHT],
    collector: Collector,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for SkipList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SkipList<K, V> {}

thread_local! {
    /// Per-thread xorshift state for tower heights (no locking, no global
    /// RNG contention). Zero means "not yet seeded".
    static HEIGHT_RNG: Cell<u64> = const { Cell::new(0) };
}

/// Distinct per-thread seeds.
static SEED_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn random_height() -> usize {
    HEIGHT_RNG.with(|state| {
        let mut x = state.get();
        if x == 0 {
            x = SEED_COUNTER
                .fetch_add(1, Ordering::Relaxed)
                .wrapping_mul(0x9E3779B97F4A7C15)
                | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state.set(x);
        // Geometric with p = 1/2, capped at MAX_HEIGHT.
        (((x as u32) | 0x8000_0000).trailing_zeros() as usize + 1).min(MAX_HEIGHT)
    })
}

impl<K, V> SkipList<K, V>
where
    K: Ord,
{
    /// Creates an empty skiplist.
    pub fn new() -> SkipList<K, V> {
        SkipList {
            head: std::array::from_fn(|_| Atomic::null()),
            collector: Collector::new(),
        }
    }

    /// Positions `preds`/`succs` around `key` at every level, unlinking
    /// marked nodes on the way. Returns `true` iff an unmarked node with
    /// `key` sits at the bottom level (in `succs[0]`).
    fn find<'g>(
        &'g self,
        key: &K,
        preds: &mut [&'g Atomic<SkipNode<K, V>>; MAX_HEIGHT],
        succs: &mut [Shared<'g, SkipNode<K, V>>; MAX_HEIGHT],
        guard: &'g Guard,
    ) -> bool {
        'retry: loop {
            // `pred_node` is the rightmost node with key < `key` seen so
            // far (None = the head); descending a level continues from its
            // next-lower link.
            let mut pred_node: Option<&'g SkipNode<K, V>> = None;
            for level in (0..MAX_HEIGHT).rev() {
                let mut link: &'g Atomic<SkipNode<K, V>> = match pred_node {
                    None => &self.head[level],
                    Some(p) => &p.next[level],
                };
                let mut curr = link.load(ORD, guard);
                #[allow(clippy::while_let_loop)] // symmetric break structure
                loop {
                    let Some(curr_ref) = (unsafe { curr.with_tag(0).as_ref() }) else {
                        break;
                    };
                    let next = curr_ref.next[level].load(ORD, guard);
                    if next.tag() & MARK != 0 {
                        // Unlink the marked node at this level (do NOT
                        // retire: it may be linked at other levels; its
                        // deleter retires after full unlink).
                        match link.compare_exchange(
                            curr.with_tag(0),
                            next.with_tag(0),
                            ORD,
                            ORD,
                            guard,
                        ) {
                            Ok(_) => {
                                curr = next.with_tag(0);
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    if curr_ref.key < *key {
                        pred_node = Some(curr_ref);
                        link = &curr_ref.next[level];
                        curr = next;
                        continue;
                    }
                    break;
                }
                preds[level] = link;
                succs[level] = curr.with_tag(0);
            }
            let found = match unsafe { succs[0].as_ref() } {
                Some(c) if c.key == *key => c.next[0].load(ORD, guard).tag() & MARK == 0,
                _ => false,
            };
            return found;
        }
    }

    /// Inserts `(key, value)`; `false` on duplicate.
    pub fn insert_kv(&self, key: K, value: V) -> bool {
        let guard = self.collector.pin();
        let height = random_height();
        let mut preds: [&Atomic<SkipNode<K, V>>; MAX_HEIGHT] =
            std::array::from_fn(|i| &self.head[i]);
        let mut succs: [Shared<'_, SkipNode<K, V>>; MAX_HEIGHT] = [Shared::null(); MAX_HEIGHT];

        let mut node = Owned::new(SkipNode {
            key,
            value,
            height,
            next: std::array::from_fn(|_| Atomic::null()),
        });
        loop {
            if self.find(&node.key, &mut preds, &mut succs, &guard) {
                return false; // duplicate (allocation drops)
            }
            for (level, succ) in succs.iter().enumerate().take(height) {
                node.next[level].store(*succ, ORD);
            }
            // Bottom-level splice: the linearization point of a successful
            // insert.
            let node_shared = match preds[0].compare_exchange(succs[0], node, ORD, ORD, &guard) {
                Ok(s) => s,
                Err(e) => {
                    node = e.new;
                    continue;
                }
            };
            // SAFETY: just published under our guard.
            let node_ref = unsafe { node_shared.deref() };

            // Link the upper levels.
            'levels: for level in 1..height {
                loop {
                    let cur = node_ref.next[level].load(ORD, &guard);
                    if cur.tag() & MARK != 0 {
                        break 'levels; // deletion already in progress
                    }
                    let succ = succs[level];
                    // Keep our forward pointer current before exposing it.
                    if cur != succ
                        && node_ref.next[level]
                            .compare_exchange(cur, succ, ORD, ORD, &guard)
                            .is_err()
                    {
                        continue; // re-read (marked or raced)
                    }
                    if preds[level]
                        .compare_exchange(succ, node_shared, ORD, ORD, &guard)
                        .is_ok()
                    {
                        break;
                    }
                    // Lost a race at this level: recompute the neighborhood.
                    self.find(&node_ref.key, &mut preds, &mut succs, &guard);
                    // If our own node shows up as the successor (it is now
                    // linked at this level via helping-free races), stop.
                    if succs[level] == node_shared {
                        break;
                    }
                }
            }
            return true;
        }
    }

    /// Removes `key`; `false` if absent.
    pub fn remove_k(&self, key: &K) -> bool {
        let guard = self.collector.pin();
        let mut preds: [&Atomic<SkipNode<K, V>>; MAX_HEIGHT] =
            std::array::from_fn(|i| &self.head[i]);
        let mut succs: [Shared<'_, SkipNode<K, V>>; MAX_HEIGHT] = [Shared::null(); MAX_HEIGHT];
        if !self.find(key, &mut preds, &mut succs, &guard) {
            return false;
        }
        let node = succs[0];
        // SAFETY: found under our guard.
        let node_ref = unsafe { node.deref() };

        // Mark the upper levels top-down (freezes the tower).
        for level in (1..node_ref.height).rev() {
            loop {
                let next = node_ref.next[level].load(ORD, &guard);
                if next.tag() & MARK != 0 {
                    break;
                }
                if node_ref.next[level]
                    .compare_exchange(next, next.with_tag(MARK), ORD, ORD, &guard)
                    .is_ok()
                {
                    break;
                }
            }
        }
        // Bottom-level mark: the linearization point. Exactly one thread
        // wins and owns the reclamation duty.
        loop {
            let next = node_ref.next[0].load(ORD, &guard);
            if next.tag() & MARK != 0 {
                // Another deleter linearized first; help unlink and lose.
                self.find(key, &mut preds, &mut succs, &guard);
                return false;
            }
            if node_ref.next[0]
                .compare_exchange(next, next.with_tag(MARK), ORD, ORD, &guard)
                .is_ok()
            {
                // Physically unlink at every level, then retire once the
                // node is unreachable from the head.
                self.find(key, &mut preds, &mut succs, &guard);
                let mut spins = 0usize;
                while self.is_linked(node, key, &guard) {
                    self.find(key, &mut preds, &mut succs, &guard);
                    spins += 1;
                    debug_assert!(spins < 1_000_000, "unlink verification diverged");
                }
                // SAFETY: unreachable from the head at every level, and we
                // are the unique logical deleter.
                unsafe { guard.defer_destroy(node) };
                return true;
            }
        }
    }

    /// Whether `node` is still reachable from the head at any level.
    ///
    /// Descends with key comparisons exactly like a search (`O(log n)`
    /// expected — a naive per-level scan from the head would make every
    /// delete `O(n)`), then scans the short equal-key run at each level
    /// for pointer equality.
    fn is_linked(&self, node: Shared<'_, SkipNode<K, V>>, key: &K, guard: &Guard) -> bool {
        let node = node.with_tag(0);
        let mut pred: Option<&SkipNode<K, V>> = None;
        for level in (0..MAX_HEIGHT).rev() {
            let link: &Atomic<SkipNode<K, V>> = match pred {
                None => &self.head[level],
                Some(p) => &p.next[level],
            };
            let mut curr = link.load(ORD, guard).with_tag(0);
            // Advance while strictly below `key`, remembering the pred for
            // the next level down.
            while let Some(c) = unsafe { curr.as_ref() } {
                if c.key >= *key {
                    break;
                }
                pred = Some(c);
                curr = c.next[level].load(ORD, guard).with_tag(0);
            }
            // Scan the (short) run of equal keys at this level.
            let mut scan = curr;
            while let Some(c) = unsafe { scan.as_ref() } {
                if c.key > *key {
                    break;
                }
                if scan == node {
                    return true;
                }
                scan = c.next[level].load(ORD, guard).with_tag(0);
            }
        }
        false
    }

    /// Membership test.
    pub fn contains_k(&self, key: &K) -> bool {
        let guard = self.collector.pin();
        let mut preds: [&Atomic<SkipNode<K, V>>; MAX_HEIGHT] =
            std::array::from_fn(|i| &self.head[i]);
        let mut succs: [Shared<'_, SkipNode<K, V>>; MAX_HEIGHT] = [Shared::null(); MAX_HEIGHT];
        self.find(key, &mut preds, &mut succs, &guard)
    }

    /// Clones the value stored under `key`.
    pub fn get_k(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let guard = self.collector.pin();
        let mut preds: [&Atomic<SkipNode<K, V>>; MAX_HEIGHT] =
            std::array::from_fn(|i| &self.head[i]);
        let mut succs: [Shared<'_, SkipNode<K, V>>; MAX_HEIGHT] = [Shared::null(); MAX_HEIGHT];
        if self.find(key, &mut preds, &mut succs, &guard) {
            // SAFETY: `find` returned it under our guard.
            Some(unsafe { succs[0].deref() }.value.clone())
        } else {
            None
        }
    }

    /// Counts unmarked bottom-level nodes (quiescent).
    pub fn len_slow(&self) -> usize {
        let guard = self.collector.pin();
        let mut n = 0;
        let mut curr = self.head[0].load(ORD, &guard).with_tag(0);
        while let Some(c) = unsafe { curr.as_ref() } {
            let next = c.next[0].load(ORD, &guard);
            if next.tag() & MARK == 0 {
                n += 1;
            }
            curr = next.with_tag(0);
        }
        n
    }

    /// The keys currently present, in order (quiescent).
    pub fn keys_snapshot(&self) -> Vec<K>
    where
        K: Clone,
    {
        let guard = self.collector.pin();
        let mut keys = Vec::new();
        let mut curr = self.head[0].load(ORD, &guard).with_tag(0);
        while let Some(c) = unsafe { curr.as_ref() } {
            let next = c.next[0].load(ORD, &guard);
            if next.tag() & MARK == 0 {
                keys.push(c.key.clone());
            }
            curr = next.with_tag(0);
        }
        keys
    }
}

impl<K: Ord, V> Default for SkipList<K, V> {
    fn default() -> Self {
        SkipList::new()
    }
}

impl<K, V> ConcurrentMap<K, V> for SkipList<K, V>
where
    K: Ord + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_kv(key, value)
    }
    fn remove(&self, key: &K) -> bool {
        self.remove_k(key)
    }
    fn contains(&self, key: &K) -> bool {
        self.contains_k(key)
    }
    fn get(&self, key: &K) -> Option<V> {
        self.get_k(key)
    }
    fn quiescent_len(&self) -> usize {
        self.len_slow()
    }
}

impl<K, V> Drop for SkipList<K, V> {
    fn drop(&mut self) {
        // Free the bottom-level chain; towers are interior pointers of the
        // same allocations. Marked-but-linked nodes are included.
        let guard = unsafe { nbbst_reclaim::unprotected() };
        let mut curr = self.head[0].load(ORD, &guard).with_tag(0);
        while !curr.is_null() {
            // SAFETY: teardown; exclusive access. Every node is linked at
            // the bottom level exactly once.
            let node = unsafe { Box::from_raw(curr.as_raw() as *mut SkipNode<K, V>) };
            curr = node.next[0].load(ORD, &guard).with_tag(0);
        }
    }
}

impl<K, V> fmt::Debug for SkipList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SkipList")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let s: SkipList<u64, u64> = SkipList::new();
        assert!(!s.contains(&1));
        assert!(s.insert(1, 10));
        assert!(!s.insert(1, 11));
        assert_eq!(s.get(&1), Some(10));
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert_eq!(s.quiescent_len(), 0);
    }

    #[test]
    fn keys_stay_sorted_across_levels() {
        let s: SkipList<u64, ()> = SkipList::new();
        for k in [50u64, 20, 90, 10, 70, 30, 60, 40, 80] {
            assert!(s.insert(k, ()));
        }
        assert_eq!(s.keys_snapshot(), vec![10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn interleaved_insert_remove() {
        let s: SkipList<u64, u64> = SkipList::new();
        for k in 0..200u64 {
            assert!(s.insert(k, k));
        }
        for k in (0..200u64).step_by(2) {
            assert!(s.remove(&k));
        }
        assert_eq!(s.quiescent_len(), 100);
        for k in 0..200u64 {
            assert_eq!(s.contains(&k), k % 2 == 1, "key {k}");
        }
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let s: SkipList<u64, u64> = SkipList::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..500 {
                        assert!(s.insert(t * 10_000 + i, i));
                    }
                });
            }
        });
        assert_eq!(s.quiescent_len(), 4_000);
        let keys = s.keys_snapshot();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn concurrent_mixed_stress() {
        let s: SkipList<u64, u64> = SkipList::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let s = &s;
                scope.spawn(move || {
                    let mut x = t + 1;
                    for _ in 0..3_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 64;
                        match x % 3 {
                            0 => {
                                s.insert(k, k);
                            }
                            1 => {
                                s.remove(&k);
                            }
                            _ => {
                                s.contains(&k);
                            }
                        }
                    }
                });
            }
        });
        let n = s.quiescent_len();
        let observed = (0..64u64).filter(|k| s.contains(k)).count();
        assert_eq!(n, observed);
        let keys = s.keys_snapshot();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(keys, dedup, "sorted, duplicate-free bottom level");
    }

    #[test]
    fn contended_same_key_insert_remove() {
        let s: SkipList<u64, u64> = SkipList::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        if (t + i) % 2 == 0 {
                            s.insert(7, i);
                        } else {
                            s.remove(&7);
                        }
                    }
                });
            }
        });
        let n = s.quiescent_len();
        assert!(n <= 1, "at most one instance of the key: {n}");
        assert_eq!(s.contains(&7), n == 1);
    }
}
