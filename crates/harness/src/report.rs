//! Table and CSV output for experiment binaries.
//!
//! Every table in EXPERIMENTS.md is printed with [`Table`]: fixed-width
//! text for the terminal plus a CSV sibling for plotting.

use std::fmt;
use std::fmt::Write as _;

/// A simple right-aligned text table.
///
/// # Examples
///
/// ```
/// use nbbst_harness::Table;
///
/// let mut t = Table::new(&["threads", "Mops/s"]);
/// t.row(&["1", "4.2"]);
/// t.row(&["8", "21.0"]);
/// let s = t.to_string();
/// assert!(s.contains("threads"));
/// assert!(s.contains("21.0"));
/// assert_eq!(t.to_csv(), "threads,Mops/s\n1,4.2\n8,21.0\n");
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// CSV rendition (RFC-4180-lite: our cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.join(","));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for r in &self.rows {
            writeln!(f, "{}", fmt_row(r))?;
        }
        Ok(())
    }
}

/// A serializable record of one experiment data point (JSON-lines
/// friendly, for archiving raw results next to the rendered tables).
#[derive(Debug, Clone)]
pub struct DataPoint {
    /// Experiment id from DESIGN.md (e.g. "T1").
    pub experiment: String,
    /// Structure under test.
    pub structure: String,
    /// Worker threads.
    pub threads: usize,
    /// Key-range size.
    pub key_range: u64,
    /// Operation mix label.
    pub mix: String,
    /// Million ops/second.
    pub mops: f64,
    /// Free-form extra dimensions (e.g. "disjoint"/"overlapping").
    pub variant: String,
}

impl DataPoint {
    /// One JSON line.
    pub fn to_json_line(&self) -> String {
        // Hand-rolled to avoid pulling serde_json; fields are simple.
        format!(
            "{{\"experiment\":\"{}\",\"structure\":\"{}\",\"threads\":{},\"key_range\":{},\"mix\":\"{}\",\"mops\":{:.6},\"variant\":\"{}\"}}",
            self.experiment, self.structure, self.threads, self.key_range, self.mix, self.mops, self.variant
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_csv() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["short", "1"]);
        t.row(&["a-much-longer-name", "123456"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows share the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(
            t.to_csv(),
            "name,value\nshort,1\na-much-longer-name,123456\n"
        );
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn data_point_json() {
        let d = DataPoint {
            experiment: "T1".into(),
            structure: "nbbst".into(),
            threads: 8,
            key_range: 65536,
            mix: "90f/5i/5d".into(),
            mops: 12.5,
            variant: "".into(),
        };
        let line = d.to_json_line();
        assert!(line.contains("\"threads\":8"));
        assert!(line.contains("\"mops\":12.5"));
    }
}
