//! Workload generation, measurement and checking for concurrent
//! dictionaries.
//!
//! Everything the experiment suite (EXPERIMENTS.md) needs, behind the
//! [`nbbst_dictionary::ConcurrentMap`] abstraction so the EFRB tree and
//! every baseline are driven identically:
//!
//! * [`WorkloadSpec`] / [`OpMix`] / [`KeyDist`] — parameterized workloads
//!   with deterministic per-thread streams (uniform, Zipf, hotspot).
//! * [`run_for`] / [`run_ops`] / [`prefill`] — barrier-synchronized
//!   multi-threaded throughput and latency measurement ([`RunResult`],
//!   [`Histogram`]).
//! * [`record_history`] / [`check_linearizable`] — empirical
//!   linearizability checking (Wing–Gong with state memoization) against
//!   the dictionary semantics.
//! * [`Table`] / [`DataPoint`] — text/CSV/JSON-lines reporting.

#![warn(missing_docs, missing_debug_implementations)]

mod histogram;
mod linearize;
mod report;
mod runner;
#[cfg(test)]
mod stats_tests;
mod workload;

pub use histogram::Histogram;
pub use linearize::{check_linearizable, check_map_linearizable, record_history, CompletedOp};
pub use report::{DataPoint, Table};
pub use runner::{prefill, run_for, run_ops, validate_after_run, RunResult};
pub use workload::{KeyDist, OpGenerator, OpMix, WorkloadSpec};
