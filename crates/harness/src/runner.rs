//! Multi-threaded throughput and latency measurement.
//!
//! The runner spawns `threads` workers, pins them behind a barrier, runs
//! the workload for a fixed duration (or a fixed per-thread op count), and
//! aggregates per-thread counts — the standard methodology for concurrent
//! dictionary evaluations (and what every table in EXPERIMENTS.md is
//! generated with).

use crate::histogram::Histogram;
use crate::workload::WorkloadSpec;
use nbbst_dictionary::{ConcurrentMap, Operation};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Aggregated measurement of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Worker count.
    pub threads: usize,
    /// Total completed operations across workers.
    pub total_ops: u64,
    /// Operations completed per worker.
    pub per_thread_ops: Vec<u64>,
    /// Wall-clock measured interval.
    pub elapsed: Duration,
    /// `Insert` operations that returned `true`.
    pub successful_inserts: u64,
    /// `Delete` operations that returned `true`.
    pub successful_deletes: u64,
    /// Latency samples (every 64th operation), merged across workers.
    pub latency: Histogram,
}

impl RunResult {
    /// Million operations per second.
    pub fn mops(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Ratio of the slowest worker's ops to the fastest's — a fairness
    /// indicator (1.0 = perfectly fair).
    pub fn fairness(&self) -> f64 {
        let min = self.per_thread_ops.iter().copied().min().unwrap_or(0);
        let max = self.per_thread_ops.iter().copied().max().unwrap_or(1);
        if max == 0 {
            1.0
        } else {
            min as f64 / max as f64
        }
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} threads: {:.3} Mops/s ({} ops in {:?})",
            self.threads,
            self.mops(),
            self.total_ops,
            self.elapsed
        )
    }
}

/// Inserts the spec's prefill keys (single-threaded, unmeasured).
pub fn prefill<M: ConcurrentMap<u64, u64> + ?Sized>(map: &M, spec: &WorkloadSpec) {
    for k in spec.prefill_keys() {
        map.insert(k, k);
    }
}

/// Runs `spec` on `map` with `threads` workers for `duration`.
///
/// Latency is sampled on every 64th operation to keep timer overhead out
/// of the throughput signal.
pub fn run_for<M: ConcurrentMap<u64, u64> + ?Sized>(
    map: &M,
    spec: &WorkloadSpec,
    threads: usize,
    duration: Duration,
) -> RunResult {
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);

    let mut per_thread_ops = vec![0u64; threads];
    let mut successful_inserts = 0u64;
    let mut successful_deletes = 0u64;
    let mut latency = Histogram::new();
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let stop = &stop;
            let barrier = &barrier;
            let mut gen = spec.generator(t);
            handles.push(s.spawn(move || {
                let mut ops = 0u64;
                let mut ins_ok = 0u64;
                let mut del_ok = 0u64;
                let mut hist = Histogram::new();
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    // Batch between stop-flag checks to keep the check off
                    // the hot path.
                    for i in 0..128u32 {
                        let op = gen.next_op();
                        let sample = i % 64 == 0;
                        let start = sample.then(Instant::now);
                        let resp = match op {
                            Operation::Contains(k) => map.contains(&k),
                            Operation::Insert(k, v) => {
                                let ok = map.insert(k, v);
                                ins_ok += u64::from(ok);
                                ok
                            }
                            Operation::Remove(k) => {
                                let ok = map.remove(&k);
                                del_ok += u64::from(ok);
                                ok
                            }
                        };
                        std::hint::black_box(resp);
                        if let Some(start) = start {
                            hist.record(start.elapsed().as_nanos() as u64);
                        }
                        ops += 1;
                    }
                }
                (ops, ins_ok, del_ok, hist)
            }));
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        for (t, h) in handles.into_iter().enumerate() {
            let (ops, ins_ok, del_ok, hist) = h.join().expect("worker panicked");
            per_thread_ops[t] = ops;
            successful_inserts += ins_ok;
            successful_deletes += del_ok;
            latency.merge(&hist);
        }
        elapsed = start.elapsed();
    });

    RunResult {
        threads,
        total_ops: per_thread_ops.iter().sum(),
        per_thread_ops,
        elapsed,
        successful_inserts,
        successful_deletes,
        latency,
    }
}

/// Runs a fixed number of operations per thread (useful when total work,
/// not time, must be controlled — e.g. validation runs).
pub fn run_ops<M: ConcurrentMap<u64, u64> + ?Sized>(
    map: &M,
    spec: &WorkloadSpec,
    threads: usize,
    ops_per_thread: u64,
) -> RunResult {
    let barrier = Barrier::new(threads + 1);
    let mut per_thread_ops = vec![0u64; threads];
    let mut successful_inserts = 0u64;
    let mut successful_deletes = 0u64;
    let mut latency = Histogram::new();
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let barrier = &barrier;
            let mut gen = spec.generator(t);
            handles.push(s.spawn(move || {
                let mut ins_ok = 0u64;
                let mut del_ok = 0u64;
                barrier.wait();
                for _ in 0..ops_per_thread {
                    match gen.next_op() {
                        Operation::Contains(k) => {
                            std::hint::black_box(map.contains(&k));
                        }
                        Operation::Insert(k, v) => ins_ok += u64::from(map.insert(k, v)),
                        Operation::Remove(k) => del_ok += u64::from(map.remove(&k)),
                    }
                }
                (ins_ok, del_ok)
            }));
        }
        barrier.wait();
        let start = Instant::now();
        for (t, h) in handles.into_iter().enumerate() {
            let (ins_ok, del_ok) = h.join().expect("worker panicked");
            per_thread_ops[t] = ops_per_thread;
            successful_inserts += ins_ok;
            successful_deletes += del_ok;
        }
        elapsed = start.elapsed();
        latency = Histogram::new();
    });

    RunResult {
        threads,
        total_ops: per_thread_ops.iter().sum(),
        per_thread_ops,
        elapsed,
        successful_inserts,
        successful_deletes,
        latency,
    }
}

/// Validates a map after a run: the set of keys reported by `contains`
/// must match `quiescent_len`, and replaying successful-update deltas must
/// be consistent (`prefill + inserts_true - deletes_true = len`).
///
/// # Errors
///
/// Describes the first inconsistency found.
pub fn validate_after_run<M: ConcurrentMap<u64, u64> + ?Sized>(
    map: &M,
    spec: &WorkloadSpec,
    result: &RunResult,
) -> Result<(), String> {
    let prefill = spec.prefill_keys().len() as i64;
    let expected = prefill + result.successful_inserts as i64 - result.successful_deletes as i64;
    let actual = map.quiescent_len() as i64;
    if expected != actual {
        return Err(format!(
            "size mismatch: prefill {prefill} + inserts {} - deletes {} = {expected}, \
             but the dictionary holds {actual}",
            result.successful_inserts, result.successful_deletes
        ));
    }
    let observed = (0..spec.key_range).filter(|k| map.contains(k)).count() as i64;
    if observed != actual {
        return Err(format!(
            "membership mismatch: contains() sees {observed} keys, len is {actual}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbbst_dictionary::SeqMap;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// Reference concurrent map for runner tests.
    #[derive(Default)]
    struct Locked(Mutex<BTreeMap<u64, u64>>);
    impl ConcurrentMap<u64, u64> for Locked {
        fn insert(&self, k: u64, v: u64) -> bool {
            SeqMap::insert(&mut *self.0.lock().unwrap(), k, v)
        }
        fn remove(&self, k: &u64) -> bool {
            SeqMap::remove(&mut *self.0.lock().unwrap(), k)
        }
        fn contains(&self, k: &u64) -> bool {
            SeqMap::contains(&*self.0.lock().unwrap(), k)
        }
        fn get(&self, k: &u64) -> Option<u64> {
            SeqMap::get(&*self.0.lock().unwrap(), k)
        }
        fn quiescent_len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    #[test]
    fn run_for_produces_sane_numbers() {
        let map = Locked::default();
        let spec = WorkloadSpec::read_heavy(256);
        prefill(&map, &spec);
        let r = run_for(&map, &spec, 2, Duration::from_millis(50));
        assert_eq!(r.threads, 2);
        assert!(r.total_ops > 0);
        assert!(r.mops() > 0.0);
        assert!(r.fairness() > 0.0 && r.fairness() <= 1.0);
        assert!(r.latency.count() > 0);
        validate_after_run(&map, &spec, &r).unwrap();
    }

    #[test]
    fn run_ops_executes_exact_counts() {
        let map = Locked::default();
        let spec = WorkloadSpec::balanced(128);
        prefill(&map, &spec);
        let r = run_ops(&map, &spec, 3, 1_000);
        assert_eq!(r.total_ops, 3_000);
        validate_after_run(&map, &spec, &r).unwrap();
    }

    #[test]
    fn validate_catches_corruption() {
        let map = Locked::default();
        let spec = WorkloadSpec::read_heavy(64);
        prefill(&map, &spec);
        let r = run_ops(&map, &spec, 2, 200);
        // Corrupt: sneak in a key the accounting doesn't know about.
        map.insert(63_000 % 64, 0); // may or may not be new...
        map.0.lock().unwrap().insert(1_000_000, 0); // definitely outside range
        assert!(validate_after_run(&map, &spec, &r).is_err());
    }
}
