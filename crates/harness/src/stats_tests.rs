//! Extra cross-module tests for the harness: runner/workload/linearize
//! interplay, exercised against an in-crate reference dictionary.
//!
//! (Separate file to keep each module's inline tests focused on its own
//! unit behaviour.)

#![cfg(test)]

use crate::{
    check_linearizable, prefill, record_history, run_for, run_ops, validate_after_run, CompletedOp,
    Histogram, KeyDist, OpMix, Table, WorkloadSpec,
};
use nbbst_dictionary::{ConcurrentMap, Operation, Response, SeqMap};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

#[derive(Default)]
struct Locked(Mutex<BTreeMap<u64, u64>>);
impl ConcurrentMap<u64, u64> for Locked {
    fn insert(&self, k: u64, v: u64) -> bool {
        SeqMap::insert(&mut *self.0.lock().unwrap(), k, v)
    }
    fn remove(&self, k: &u64) -> bool {
        SeqMap::remove(&mut *self.0.lock().unwrap(), k)
    }
    fn contains(&self, k: &u64) -> bool {
        SeqMap::contains(&*self.0.lock().unwrap(), k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        SeqMap::get(&*self.0.lock().unwrap(), k)
    }
    fn quiescent_len(&self) -> usize {
        self.0.lock().unwrap().len()
    }
}

#[test]
fn prefill_then_duration_run_accounts_exactly_for_every_mix() {
    for mix in [
        OpMix::READ_ONLY,
        OpMix::READ_HEAVY,
        OpMix::BALANCED,
        OpMix::UPDATE_ONLY,
    ] {
        let spec = WorkloadSpec {
            mix,
            ..WorkloadSpec::read_heavy(128)
        };
        let map = Locked::default();
        prefill(&map, &spec);
        let r = run_for(&map, &spec, 2, Duration::from_millis(30));
        validate_after_run(&map, &spec, &r).unwrap_or_else(|e| panic!("{mix}: {e}"));
        if mix == OpMix::READ_ONLY {
            assert_eq!(r.successful_inserts + r.successful_deletes, 0);
        }
    }
}

#[test]
fn zipf_workload_accounts_exactly() {
    let spec = WorkloadSpec {
        dist: KeyDist::Zipf { theta: 0.8 },
        mix: OpMix::BALANCED,
        ..WorkloadSpec::read_heavy(512)
    };
    let map = Locked::default();
    prefill(&map, &spec);
    let r = run_ops(&map, &spec, 3, 2_000);
    validate_after_run(&map, &spec, &r).unwrap();
}

#[test]
fn recorded_histories_have_coherent_timestamps() {
    let spec = WorkloadSpec {
        key_range: 8,
        mix: OpMix::BALANCED,
        dist: KeyDist::Uniform,
        prefill_fraction: 0.0,
        seed: 3,
    };
    let map = Locked::default();
    let history = record_history(&map, &spec, 3, 10);
    assert_eq!(history.len(), 30);
    let mut ticks: Vec<u64> = Vec::new();
    for op in &history {
        assert!(op.invoked < op.returned, "interval must be well-formed");
        ticks.push(op.invoked);
        ticks.push(op.returned);
    }
    ticks.sort_unstable();
    ticks.dedup();
    assert_eq!(ticks.len(), 60, "ticks are unique (one per counter bump)");
    check_linearizable(&history, &[]).expect("locked map is trivially linearizable");
}

#[test]
fn checker_rejects_tampered_history() {
    let spec = WorkloadSpec {
        key_range: 4,
        mix: OpMix::UPDATE_ONLY,
        dist: KeyDist::Uniform,
        prefill_fraction: 0.0,
        seed: 9,
    };
    let map = Locked::default();
    let mut history = record_history(&map, &spec, 2, 8);
    // Flip a successful insert's response: the history must now be
    // rejected (or, if that op's response was already False and flipping
    // makes it True while absent — either direction breaks something
    // given a full 16-op update history over 4 keys).
    let idx = history
        .iter()
        .position(|c| matches!(c.op, Operation::Insert(..)))
        .expect("some insert");
    let flipped = CompletedOp {
        response: Response::from(!history[idx].response.as_bool()),
        ..history[idx]
    };
    history[idx] = flipped;
    assert!(
        check_linearizable(&history, &[]).is_err(),
        "tampered history must be rejected"
    );
}

#[test]
fn histogram_composes_with_runner() {
    let spec = WorkloadSpec::read_heavy(64);
    let map = Locked::default();
    prefill(&map, &spec);
    let r = run_for(&map, &spec, 2, Duration::from_millis(30));
    let h: &Histogram = &r.latency;
    assert!(h.count() > 0);
    assert!(h.percentile(50.0) <= h.percentile(99.9));
    assert!(h.min() <= h.max());
}

#[test]
fn table_roundtrip_with_run_results() {
    let spec = WorkloadSpec::read_heavy(64);
    let map = Locked::default();
    prefill(&map, &spec);
    let r = run_ops(&map, &spec, 2, 500);
    let mut t = Table::new(&["threads", "ops", "mops"]);
    t.row_owned(vec![
        r.threads.to_string(),
        r.total_ops.to_string(),
        format!("{:.3}", r.mops()),
    ]);
    let text = t.to_string();
    assert!(text.contains("1000"), "{text}");
    assert!(t.to_csv().lines().count() == 2);
}

#[test]
fn fairness_is_one_for_equal_workers() {
    let spec = WorkloadSpec::read_heavy(64);
    let map = Locked::default();
    let r = run_ops(&map, &spec, 4, 100);
    assert_eq!(r.fairness(), 1.0, "run_ops gives every worker equal ops");
}
