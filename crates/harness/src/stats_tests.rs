//! Extra cross-module tests for the harness: runner/workload/linearize
//! interplay, exercised against an in-crate reference dictionary.
//!
//! (Separate file to keep each module's inline tests focused on its own
//! unit behaviour.)

#![cfg(test)]

use crate::{
    check_linearizable, prefill, record_history, run_for, run_ops, validate_after_run, CompletedOp,
    Histogram, KeyDist, OpMix, Table, WorkloadSpec,
};
use nbbst_dictionary::{ConcurrentMap, Operation, Response, SeqMap};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

#[derive(Default)]
struct Locked(Mutex<BTreeMap<u64, u64>>);
impl ConcurrentMap<u64, u64> for Locked {
    fn insert(&self, k: u64, v: u64) -> bool {
        SeqMap::insert(&mut *self.0.lock().unwrap(), k, v)
    }
    fn remove(&self, k: &u64) -> bool {
        SeqMap::remove(&mut *self.0.lock().unwrap(), k)
    }
    fn contains(&self, k: &u64) -> bool {
        SeqMap::contains(&*self.0.lock().unwrap(), k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        SeqMap::get(&*self.0.lock().unwrap(), k)
    }
    fn quiescent_len(&self) -> usize {
        self.0.lock().unwrap().len()
    }
}

#[test]
fn prefill_then_duration_run_accounts_exactly_for_every_mix() {
    for mix in [
        OpMix::READ_ONLY,
        OpMix::READ_HEAVY,
        OpMix::BALANCED,
        OpMix::UPDATE_ONLY,
    ] {
        let spec = WorkloadSpec {
            mix,
            ..WorkloadSpec::read_heavy(128)
        };
        let map = Locked::default();
        prefill(&map, &spec);
        let r = run_for(&map, &spec, 2, Duration::from_millis(30));
        validate_after_run(&map, &spec, &r).unwrap_or_else(|e| panic!("{mix}: {e}"));
        if mix == OpMix::READ_ONLY {
            assert_eq!(r.successful_inserts + r.successful_deletes, 0);
        }
    }
}

#[test]
fn zipf_workload_accounts_exactly() {
    let spec = WorkloadSpec {
        dist: KeyDist::Zipf { theta: 0.8 },
        mix: OpMix::BALANCED,
        ..WorkloadSpec::read_heavy(512)
    };
    let map = Locked::default();
    prefill(&map, &spec);
    let r = run_ops(&map, &spec, 3, 2_000);
    validate_after_run(&map, &spec, &r).unwrap();
}

#[test]
fn recorded_histories_have_coherent_timestamps() {
    let spec = WorkloadSpec {
        key_range: 8,
        mix: OpMix::BALANCED,
        dist: KeyDist::Uniform,
        prefill_fraction: 0.0,
        seed: 3,
    };
    let map = Locked::default();
    let history = record_history(&map, &spec, 3, 10);
    assert_eq!(history.len(), 30);
    let mut ticks: Vec<u64> = Vec::new();
    for op in &history {
        assert!(op.invoked < op.returned, "interval must be well-formed");
        ticks.push(op.invoked);
        ticks.push(op.returned);
    }
    ticks.sort_unstable();
    ticks.dedup();
    assert_eq!(ticks.len(), 60, "ticks are unique (one per counter bump)");
    check_linearizable(&history, &[]).expect("locked map is trivially linearizable");
}

#[test]
fn checker_rejects_tampered_history() {
    let spec = WorkloadSpec {
        key_range: 4,
        mix: OpMix::UPDATE_ONLY,
        dist: KeyDist::Uniform,
        prefill_fraction: 0.0,
        seed: 9,
    };
    let map = Locked::default();
    let mut history = record_history(&map, &spec, 2, 8);
    // Flip a successful insert's response: the history must now be
    // rejected (or, if that op's response was already False and flipping
    // makes it True while absent — either direction breaks something
    // given a full 16-op update history over 4 keys).
    let idx = history
        .iter()
        .position(|c| matches!(c.op, Operation::Insert(..)))
        .expect("some insert");
    let flipped = CompletedOp {
        response: Response::from(!history[idx].response.as_bool()),
        ..history[idx]
    };
    history[idx] = flipped;
    assert!(
        check_linearizable(&history, &[]).is_err(),
        "tampered history must be rejected"
    );
}

#[test]
fn histogram_composes_with_runner() {
    let spec = WorkloadSpec::read_heavy(64);
    let map = Locked::default();
    prefill(&map, &spec);
    let r = run_for(&map, &spec, 2, Duration::from_millis(30));
    let h: &Histogram = &r.latency;
    assert!(h.count() > 0);
    assert!(h.percentile(50.0) <= h.percentile(99.9));
    assert!(h.min() <= h.max());
}

#[test]
fn table_roundtrip_with_run_results() {
    let spec = WorkloadSpec::read_heavy(64);
    let map = Locked::default();
    prefill(&map, &spec);
    let r = run_ops(&map, &spec, 2, 500);
    let mut t = Table::new(&["threads", "ops", "mops"]);
    t.row_owned(vec![
        r.threads.to_string(),
        r.total_ops.to_string(),
        format!("{:.3}", r.mops()),
    ]);
    let text = t.to_string();
    assert!(text.contains("1000"), "{text}");
    assert!(t.to_csv().lines().count() == 2);
}

#[test]
fn fairness_is_one_for_equal_workers() {
    let spec = WorkloadSpec::read_heavy(64);
    let map = Locked::default();
    let r = run_ops(&map, &spec, 4, 100);
    assert_eq!(r.fairness(), 1.0, "run_ops gives every worker equal ops");
}

/// Merging partial histograms (per-thread or per-shard) must behave like
/// a commutative monoid over the recorded multiset: these tests pin the
/// properties the sharded frontend's merged reporting relies on.
mod histogram_merge {
    use super::Histogram;

    fn recorded(values: impl IntoIterator<Item = u64>) -> Histogram {
        let mut h = Histogram::new();
        for v in values {
            h.record(v);
        }
        h
    }

    fn same_summary(a: &Histogram, b: &Histogram) {
        assert_eq!(a.count(), b.count());
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.mean(), b.mean());
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(a.percentile(p), b.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merge_is_associative() {
        // Three per-shard partials with very different ranges; both
        // association orders must agree on every summary statistic
        // (bucket counts add, so this is exact, not approximate).
        let parts = || {
            [
                recorded((0..500).map(|v| v * 7 % 300)),
                recorded((0..500).map(|v| 1_000 + v * 13 % 5_000)),
                recorded((0..500).map(|v| 100_000 + v * 31)),
            ]
        };
        let [a1, b1, c1] = parts();
        let [a2, mut b2, c2] = parts();

        // (a ⊕ b) ⊕ c
        let mut left = a1.clone();
        left.merge(&b1);
        left.merge(&c1);
        // a ⊕ (b ⊕ c)
        b2.merge(&c2);
        let mut right = a2.clone();
        right.merge(&b2);

        same_summary(&left, &right);
    }

    #[test]
    fn merge_is_commutative_and_count_preserving() {
        let a = recorded((0..1_000).map(|v| v * 17 % 4_096));
        let b = recorded((0..250).map(|v| v * 97 % 65_536));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        same_summary(&ab, &ba);
        assert_eq!(ab.count(), a.count() + b.count());
    }

    #[test]
    fn empty_is_identity() {
        let a = recorded([5, 500, 50_000]);
        let mut merged = a.clone();
        merged.merge(&Histogram::new());
        same_summary(&merged, &a);

        let mut from_empty = Histogram::new();
        from_empty.merge(&a);
        same_summary(&from_empty, &a);
    }

    #[test]
    fn merged_quantile_error_stays_bounded() {
        // 1..=100_000 split round-robin across 4 "shards": after merging,
        // the documented ~6% relative quantile error bound (log buckets ×
        // 16 sub-buckets) must still hold — merging adds bucket counts and
        // never widens buckets, so the bound is unchanged.
        let mut shards = vec![Histogram::new(); 4];
        for v in 1..=100_000u64 {
            shards[(v % 4) as usize].record(v);
        }
        let mut merged = Histogram::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.count(), 100_000);
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = (p / 100.0 * 100_000.0) as u64;
            let approx = merged.percentile(p);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.08, "p{p}: exact {exact} approx {approx} err {err}");
        }
    }
}

/// The sharded frontend reports `StatsSnapshot::merged` over per-shard
/// Figure-4 counters; these tests pin the algebra that makes the merged
/// snapshot meaningful.
mod snapshot_merge {
    use nbbst_core::StatsSnapshot;

    fn sample(scale: u64) -> StatsSnapshot {
        // A self-consistent per-shard snapshot: each identity in
        // `check_figure4` holds (they are all linear equalities).
        StatsSnapshot {
            finds: 10 * scale,
            inserts: 6 * scale,
            deletes: 5 * scale,
            inserts_true: 4 * scale,
            deletes_true: 3 * scale,
            searches: 30 * scale,
            iflag_attempts: 5 * scale,
            iflag_success: 4 * scale,
            ichild_success: 4 * scale,
            iunflag_success: 4 * scale,
            dflag_attempts: 5 * scale,
            dflag_success: 4 * scale,
            mark_attempts: 4 * scale,
            mark_success: 3 * scale,
            dchild_success: 3 * scale,
            dunflag_success: 3 * scale,
            backtrack_success: scale,
            ..StatsSnapshot::default()
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (sample(1), sample(7), sample(100));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&StatsSnapshot::default()), a);
    }

    #[test]
    fn merged_preserves_totals_and_figure4() {
        let shards = [sample(1), sample(2), sample(3), sample(4)];
        for s in &shards {
            s.check_figure4().unwrap();
        }
        let merged = StatsSnapshot::merged(shards);
        assert_eq!(merged.finds, 10 * (1 + 2 + 3 + 4));
        assert_eq!(merged.inserts_true, 4 * (1 + 2 + 3 + 4));
        // Figure-4 identities are linear, so they survive summation —
        // the property the sharded map's `stats()` relies on.
        merged.check_figure4().unwrap();
    }
}
