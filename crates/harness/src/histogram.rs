//! A log-bucketed latency histogram (HDR-style, built in-crate).
//!
//! Buckets are `(exponent, 16 linear sub-buckets)`: values within a
//! power-of-two band land in one of 16 evenly spaced slots, bounding the
//! relative quantile error at ~6%. Good enough for the latency series in
//! EXPERIMENTS.md without external dependencies.

use std::fmt;

const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4; // log2(SUB_BUCKETS)
const MAX_EXP: usize = 50; // covers > 10^15 ns

/// Records `u64` samples (nanoseconds, typically) with bounded relative
/// error.
///
/// # Examples
///
/// ```
/// use nbbst_harness::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [10, 20, 30, 40, 1_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(50.0) >= 20 && h.percentile(50.0) <= 42);
/// assert!(h.max() >= 1_000);
/// ```
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; MAX_EXP * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros(); // floor(log2(value)) >= 4
        let sub = ((value >> (exp - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
        ((exp - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Lower bound of the range covered by bucket `i` (used to report
    /// percentiles).
    fn bucket_floor(i: usize) -> u64 {
        let band = i / SUB_BUCKETS;
        let sub = (i % SUB_BUCKETS) as u64;
        if band == 0 {
            sub
        } else {
            let exp = band as u32 + SUB_BITS - 1;
            (1u64 << exp) + (sub << (exp - SUB_BITS))
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        let i = Self::index(value).min(self.buckets.len() - 1);
        self.buckets[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram (e.g. per-thread partials).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `p` (in percent, e.g. `99.9`), with ~6%
    /// relative error. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_floor(i);
            }
        }
        self.max
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max)
            .finish()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.0} p50={} p90={} p99={} p999={} max={}",
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
            self.percentile(99.9),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.count(), 16);
        assert_eq!(h.percentile(100.0), 15);
    }

    #[test]
    fn percentile_relative_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = (p / 100.0 * 100_000.0) as u64;
            let approx = h.percentile(p);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.08, "p{p}: exact {exact} approx {approx} err {err}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..1_000u64 {
            if v % 2 == 0 {
                a.record(v * 17 % 4096);
            } else {
                b.record(v * 17 % 4096);
            }
            c.record(v * 17 % 4096);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.percentile(50.0), c.percentile(50.0));
        assert_eq!(a.percentile(99.0), c.percentile(99.0));
    }

    #[test]
    fn empty_histogram_is_harmless() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
    }
}
