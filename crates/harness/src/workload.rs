//! Workload specification and generation.
//!
//! Experiments in EXPERIMENTS.md are parameterized by an operation mix
//! (the find/insert/delete percentages standard since the lock-free-
//! dictionary literature), a key range, and a key distribution (uniform,
//! Zipf-skewed, or hotspot). Each worker thread gets an independent,
//! deterministically seeded generator, so runs are reproducible.

use nbbst_dictionary::Operation;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Operation percentages; must sum to 100.
///
/// # Examples
///
/// ```
/// use nbbst_harness::OpMix;
///
/// let read_heavy = OpMix::new(90, 5, 5);
/// assert_eq!(read_heavy.find_pct, 90);
/// let update_only = OpMix::UPDATE_ONLY;
/// assert_eq!(update_only.find_pct, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percentage of `Find` operations.
    pub find_pct: u8,
    /// Percentage of `Insert` operations.
    pub insert_pct: u8,
    /// Percentage of `Delete` operations.
    pub delete_pct: u8,
}

impl OpMix {
    /// 100% finds.
    pub const READ_ONLY: OpMix = OpMix {
        find_pct: 100,
        insert_pct: 0,
        delete_pct: 0,
    };
    /// 90/5/5 — the classic read-heavy dictionary mix.
    pub const READ_HEAVY: OpMix = OpMix {
        find_pct: 90,
        insert_pct: 5,
        delete_pct: 5,
    };
    /// 50/25/25 — a balanced mix.
    pub const BALANCED: OpMix = OpMix {
        find_pct: 50,
        insert_pct: 25,
        delete_pct: 25,
    };
    /// 0/50/50 — updates only.
    pub const UPDATE_ONLY: OpMix = OpMix {
        find_pct: 0,
        insert_pct: 50,
        delete_pct: 50,
    };

    /// Builds a mix.
    ///
    /// # Panics
    ///
    /// Panics unless the percentages sum to 100.
    pub fn new(find_pct: u8, insert_pct: u8, delete_pct: u8) -> OpMix {
        assert_eq!(
            find_pct as u32 + insert_pct as u32 + delete_pct as u32,
            100,
            "op mix must sum to 100"
        );
        OpMix {
            find_pct,
            insert_pct,
            delete_pct,
        }
    }
}

impl fmt::Display for OpMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}f/{}i/{}d",
            self.find_pct, self.insert_pct, self.delete_pct
        )
    }
}

/// How keys are drawn from `[0, key_range)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over the range.
    Uniform,
    /// Zipf-skewed with parameter `theta` (0 = uniform-like, 0.99 = the
    /// YCSB default skew). Sampled with the Gray et al. method.
    Zipf {
        /// Skew parameter in `(0, 1)`.
        theta: f64,
    },
    /// A fraction of the keys receives a fraction of the accesses
    /// (e.g. 10% of keys get 90% of operations).
    Hotspot {
        /// Fraction of the key range that is hot, in `(0, 1]`.
        hot_fraction: f64,
        /// Fraction of accesses that go to the hot set, in `[0, 1]`.
        hot_access: f64,
    },
}

impl fmt::Display for KeyDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyDist::Uniform => f.write_str("uniform"),
            KeyDist::Zipf { theta } => write!(f, "zipf({theta})"),
            KeyDist::Hotspot {
                hot_fraction,
                hot_access,
            } => write!(f, "hotspot({hot_fraction}/{hot_access})"),
        }
    }
}

/// A complete workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Keys are drawn from `[0, key_range)`.
    pub key_range: u64,
    /// Operation percentages.
    pub mix: OpMix,
    /// Key skew.
    pub dist: KeyDist,
    /// Fraction of the key range inserted before measurement (0.5 keeps
    /// the dictionary near half-full in steady state for symmetric
    /// insert/delete mixes).
    pub prefill_fraction: f64,
    /// Base RNG seed; thread `t` derives its own stream from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A reasonable default: uniform 90/5/5 over `key_range` keys,
    /// half prefilled.
    pub fn read_heavy(key_range: u64) -> WorkloadSpec {
        WorkloadSpec {
            key_range,
            mix: OpMix::READ_HEAVY,
            dist: KeyDist::Uniform,
            prefill_fraction: 0.5,
            seed: 0x5EED,
        }
    }

    /// Same shape with a balanced 50/25/25 mix.
    pub fn balanced(key_range: u64) -> WorkloadSpec {
        WorkloadSpec {
            mix: OpMix::BALANCED,
            ..WorkloadSpec::read_heavy(key_range)
        }
    }

    /// The generator for worker thread `thread`.
    pub fn generator(&self, thread: usize) -> OpGenerator {
        OpGenerator::new(self.clone(), thread)
    }

    /// Keys to insert before the measured phase (deterministic in the
    /// seed): an evenly spread `prefill_fraction` of the range.
    pub fn prefill_keys(&self) -> Vec<u64> {
        let n = (self.key_range as f64 * self.prefill_fraction) as u64;
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xF1F1_F1F1);
        let mut keys: Vec<u64> = Vec::with_capacity(n as usize);
        // Sample without replacement via a partial Fisher–Yates over the
        // range when small, or accept duplicates-filtered sampling when
        // huge ranges make a full permutation wasteful.
        if self.key_range <= 1 << 22 {
            let mut all: Vec<u64> = (0..self.key_range).collect();
            for i in 0..(n as usize) {
                let j = rng.gen_range(i..all.len());
                all.swap(i, j);
            }
            all.truncate(n as usize);
            keys = all;
        } else {
            let mut seen = std::collections::HashSet::with_capacity(n as usize);
            while (keys.len() as u64) < n {
                let k = rng.gen_range(0..self.key_range);
                if seen.insert(k) {
                    keys.push(k);
                }
            }
        }
        keys
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "range=2^{:.0} mix={} dist={} prefill={}",
            (self.key_range as f64).log2(),
            self.mix,
            self.dist,
            self.prefill_fraction
        )
    }
}

/// Zipf sampler (Gray et al., "Quickly generating billion-record
/// synthetic databases", SIGMOD '94 — the YCSB formulation).
#[derive(Debug, Clone)]
struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0 && theta > 0.0 && theta < 1.0, "0 < theta < 1");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Per-thread deterministic operation stream.
#[derive(Debug, Clone)]
pub struct OpGenerator {
    spec: WorkloadSpec,
    rng: SmallRng,
    zipf: Option<Zipfian>,
    /// Scrambles zipf ranks so the popular keys are spread over the range
    /// (prevents accidental locality in tree shape).
    scramble: bool,
}

impl OpGenerator {
    fn new(spec: WorkloadSpec, thread: usize) -> OpGenerator {
        let rng = SmallRng::seed_from_u64(
            spec.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(thread as u64 + 1),
        );
        let zipf = match spec.dist {
            KeyDist::Zipf { theta } => Some(Zipfian::new(spec.key_range, theta)),
            _ => None,
        };
        OpGenerator {
            spec,
            rng,
            zipf,
            scramble: true,
        }
    }

    /// Draws the next key.
    pub fn next_key(&mut self) -> u64 {
        let range = self.spec.key_range;
        match self.spec.dist {
            KeyDist::Uniform => self.rng.gen_range(0..range),
            KeyDist::Zipf { .. } => {
                let rank = self
                    .zipf
                    .as_ref()
                    .expect("zipf sampler")
                    .sample(&mut self.rng);
                if self.scramble {
                    // FNV-style scramble, stable across runs.
                    rank.wrapping_mul(0x100_0000_01B3) % range
                } else {
                    rank
                }
            }
            KeyDist::Hotspot {
                hot_fraction,
                hot_access,
            } => {
                let hot_n = ((range as f64 * hot_fraction) as u64).max(1);
                if self.rng.gen::<f64>() < hot_access {
                    self.rng.gen_range(0..hot_n)
                } else if hot_n < range {
                    self.rng.gen_range(hot_n..range)
                } else {
                    self.rng.gen_range(0..range)
                }
            }
        }
    }

    /// Draws the next operation (value = key, which lets validation check
    /// value integrity for free).
    pub fn next_op(&mut self) -> Operation<u64, u64> {
        let k = self.next_key();
        let roll: u8 = self.rng.gen_range(0..100);
        let mix = self.spec.mix;
        if roll < mix.find_pct {
            Operation::Contains(k)
        } else if roll < mix.find_pct + mix.insert_pct {
            Operation::Insert(k, k)
        } else {
            Operation::Remove(k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must sum to 100")]
    fn bad_mix_panics() {
        OpMix::new(50, 20, 20);
    }

    #[test]
    fn generator_is_deterministic_per_thread() {
        let spec = WorkloadSpec::read_heavy(1 << 10);
        let mut a = spec.generator(3);
        let mut b = spec.generator(3);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = spec.generator(4);
        let same = (0..100).all(|_| a.next_op() == c.next_op());
        assert!(!same, "different threads must get different streams");
    }

    #[test]
    fn mix_ratios_are_respected() {
        let spec = WorkloadSpec {
            mix: OpMix::new(70, 20, 10),
            ..WorkloadSpec::read_heavy(1 << 8)
        };
        let mut g = spec.generator(0);
        let (mut f, mut i, mut d) = (0u32, 0u32, 0u32);
        for _ in 0..20_000 {
            match g.next_op() {
                Operation::Contains(_) => f += 1,
                Operation::Insert(..) => i += 1,
                Operation::Remove(_) => d += 1,
            }
        }
        let tot = 20_000f64;
        assert!((f as f64 / tot - 0.70).abs() < 0.02, "finds {f}");
        assert!((i as f64 / tot - 0.20).abs() < 0.02, "inserts {i}");
        assert!((d as f64 / tot - 0.10).abs() < 0.02, "deletes {d}");
    }

    #[test]
    fn keys_stay_in_range_for_all_dists() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipf { theta: 0.99 },
            KeyDist::Hotspot {
                hot_fraction: 0.1,
                hot_access: 0.9,
            },
        ] {
            let spec = WorkloadSpec {
                dist,
                ..WorkloadSpec::read_heavy(1000)
            };
            let mut g = spec.generator(0);
            for _ in 0..5_000 {
                assert!(g.next_key() < 1000, "{dist}");
            }
        }
    }

    #[test]
    fn zipf_is_actually_skewed() {
        let spec = WorkloadSpec {
            dist: KeyDist::Zipf { theta: 0.99 },
            ..WorkloadSpec::read_heavy(1 << 16)
        };
        let mut g = spec.generator(0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(g.next_key()).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        // Under uniform, the max bucket over 2^16 keys would be ~single
        // digits; Zipf 0.99 concentrates thousands on the top key.
        assert!(max > 1_000, "zipf max bucket only {max}");
    }

    #[test]
    fn hotspot_concentrates_access() {
        let spec = WorkloadSpec {
            dist: KeyDist::Hotspot {
                hot_fraction: 0.1,
                hot_access: 0.9,
            },
            ..WorkloadSpec::read_heavy(1000)
        };
        let mut g = spec.generator(0);
        let hot = (0..20_000).filter(|_| g.next_key() < 100).count();
        let frac = hot as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn prefill_keys_unique_and_in_range() {
        let spec = WorkloadSpec::read_heavy(1 << 12);
        let keys = spec.prefill_keys();
        assert_eq!(keys.len(), 1 << 11);
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
        assert!(keys.iter().all(|&k| k < (1 << 12)));
    }

    #[test]
    fn prefill_is_deterministic() {
        let spec = WorkloadSpec::read_heavy(1 << 10);
        assert_eq!(spec.prefill_keys(), spec.prefill_keys());
    }
}
