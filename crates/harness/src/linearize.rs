//! History recording and linearizability checking.
//!
//! The paper's main theorem is that the tree is **linearizable**: every
//! concurrent execution is equivalent to some sequential execution that
//! respects real-time order. This module tests that claim empirically
//! (experiment T10): record a real concurrent history — invocation and
//! response ticks from a global atomic counter — then search for a valid
//! linearization with the Wing–Gong algorithm, memoized on
//! `(linearized-set, dictionary-state)` pairs (Lowe's optimization).
//!
//! Keys are restricted to `< 64` so the dictionary state fits in a `u64`
//! bitset, and histories to ≤ 64 operations so the linearized set does
//! too; that is ample to catch real interleaving bugs when run thousands
//! of times.

use crate::workload::WorkloadSpec;
use nbbst_dictionary::{ConcurrentMap, Operation, Response};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// One completed operation with its observed interval and response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedOp {
    /// The operation performed.
    pub op: Operation<u64, u64>,
    /// The observed boolean result.
    pub response: Response,
    /// Tick taken immediately before invoking the operation.
    pub invoked: u64,
    /// Tick taken immediately after it returned.
    pub returned: u64,
}

/// Records a concurrent history: `threads` workers each run
/// `ops_per_thread` operations from `spec` against `map`, time-stamped
/// with a shared atomic tick counter.
///
/// The ticks give a total order consistent with real time: if operation A
/// returned before operation B was invoked, then `A.returned <
/// B.invoked`.
pub fn record_history<M: ConcurrentMap<u64, u64> + ?Sized>(
    map: &M,
    spec: &WorkloadSpec,
    threads: usize,
    ops_per_thread: u64,
) -> Vec<CompletedOp> {
    let clock = AtomicU64::new(0);
    let barrier = Barrier::new(threads);
    let mut history = Vec::with_capacity(threads * ops_per_thread as usize);

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let clock = &clock;
            let barrier = &barrier;
            let mut gen = spec.generator(t);
            handles.push(s.spawn(move || {
                let mut local = Vec::with_capacity(ops_per_thread as usize);
                barrier.wait();
                for _ in 0..ops_per_thread {
                    let op = gen.next_op();
                    let invoked = clock.fetch_add(1, Ordering::SeqCst);
                    let response = op.apply(map);
                    let returned = clock.fetch_add(1, Ordering::SeqCst);
                    local.push(CompletedOp {
                        op,
                        response,
                        invoked,
                        returned,
                    });
                }
                local
            }));
        }
        for h in handles {
            history.extend(h.join().expect("recorder thread panicked"));
        }
    });
    history
}

/// Applies `op` to a bitset dictionary state, returning the expected
/// response and the successor state.
fn apply_to_bitset(state: u64, op: &Operation<u64, u64>) -> (Response, u64) {
    match op {
        Operation::Insert(k, _) => {
            let bit = 1u64 << k;
            if state & bit != 0 {
                (Response::False, state)
            } else {
                (Response::True, state | bit)
            }
        }
        Operation::Remove(k) => {
            let bit = 1u64 << k;
            if state & bit != 0 {
                (Response::True, state & !bit)
            } else {
                (Response::False, state)
            }
        }
        Operation::Contains(k) => (Response::from(state & (1u64 << k) != 0), state),
    }
}

/// Checks whether `history` is linearizable against the sequential
/// dictionary semantics, starting from `initial_keys`.
///
/// # Errors
///
/// Returns a description when no linearization exists (i.e. the
/// implementation violated linearizability).
///
/// # Panics
///
/// Panics if the history has more than 64 operations or keys ≥ 64 —
/// limits of the bitset encoding, by construction of the recording specs.
pub fn check_linearizable(history: &[CompletedOp], initial_keys: &[u64]) -> Result<(), String> {
    assert!(
        history.len() <= 64,
        "history too long for the bitset checker"
    );
    let mut initial = 0u64;
    for &k in initial_keys {
        assert!(k < 64, "key {k} out of bitset range");
        initial |= 1 << k;
    }
    for c in history {
        assert!(*c.op.key() < 64, "key out of bitset range");
    }

    let n = history.len();
    if n == 0 {
        return Ok(());
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };

    // DFS over (linearized-mask, state) with memoized failures.
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut stack: Vec<(u64, u64)> = vec![(0, initial)];
    while let Some((mask, state)) = stack.pop() {
        if mask == full {
            return Ok(());
        }
        if !seen.insert((mask, state)) {
            continue;
        }
        // An operation may linearize next iff it is not yet linearized and
        // its invocation precedes every un-linearized operation's response
        // (otherwise some pending op really finished before it started).
        let mut min_ret = u64::MAX;
        for (i, c) in history.iter().enumerate() {
            if mask & (1 << i) == 0 {
                min_ret = min_ret.min(c.returned);
            }
        }
        for (i, c) in history.iter().enumerate() {
            if mask & (1 << i) != 0 || c.invoked > min_ret {
                continue;
            }
            let (expected, next_state) = apply_to_bitset(state, &c.op);
            if expected == c.response {
                stack.push((mask | (1 << i), next_state));
            }
        }
    }
    Err(format!(
        "no linearization exists for this {n}-operation history: {history:#?}"
    ))
}

/// Convenience: records `rounds` short histories and checks each,
/// returning the first violation.
///
/// # Errors
///
/// Propagates the first linearizability violation found.
pub fn check_map_linearizable<M, F>(
    make_map: F,
    spec: &WorkloadSpec,
    threads: usize,
    ops_per_thread: u64,
    rounds: usize,
) -> Result<(), String>
where
    M: ConcurrentMap<u64, u64>,
    F: Fn() -> M,
{
    assert!(
        threads as u64 * ops_per_thread <= 64,
        "history must fit the bitset checker"
    );
    for round in 0..rounds {
        let map = make_map();
        let mut spec = spec.clone();
        spec.seed = spec.seed.wrapping_add(round as u64 * 7919);
        for k in spec.prefill_keys() {
            map.insert(k, k);
        }
        let initial = spec.prefill_keys();
        let history = record_history(&map, &spec, threads, ops_per_thread);
        check_linearizable(&history, &initial).map_err(|e| format!("round {round}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbbst_dictionary::SeqMap;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    fn op(i: Operation<u64, u64>, r: bool, inv: u64, ret: u64) -> CompletedOp {
        CompletedOp {
            op: i,
            response: Response::from(r),
            invoked: inv,
            returned: ret,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        check_linearizable(&[], &[]).unwrap();
    }

    #[test]
    fn sequential_history_checks_out() {
        let h = vec![
            op(Operation::Insert(1, 1), true, 0, 1),
            op(Operation::Contains(1), true, 2, 3),
            op(Operation::Remove(1), true, 4, 5),
            op(Operation::Contains(1), false, 6, 7),
        ];
        check_linearizable(&h, &[]).unwrap();
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // Contains(1)=true overlaps Insert(1)=true: linearizable by
        // putting the insert first.
        let h = vec![
            op(Operation::Insert(1, 1), true, 0, 3),
            op(Operation::Contains(1), true, 1, 2),
        ];
        check_linearizable(&h, &[]).unwrap();
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Contains(1)=true STRICTLY AFTER Remove(1)=true with nothing else:
        // not linearizable.
        let h = vec![
            op(Operation::Insert(1, 1), true, 0, 1),
            op(Operation::Remove(1), true, 2, 3),
            op(Operation::Contains(1), true, 4, 5),
        ];
        assert!(check_linearizable(&h, &[]).is_err());
    }

    #[test]
    fn lost_update_is_detected() {
        // Two successful inserts of the same key with no intervening
        // delete: impossible.
        let h = vec![
            op(Operation::Insert(2, 2), true, 0, 1),
            op(Operation::Insert(2, 2), true, 2, 3),
        ];
        assert!(check_linearizable(&h, &[]).is_err());
    }

    #[test]
    fn initial_keys_are_respected() {
        let h = vec![op(Operation::Contains(5), true, 0, 1)];
        assert!(check_linearizable(&h, &[]).is_err());
        check_linearizable(&h, &[5]).unwrap();
    }

    #[test]
    fn concurrent_double_delete_one_winner_ok() {
        // Both deletes overlap; exactly one may win.
        let h = vec![
            op(Operation::Remove(3), true, 0, 4),
            op(Operation::Remove(3), false, 1, 3),
        ];
        check_linearizable(&h, &[3]).unwrap();
    }

    #[test]
    fn concurrent_double_delete_two_winners_rejected() {
        let h = vec![
            op(Operation::Remove(3), true, 0, 4),
            op(Operation::Remove(3), true, 1, 3),
        ];
        assert!(check_linearizable(&h, &[3]).is_err());
    }

    #[test]
    fn recorded_history_from_locked_map_is_linearizable() {
        #[derive(Default)]
        struct Locked(Mutex<BTreeMap<u64, u64>>);
        impl ConcurrentMap<u64, u64> for Locked {
            fn insert(&self, k: u64, v: u64) -> bool {
                SeqMap::insert(&mut *self.0.lock().unwrap(), k, v)
            }
            fn remove(&self, k: &u64) -> bool {
                SeqMap::remove(&mut *self.0.lock().unwrap(), k)
            }
            fn contains(&self, k: &u64) -> bool {
                SeqMap::contains(&*self.0.lock().unwrap(), k)
            }
            fn get(&self, k: &u64) -> Option<u64> {
                SeqMap::get(&*self.0.lock().unwrap(), k)
            }
            fn quiescent_len(&self) -> usize {
                self.0.lock().unwrap().len()
            }
        }
        let spec = WorkloadSpec {
            key_range: 8,
            mix: crate::OpMix::BALANCED,
            dist: crate::KeyDist::Uniform,
            prefill_fraction: 0.5,
            seed: 42,
        };
        check_map_linearizable(Locked::default, &spec, 4, 12, 20).unwrap();
    }
}
