//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of criterion's API the `nbbst-bench` targets use
//! (`benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_custom`, `Throughput::Elements`) with a plain
//! calibrate-then-sample timing loop. No statistics beyond min/median/mean
//! across samples, no HTML reports, no comparison with saved baselines —
//! results print one line per benchmark to stdout, which is what
//! `EXPERIMENTS.md` records.
//!
//! Differences from real criterion that matter when reading numbers:
//! no outlier rejection and no warm-up beyond one calibration pass, so
//! treat single runs as indicative, not publication-grade.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement driver passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Hands the iteration count to `routine`, which returns the measured
    /// duration itself (used when per-iteration setup must be excluded).
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function`-style methods.
pub trait IntoBenchmarkId {
    /// Converts to a concrete [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Annotates subsequent benchmarks with a throughput, so results are
    /// additionally reported in elements (or bytes) per second.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run(&id.id, &mut f);
        self
    }

    /// Runs a benchmark, passing `input` through to the closure.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into_benchmark_id();
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }

        // Calibration: grow the iteration count until one batch is long
        // enough to time reliably, yielding a per-iteration estimate.
        let mut iters = 1u64;
        let per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break b.elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };

        // Sampling: split the measurement budget evenly across samples.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-12)) as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;

        let mut line = format!(
            "{full:<48} time: [median {} mean {}]  ({} samples x {} iters)",
            fmt_time(median),
            fmt_time(mean),
            samples.len(),
            iters_per_sample,
        );
        if let Some(t) = self.throughput {
            let (amount, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = amount as f64 / median;
            line.push_str(&format!("  thrpt: {}", fmt_rate(rate, unit)));
        }
        println!("{line}");
    }

    /// Ends the group. (The stand-in has no cross-group state to flush.)
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any user filter string; accept
        // the first non-flag argument as a substring filter like criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut f);
        group.finish();
        self
    }
}

/// Identity re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_custom_receives_iteration_count() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        let mut seen = Vec::new();
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                seen.push(iters);
                Duration::from_micros(iters)
            })
        });
        group.finish();
        assert!(seen.iter().all(|&n| n >= 1));
        assert!(!seen.is_empty());
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("only_this".into()),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("other", |b| {
            ran = true;
            b.iter(|| ());
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
        assert!(fmt_rate(5e6, "elem").contains("Melem/s"));
    }
}
