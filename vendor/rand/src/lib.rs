//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *exact* API surface its tests and harness use:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range` (over integer `Range`s). The generator is
//! xorshift64* seeded through SplitMix64 — statistically fine for
//! workload generation and fuzz schedules, and deterministic per seed,
//! which is all the callers require. Not a cryptographic RNG.

use std::ops::Range;

/// Types constructible from a fresh 64-bit random word (`rng.gen()`).
pub trait Standard: Sized {
    /// Derives a value from one uniformly random `u64`.
    fn from_random_u64(word: u64) -> Self;
}

impl Standard for f64 {
    fn from_random_u64(word: u64) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_random_u64(word: u64) -> Self {
        // Use a high bit; low bits of xorshift outputs are the weakest.
        word >> 63 == 1
    }
}

impl Standard for u64 {
    fn from_random_u64(word: u64) -> Self {
        word
    }
}

impl Standard for u32 {
    fn from_random_u64(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl Standard for u8 {
    fn from_random_u64(word: u64) -> Self {
        (word >> 56) as u8
    }
}

/// Integer types that can be drawn uniformly from a `Range`.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to `u64` for arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows from `u64`; the value is guaranteed to fit.
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),+) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )+};
}
uniform_int!(u8, u16, u32, u64, usize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// A random value of an inferred [`Standard`] type (`f64`, `bool`, ...).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random_u64(self.next_u64())
    }

    /// Uniform draw from `range` (half-open). Panics if the range is empty.
    ///
    /// Uses simple rejection-free modulo; the bias is < 2^-32 for every
    /// range the workspace uses, which is irrelevant for test workloads.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        let (lo, hi) = (range.start.to_u64(), range.end.to_u64());
        assert!(lo < hi, "gen_range called with empty range");
        T::from_u64(lo + self.next_u64() % (hi - lo))
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scrambles the seed so that nearby seeds (0, 1, 2...)
            // give unrelated streams, and maps seed 0 away from the
            // xorshift fixed point.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x4D59_5DF4_D0F3_3173 } else { z },
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// `rand::prelude` stand-in.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y: u8 = rng.gen_range(0..100);
            assert!(y < 100);
            let z = rng.gen_range(3usize..4);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_not_constant() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.5;
            hi |= u >= 0.5;
        }
        assert!(lo && hi);
    }

    #[test]
    fn bool_takes_both_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut t = 0;
        for _ in 0..1000 {
            if rng.gen::<bool>() {
                t += 1;
            }
        }
        assert!(t > 300 && t < 700, "suspiciously biased: {t}/1000");
    }

    #[test]
    fn seed_zero_works() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
