//! An offline, in-tree model checker exposing the subset of the
//! [`loom`](https://docs.rs/loom) API this workspace programs against.
//!
//! The build environment cannot fetch crates, so this crate implements
//! systematic schedule exploration from scratch rather than wrapping the
//! real loom. The surface is API-compatible for what `nbbst-reclaim` and
//! the `loom_protocol` tests use — `loom::model`, `loom::thread`,
//! `loom::sync::atomic`, `loom::sync::Mutex` — so swapping in upstream
//! loom later is a `Cargo.toml` change, not a source change.
//!
//! # How checking works
//!
//! [`model`] runs the closure repeatedly. Each run is one *execution*:
//! every simulated thread is a real OS thread, but a cooperative
//! scheduler (mutex + condvar token passing) permits exactly one to run
//! at a time, and every atomic access, lock acquisition, spawn, and join
//! is a *scheduling point* where the scheduler may switch threads. The
//! sequence of switch decisions is recorded; between executions a
//! depth-first explorer backtracks the most recent decision with
//! unexplored alternatives, so all schedules (within the bound below) are
//! visited exactly once, deterministically, with no randomness.
//!
//! # Exploration bound
//!
//! Full interleaving enumeration is super-exponential, so exploration is
//! **preemption-bounded** (Musuvathi & Qadeer's CHESS result): schedules
//! with at most `LOOM_PREEMPTION_BOUND` (default 2) *involuntary* context
//! switches are enumerated exhaustively; switches at blocking points
//! (lock contention, join, thread exit) are free. Empirically almost all
//! concurrency bugs manifest within two preemptions. The bound is an
//! env var so CI can raise it for deeper sweeps.
//!
//! # Memory model
//!
//! Atomics execute with **sequentially consistent** semantics regardless
//! of the `Ordering` argument: this checker explores interleavings, not
//! weak-memory reorderings. Acquire/Release reasoning for the orderings
//! chosen in `nbbst-core` is made analytically in `DESIGN.md`; this tool
//! validates the *protocol* (every CAS step sees every possible rival
//! schedule), which is where the EFRB tree's subtle bugs live.

#![warn(missing_docs)]

mod rt;

pub mod sync;
pub mod thread;

pub use rt::model;
