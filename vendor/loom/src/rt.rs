//! The execution scheduler and schedule explorer.
//!
//! One [`Execution`] is a single run of the model closure under a fixed
//! schedule prefix. Threads hand a run token around: only the thread
//! whose id equals `ExecState::active` makes progress; everyone else
//! waits on the condvar. Scheduling points call [`yield_point`] (or the
//! blocking variants), which consults the recorded decision trace —
//! replaying the prefix chosen by the explorer, then defaulting to "keep
//! running the current thread" — and records every point where more than
//! one choice existed. After the run, [`next_replay`] backtracks the last
//! open decision, depth-first, until the space is exhausted.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Maximum simulated threads per execution (incl. the root).
const MAX_THREADS: usize = 8;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting for a resource (mutex) identified by id.
    Blocked(usize),
    /// Waiting for another thread to finish.
    Joining(usize),
    /// Done; never scheduled again.
    Finished,
}

/// One recorded decision: which of `options` was taken.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    options: Vec<usize>,
    chosen: usize,
}

struct ExecState {
    threads: Vec<Run>,
    /// Thread currently holding the run token.
    active: usize,
    /// OS threads not yet fully exited (controller waits on this).
    alive: usize,
    preemptions: usize,
    bound: usize,
    /// Decisions replayed from the previous execution's backtrack.
    replay: Vec<Choice>,
    /// Decisions made this execution (prefix equals `replay`).
    trace: Vec<Choice>,
    /// Index of the next decision point.
    depth: usize,
    /// First panic observed; aborts the whole execution.
    panic_message: Option<String>,
    abort: bool,
    steps: u64,
    max_steps: u64,
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cond: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn current() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| c.borrow().clone()).expect(
        "loom primitive used outside loom::model — wrap the test body in loom::model(|| ...)",
    )
}

fn try_current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

impl Execution {
    fn new(replay: Vec<Choice>, bound: usize, max_steps: u64) -> Execution {
        Execution {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                active: 0,
                alive: 0,
                preemptions: 0,
                bound,
                replay,
                trace: Vec::new(),
                depth: 0,
                panic_message: None,
                abort: false,
                steps: 0,
                max_steps,
            }),
            cond: Condvar::new(),
        }
    }
}

/// Picks the next thread to run and records the decision if it was a real
/// choice. `me_runnable` distinguishes a preemption opportunity (current
/// thread could continue) from a forced switch (it blocked or finished).
fn schedule_locked(st: &mut ExecState, me: usize, me_runnable: bool) -> Option<usize> {
    let mut options: Vec<usize> = Vec::new();
    if me_runnable {
        // Current thread first: the depth-first default (index 0) is
        // "no context switch", so preemption-free runs are explored first.
        options.push(me);
    }
    let budget_left = st.preemptions < st.bound;
    for (id, run) in st.threads.iter().enumerate() {
        if id != me && *run == Run::Runnable {
            options.push(id);
        }
    }
    if me_runnable && !budget_left {
        // Out of preemption budget: the current thread must continue.
        options.truncate(1);
    }
    if options.is_empty() {
        return None;
    }

    let chosen_index = if options.len() == 1 {
        0
    } else {
        let idx = if st.depth < st.replay.len() {
            st.replay[st.depth].chosen
        } else {
            0
        };
        st.depth += 1;
        st.trace.push(Choice {
            options: options.clone(),
            chosen: idx,
        });
        idx
    };
    let next = options[chosen_index];
    if me_runnable && next != me {
        st.preemptions += 1;
    }
    st.active = next;
    Some(next)
}

fn abort_all(st: &mut ExecState, message: String) {
    if st.panic_message.is_none() {
        st.panic_message = Some(message);
    }
    st.abort = true;
}

/// Blocks the calling OS thread until it holds the run token again.
/// Must be entered with the state lock held; panics (unwinding the model
/// thread) if the execution aborted meanwhile.
fn wait_for_token(exec: &Execution, mut st: std::sync::MutexGuard<'_, ExecState>, me: usize) {
    loop {
        if st.abort {
            drop(st);
            std::panic::resume_unwind(Box::new(AbortExecution));
        }
        if st.active == me && st.threads[me] == Run::Runnable {
            return;
        }
        st = exec.cond.wait(st).expect("scheduler lock poisoned");
    }
}

/// Payload used to tear down sibling threads after a failure; recognised
/// and swallowed by the thread wrapper.
struct AbortExecution;

/// A scheduling point: gives the explorer the opportunity to preempt the
/// calling thread before its next shared-memory access.
pub(crate) fn yield_point() {
    let Some((exec, me)) = try_current() else {
        // Outside a model (e.g. the shim's own unit tests constructing
        // atomics directly): act as a plain access.
        return;
    };
    let mut st = exec.state.lock().expect("scheduler lock poisoned");
    if st.abort {
        drop(st);
        std::panic::resume_unwind(Box::new(AbortExecution));
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        let msg = format!(
            "execution exceeded {} scheduling points — livelock or unbounded loop?",
            st.max_steps
        );
        abort_all(&mut st, msg);
        exec.cond.notify_all();
        drop(st);
        std::panic::resume_unwind(Box::new(AbortExecution));
    }
    match schedule_locked(&mut st, me, true) {
        Some(next) if next == me => {}
        Some(_) => {
            exec.cond.notify_all();
            wait_for_token(&exec, st, me);
        }
        None => unreachable!("current thread is runnable"),
    }
}

/// Blocks the current thread on `resource` until [`unblock`] wakes it.
pub(crate) fn block_on(resource: usize) {
    let (exec, me) = current();
    let mut st = exec.state.lock().expect("scheduler lock poisoned");
    st.threads[me] = Run::Blocked(resource);
    if schedule_locked(&mut st, me, false).is_none() {
        abort_all(
            &mut st,
            "deadlock: every live thread is blocked".to_string(),
        );
    }
    exec.cond.notify_all();
    wait_for_token(&exec, st, me);
}

/// Marks every thread blocked on `resource` runnable again.
pub(crate) fn unblock(resource: usize) {
    let Some((exec, _)) = try_current() else {
        // Outside a model nothing can be blocked on the simulated mutex.
        return;
    };
    let mut st = exec.state.lock().expect("scheduler lock poisoned");
    for run in st.threads.iter_mut() {
        if *run == Run::Blocked(resource) {
            *run = Run::Runnable;
        }
    }
    // The waker keeps the token; the woken threads compete at the next
    // scheduling point.
    exec.cond.notify_all();
}

/// Registers a new simulated thread and starts its OS thread.
pub(crate) fn spawn_thread(body: Box<dyn FnOnce() + Send>) -> usize {
    let (exec, _) = current();
    let id = {
        let mut st = exec.state.lock().expect("scheduler lock poisoned");
        let id = st.threads.len();
        assert!(
            id < MAX_THREADS,
            "loom model limited to {MAX_THREADS} threads"
        );
        st.threads.push(Run::Runnable);
        st.alive += 1;
        id
    };
    os_spawn(Arc::clone(&exec), id, body);
    // A spawn is a scheduling point: the child may run before the parent's
    // next instruction.
    yield_point();
    id
}

/// Blocks until thread `target` finishes.
pub(crate) fn join_thread(target: usize) {
    let (exec, me) = current();
    let mut st = exec.state.lock().expect("scheduler lock poisoned");
    if st.threads[target] == Run::Finished {
        return;
    }
    st.threads[me] = Run::Joining(target);
    if schedule_locked(&mut st, me, false).is_none() {
        abort_all(
            &mut st,
            "deadlock: every live thread is blocked".to_string(),
        );
    }
    exec.cond.notify_all();
    wait_for_token(&exec, st, me);
}

fn os_spawn(exec: Arc<Execution>, id: usize, body: Box<dyn FnOnce() + Send>) {
    std::thread::Builder::new()
        .name(format!("loom-{id}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), id)));
            {
                let st = exec.state.lock().expect("scheduler lock poisoned");
                // Root starts active; spawned threads wait to be scheduled.
                let result = catch_unwind(AssertUnwindSafe(|| wait_for_token(&exec, st, id)));
                if result.is_err() {
                    finish_thread(&exec, id);
                    return;
                }
            }
            let result = catch_unwind(AssertUnwindSafe(body));
            if let Err(payload) = result {
                let mut st = exec.state.lock().expect("scheduler lock poisoned");
                if !payload.is::<AbortExecution>() {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "thread panicked (non-string payload)".to_string());
                    abort_all(&mut st, format!("thread {id} panicked: {msg}"));
                }
                exec.cond.notify_all();
            }
            finish_thread(&exec, id);
        })
        .expect("failed to spawn model thread");
}

fn finish_thread(exec: &Execution, id: usize) {
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut st = exec.state.lock().expect("scheduler lock poisoned");
    st.threads[id] = Run::Finished;
    for run in st.threads.iter_mut() {
        if *run == Run::Joining(id) {
            *run = Run::Runnable;
        }
    }
    if schedule_locked(&mut st, id, false).is_none() {
        // No runnable thread. Either everything finished (normal end) or
        // the remainder is blocked (deadlock).
        let all_done = st.threads.iter().all(|r| *r == Run::Finished);
        if !all_done && !st.abort {
            abort_all(
                &mut st,
                "deadlock: remaining threads are all blocked".to_string(),
            );
        }
    }
    st.alive -= 1;
    exec.cond.notify_all();
}

/// Computes the replay prefix for the next execution: backtrack to the
/// deepest decision with an untried alternative. `None` when exhausted.
fn next_replay(mut trace: Vec<Choice>) -> Option<Vec<Choice>> {
    while let Some(last) = trace.last() {
        if last.chosen + 1 < last.options.len() {
            let last = trace.last_mut().expect("non-empty");
            last.chosen += 1;
            return Some(trace);
        }
        trace.pop();
    }
    None
}

/// Runs `f` under every schedule the bounded explorer generates,
/// panicking on the first failing execution.
///
/// Environment knobs: `LOOM_PREEMPTION_BOUND` (default 2),
/// `LOOM_MAX_ITERATIONS` (default 500000), `LOOM_MAX_STEPS` (default
/// 5000000 scheduling points per execution), `LOOM_LOG` (any value: print
/// the execution count when done).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let bound = env_usize("LOOM_PREEMPTION_BOUND", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 500_000);
    let max_steps = env_usize("LOOM_MAX_STEPS", 5_000_000) as u64;
    let f = Arc::new(f);

    let mut replay: Vec<Choice> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom: exceeded LOOM_MAX_ITERATIONS={max_iterations} executions without \
             exhausting the schedule space — shrink the scenario or lower the bound",
        );

        let exec = Arc::new(Execution::new(
            std::mem::take(&mut replay),
            bound,
            max_steps,
        ));
        {
            let mut st = exec.state.lock().expect("scheduler lock poisoned");
            st.threads.push(Run::Runnable);
            st.alive = 1;
            st.active = 0;
        }
        let body = {
            let f = Arc::clone(&f);
            Box::new(move || f())
        };
        os_spawn(Arc::clone(&exec), 0, body);

        let (panic_message, trace) = {
            let mut st = exec.state.lock().expect("scheduler lock poisoned");
            while st.alive > 0 {
                st = exec.cond.wait(st).expect("scheduler lock poisoned");
            }
            (st.panic_message.take(), std::mem::take(&mut st.trace))
        };
        if let Some(msg) = panic_message {
            panic!("loom: execution {iterations} failed: {msg}");
        }
        match next_replay(trace) {
            Some(r) => replay = r,
            None => break,
        }
    }
    if std::env::var_os("LOOM_LOG").is_some() {
        eprintln!("loom: explored {iterations} executions (preemption bound {bound})");
    }
}

/// Allocates a process-unique resource id (used by `sync::Mutex`).
pub(crate) fn next_resource_id() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Helper for `thread::spawn`'s typed result channel.
pub(crate) type ResultSlot<T> = Arc<Mutex<Option<T>>>;

/// FIFO used by shim-internal tests; exported for reuse in `sync`.
#[allow(dead_code)]
pub(crate) type Queue<T> = VecDeque<T>;
