//! Simulated threads: `loom::thread::{spawn, yield_now, JoinHandle}`.

use crate::rt;

/// Handle to a simulated thread; joining returns the closure's value.
#[derive(Debug)]
pub struct JoinHandle<T> {
    id: usize,
    result: rt::ResultSlot<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// The `Err` arm mirrors `std`'s signature but is never produced: a
    /// panicking model thread aborts the whole execution instead, and
    /// [`crate::model`] reports it.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        rt::join_thread(self.id);
        let value = self
            .result
            .lock()
            .expect("result slot poisoned")
            .take()
            .expect("joined thread produced no value");
        Ok(value)
    }
}

/// Spawns a simulated thread running `f`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result: rt::ResultSlot<T> = std::sync::Arc::new(std::sync::Mutex::new(None));
    let slot = std::sync::Arc::clone(&result);
    let id = rt::spawn_thread(Box::new(move || {
        let value = f();
        *slot.lock().expect("result slot poisoned") = Some(value);
    }));
    JoinHandle { id, result }
}

/// A voluntary scheduling point. (For state-space economy this shim
/// charges a switch here against the preemption budget like any other
/// scheduling point.)
pub fn yield_now() {
    rt::yield_point();
}
