//! Simulated synchronization primitives: atomics and a mutex.
//!
//! Every operation is a scheduling point. Accesses themselves are plain
//! (non-atomic) reads/writes of an `UnsafeCell`, which is sound because
//! the scheduler's token passing serializes all simulated threads: the
//! token is handed over through a `std::sync::Mutex`, whose lock/unlock
//! pair establishes happens-before between consecutive accesses.

use crate::rt;
use std::cell::UnsafeCell;
use std::sync::{PoisonError, TryLockError};

/// `std::sync::Arc`, re-exported unchanged: reference counting is already
/// data-race free and is not part of the protocols under test.
pub use std::sync::Arc;

/// Simulated atomics with sequentially consistent exploration semantics.
pub mod atomic {
    use super::UnsafeCell;
    use crate::rt;

    /// Memory ordering, accepted for API compatibility. The checker
    /// explores interleavings under sequential consistency; see the crate
    /// docs for why that is the deliberate scope.
    pub use std::sync::atomic::Ordering;

    /// A scheduling-point fence. Orderings are moot under the shim's
    /// sequentially consistent semantics, so this only yields.
    pub fn fence(_order: Ordering) {
        rt::yield_point();
    }

    macro_rules! atomic_int {
        ($(#[$doc:meta])* $name:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                v: UnsafeCell<$ty>,
            }

            // SAFETY: all access is serialized by the model scheduler (or
            // by the caller outside a model, same as a plain atomic).
            unsafe impl Send for $name {}
            unsafe impl Sync for $name {}

            impl $name {
                /// Creates a new atomic (const, matching `std`).
                pub const fn new(v: $ty) -> Self {
                    Self {
                        v: UnsafeCell::new(v),
                    }
                }

                /// Loads the value.
                pub fn load(&self, _order: Ordering) -> $ty {
                    rt::yield_point();
                    unsafe { *self.v.get() }
                }

                /// Stores a value.
                pub fn store(&self, val: $ty, _order: Ordering) {
                    rt::yield_point();
                    unsafe { *self.v.get() = val }
                }

                /// Swaps the value, returning the previous one.
                pub fn swap(&self, val: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    unsafe { std::mem::replace(&mut *self.v.get(), val) }
                }

                /// Compare-and-exchange; `Err` carries the observed value.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::yield_point();
                    let slot = unsafe { &mut *self.v.get() };
                    if *slot == current {
                        *slot = new;
                        Ok(current)
                    } else {
                        Err(*slot)
                    }
                }

                /// Weak compare-and-exchange; never fails spuriously here.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Adds, returning the previous value.
                pub fn fetch_add(&self, val: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    let slot = unsafe { &mut *self.v.get() };
                    let prev = *slot;
                    *slot = prev.wrapping_add(val);
                    prev
                }

                /// Subtracts, returning the previous value.
                pub fn fetch_sub(&self, val: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    let slot = unsafe { &mut *self.v.get() };
                    let prev = *slot;
                    *slot = prev.wrapping_sub(val);
                    prev
                }

                /// Bitwise-or, returning the previous value.
                pub fn fetch_or(&self, val: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    let slot = unsafe { &mut *self.v.get() };
                    let prev = *slot;
                    *slot = prev | val;
                    prev
                }

                /// Bitwise-and, returning the previous value.
                pub fn fetch_and(&self, val: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    let slot = unsafe { &mut *self.v.get() };
                    let prev = *slot;
                    *slot = prev & val;
                    prev
                }

                /// Mutable access (exclusive ownership; not a scheduling
                /// point, matching `std`).
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.v.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $ty {
                    self.v.into_inner()
                }
            }
        };
    }

    atomic_int!(
        /// Simulated `AtomicUsize`.
        AtomicUsize,
        usize
    );
    atomic_int!(
        /// Simulated `AtomicU64`.
        AtomicU64,
        u64
    );
    atomic_int!(
        /// Simulated `AtomicU32`.
        AtomicU32,
        u32
    );

    /// Simulated `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        v: UnsafeCell<bool>,
    }

    // SAFETY: see the integer atomics above.
    unsafe impl Send for AtomicBool {}
    unsafe impl Sync for AtomicBool {}

    impl AtomicBool {
        /// Creates a new atomic bool.
        pub const fn new(v: bool) -> Self {
            Self {
                v: UnsafeCell::new(v),
            }
        }

        /// Loads the value.
        pub fn load(&self, _order: Ordering) -> bool {
            rt::yield_point();
            unsafe { *self.v.get() }
        }

        /// Stores a value.
        pub fn store(&self, val: bool, _order: Ordering) {
            rt::yield_point();
            unsafe { *self.v.get() = val }
        }

        /// Swaps the value, returning the previous one.
        pub fn swap(&self, val: bool, _order: Ordering) -> bool {
            rt::yield_point();
            unsafe { std::mem::replace(&mut *self.v.get(), val) }
        }

        /// Compare-and-exchange; `Err` carries the observed value.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            rt::yield_point();
            let slot = unsafe { &mut *self.v.get() };
            if *slot == current {
                *slot = new;
                Ok(current)
            } else {
                Err(*slot)
            }
        }

        /// Mutable access (exclusive ownership; not a scheduling point).
        pub fn get_mut(&mut self) -> &mut bool {
            self.v.get_mut()
        }

        /// Consumes the atomic, returning the value.
        pub fn into_inner(self) -> bool {
            self.v.into_inner()
        }
    }

    /// Simulated `AtomicPtr`.
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        v: UnsafeCell<*mut T>,
    }

    // SAFETY: see the integer atomics above.
    unsafe impl<T> Send for AtomicPtr<T> {}
    unsafe impl<T> Sync for AtomicPtr<T> {}

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    impl<T> AtomicPtr<T> {
        /// Creates a new atomic pointer.
        pub const fn new(v: *mut T) -> Self {
            Self {
                v: UnsafeCell::new(v),
            }
        }

        /// Loads the pointer.
        pub fn load(&self, _order: Ordering) -> *mut T {
            rt::yield_point();
            unsafe { *self.v.get() }
        }

        /// Stores a pointer.
        pub fn store(&self, val: *mut T, _order: Ordering) {
            rt::yield_point();
            unsafe { *self.v.get() = val }
        }

        /// Swaps the pointer, returning the previous one.
        pub fn swap(&self, val: *mut T, _order: Ordering) -> *mut T {
            rt::yield_point();
            unsafe { std::mem::replace(&mut *self.v.get(), val) }
        }

        /// Compare-and-exchange; `Err` carries the observed pointer.
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            rt::yield_point();
            let slot = unsafe { &mut *self.v.get() };
            if std::ptr::eq(*slot, current) {
                *slot = new;
                Ok(current)
            } else {
                Err(*slot)
            }
        }

        /// Mutable access (exclusive ownership; not a scheduling point).
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.v.get_mut()
        }

        /// Consumes the atomic, returning the pointer.
        pub fn into_inner(self) -> *mut T {
            self.v.into_inner()
        }
    }
}

/// A scheduler-aware mutex mirroring `std::sync::Mutex`'s API.
///
/// Never poisons (a panicking model thread aborts the whole execution),
/// but returns the `std` `Result` types so call sites written against
/// `std::sync::Mutex` compile unchanged.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    id: usize,
    locked: UnsafeCell<bool>,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler serializes access to `locked`; `data` is guarded
// by the lock protocol itself, as with any mutex.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex`]; unlocks (and wakes waiters) on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub fn new(data: T) -> Self {
        Mutex {
            id: rt::next_resource_id(),
            locked: UnsafeCell::new(false),
            data: UnsafeCell::new(data),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock; a scheduling point, and blocks (in the model
    /// sense) while another simulated thread holds it.
    #[allow(clippy::result_unit_err)]
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError<MutexGuard<'_, T>>> {
        loop {
            rt::yield_point();
            // SAFETY: we hold the run token; accesses are serialized.
            let locked = unsafe { &mut *self.locked.get() };
            if !*locked {
                *locked = true;
                return Ok(MutexGuard { mutex: self });
            }
            rt::block_on(self.id);
        }
    }

    /// Attempts the lock without blocking (still a scheduling point).
    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError<MutexGuard<'_, T>>> {
        rt::yield_point();
        // SAFETY: we hold the run token; accesses are serialized.
        let locked = unsafe { &mut *self.locked.get() };
        if !*locked {
            *locked = true;
            Ok(MutexGuard { mutex: self })
        } else {
            Err(TryLockError::WouldBlock)
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> Result<&mut T, PoisonError<&mut T>> {
        Ok(self.data.get_mut())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence proves we hold the lock.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence proves we hold the lock exclusively.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: unlocking requires the run token, which we hold between
        // scheduling points.
        unsafe { *self.mutex.locked.get() = false };
        rt::unblock(self.mutex.id);
    }
}
