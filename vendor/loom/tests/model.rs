//! Self-tests for the model checker: it must *find* real races (the
//! whole point) and must *not* flag correct code, and its scheduler must
//! actually explore more than one interleaving.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicUsize as StdAtomicUsize;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Mutex as StdMutex;

/// A racy read-modify-write (load; add; store) must be caught: some
/// interleaving loses an update, and the checker must reach it.
#[test]
fn detects_lost_update() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let cur = n.load(Ordering::Acquire);
                        n.store(cur + 1, Ordering::Release);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Acquire), 2, "lost update");
        });
    }));
    assert!(result.is_err(), "the checker missed a textbook lost update");
}

/// The same counter built from `fetch_add` is correct in every
/// interleaving; the checker must run it to completion without noise.
#[test]
fn passes_atomic_increment() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::AcqRel);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Acquire), 2);
    });
}

/// CAS retry loops (the EFRB building block) must be correct under the
/// checker even though plain load+store is not.
#[test]
fn passes_cas_increment() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || loop {
                    let cur = n.load(Ordering::Acquire);
                    if n.compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        break;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Acquire), 2);
    });
}

/// The simulated mutex must serialize its critical sections: the same
/// load-add-store that races as bare atomics is safe under the lock.
#[test]
fn mutex_serializes_critical_sections() {
    loom::model(|| {
        let n = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let mut g = n.lock().unwrap();
                    let cur = *g;
                    *g = cur + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
}

/// `join` must return the child's value.
#[test]
fn join_returns_value() {
    loom::model(|| {
        let h = thread::spawn(|| 42usize);
        assert_eq!(h.join().unwrap(), 42);
    });
}

/// ABBA lock ordering deadlocks in some interleaving; the checker must
/// report it rather than hang.
#[test]
fn detects_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop(_ga);
            drop(_gb);
            let _ = h.join();
        });
    }));
    assert!(result.is_err(), "the checker missed an ABBA deadlock");
}

/// The scheduler must genuinely explore distinct interleavings: with two
/// racing stores, both final values must be observed across executions.
#[test]
fn explores_both_store_orders() {
    let seen = Arc::new(StdMutex::new(HashSet::new()));
    let seen2 = Arc::clone(&seen);
    loom::model(move || {
        let n = Arc::new(AtomicUsize::new(0));
        let n1 = Arc::clone(&n);
        let n2 = Arc::clone(&n);
        let h1 = thread::spawn(move || n1.store(1, Ordering::Release));
        let h2 = thread::spawn(move || n2.store(2, Ordering::Release));
        h1.join().unwrap();
        h2.join().unwrap();
        seen2.lock().unwrap().insert(n.load(Ordering::Acquire));
    });
    let seen = seen.lock().unwrap().clone();
    assert!(
        seen.contains(&1) && seen.contains(&2),
        "only saw final values {seen:?}; the scheduler is not exploring"
    );
}

/// Executions must be counted and bounded; a tiny 3-thread workload
/// should finish in well under the default iteration cap.
#[test]
fn three_thread_exploration_terminates() {
    let execs = Arc::new(StdAtomicUsize::new(0));
    let execs2 = Arc::clone(&execs);
    loom::model(move || {
        execs2.fetch_add(1, Relaxed);
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::AcqRel);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Acquire), 3);
    });
    let execs = execs.load(Relaxed);
    assert!(execs > 1, "explored only one interleaving");
    assert!(execs < 500_000, "exploration did not converge: {execs}");
}
