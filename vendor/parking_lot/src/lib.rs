//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` locks behind `parking_lot`'s panic-free API (guards
//! returned directly, poison recovered transparently). Performance is
//! whatever the platform's `std` locks deliver — on Linux both are futex
//! based, so the baselines this workspace benchmarks against remain
//! honest comparators.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poison is ignored:
    /// a panic while holding the lock does not wedge later callers.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
