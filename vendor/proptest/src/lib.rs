//! Minimal offline stand-in for the `proptest` property-testing crate.
//!
//! Supports the subset the workspace's suites use: the [`proptest!`] test
//! macro, [`Strategy`] with `prop_map`, [`prop_oneof!`] unions, `any::<T>()`,
//! integer-range and tuple strategies, [`collection::vec`],
//! [`sample::select`], and the `prop_assert!`/`prop_assert_eq!` assertion
//! macros.
//!
//! Semantics differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs (every
//!   strategy value is `Debug`) but does not minimize them.
//! * **Fixed deterministic seeding.** Cases derive from a per-test seed
//!   (FNV of the test name), so runs are reproducible byte-for-byte; set
//!   `PROPTEST_CASES` to change the case count (default 64).

#[doc(hidden)]
pub use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;
use std::ops::Range;

/// Error raised by `prop_assert*` macros inside a [`proptest!`] body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given explanation.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type produced by a [`proptest!`] body closure.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of test values.
///
/// Unlike real proptest there is no value tree: a strategy just samples.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn ObjectStrategy<Value = T>>;

/// Object-safe core of [`Strategy`] (no combinator methods).
pub trait ObjectStrategy {
    /// The type of generated values.
    type Value: fmt::Debug;
    /// Draws one value.
    fn generate_obj(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<S: Strategy> ObjectStrategy for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut SmallRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        self.as_ref().generate_obj(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Builds a union over `branches`; panics if empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let i = rng.gen_range(0..self.branches.len());
        self.branches[i].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                // Truncation keeps all bit positions uniform.
                rng.gen::<u64>() as $t
            }
        }
    )+};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Sampling strategies over fixed value sets.
pub mod sample {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::fmt;

    /// Strategy yielding a uniformly-chosen clone of one of a fixed set
    /// of values (see [`select`]).
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.values[rng.gen_range(0..self.values.len())].clone()
        }
    }

    /// Mirrors `proptest::sample::select(values)`: draws uniformly from
    /// `values`. Panics if `values` is empty.
    pub fn select<T: Clone + fmt::Debug>(values: Vec<T>) -> Select<T> {
        assert!(
            !values.is_empty(),
            "sample::select needs at least one value"
        );
        Select { values }
    }
}

/// Number of cases each [`proptest!`] test runs (env `PROPTEST_CASES`).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test seed: FNV-1a over the test's name.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests: each `arg in strategy` binding is sampled per
/// case, and `prop_assert*` failures abort with the case's inputs printed.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let cases = $crate::case_count();
            let mut rng = <$crate::SmallRng as $crate::SeedableRng>::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            $(let $arg = $strategy;)+
            for case in 0..cases {
                $(let $arg = $arg.generate(&mut rng);)+
                // Render inputs before the body consumes them, so failures
                // can report the offending case without a `Clone` bound.
                let rendered_inputs =
                    [$(format!("  {} = {:?}", stringify!($arg), $arg)),+].join("\n");
                let result: $crate::TestCaseResult = (move || {
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!("proptest case {case} failed: {e}\ninputs:\n{rendered_inputs}");
                }
            }
        }
    )+};
}

/// Fails the enclosing proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the enclosing proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

// Re-exports the proptest! machinery needs in scope at expansion sites.
#[doc(hidden)]
pub use rand::SeedableRng;

/// The usual glob import: strategies, `any`, and the macros.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy, TestCaseError, TestCaseResult, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let s = (0u8..3, 10u64..20);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 3 && (10..20).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let s = prop_oneof![
            any::<u8>().prop_map(|_| 0u8),
            any::<u8>().prop_map(|_| 1u8),
            any::<u8>().prop_map(|_| 2u8),
        ];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let s = crate::collection::vec(0u8..5, 2..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        /// The macro itself: bindings, trailing comma, prop_assert forms.
        #[test]
        fn macro_smoke(
            xs in crate::collection::vec(0u64..100, 0..10),
            k in 1u64..5,
        ) {
            prop_assert!((1..5).contains(&k), "k out of range: {}", k);
            let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            for (d, x) in doubled.iter().zip(&xs) {
                prop_assert_eq!(*d, x * 2, "at x = {}", x);
            }
        }
    }

    #[test]
    fn select_draws_only_given_values_and_hits_all() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let values = vec![3u64, 17, 42];
        let s = crate::sample::select(values.clone());
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            let i = values.iter().position(|&x| x == v).expect("foreign value");
            seen[i] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn select_rejects_empty_set() {
        let _ = crate::sample::select(Vec::<u64>::new());
    }

    #[test]
    fn select_composes_with_vec_and_map() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let s = crate::collection::vec(crate::sample::select(vec![1u64, 2]), 3..4)
            .prop_map(|v| v.iter().sum::<u64>());
        for _ in 0..50 {
            let sum = s.generate(&mut rng);
            assert!((3..=6).contains(&sum));
        }
    }

    #[test]
    fn seeds_differ_by_name_and_are_stable() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
