//! Randomized CAS-step interleaving fuzzing for 3–4 concurrent stepped
//! operations (the exhaustive enumeration in `schedule_enumeration.rs`
//! covers pairs completely; triples/quadruples are sampled with seeded
//! RNG so failures replay deterministically).
//!
//! Validation per schedule: the final key set must equal the result of
//! applying the operations in SOME sequential order (since each stepped
//! op runs start-to-finish within the schedule, any permutation is an
//! admissible linearization), and the tree must satisfy its structural
//! and Figure-4 invariants.

use nbbst::core::raw::{DeleteSearch, InsertSearch, MarkOutcome, RawDelete, RawInsert};
use nbbst::NbBst;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Insert(u64),
    Delete(u64),
}

enum Driver<'t> {
    Insert(RawInsert<'t, u64, u64>, u8),
    Delete(RawDelete<'t, u64, u64>, u8),
    Done,
}

impl<'t> Driver<'t> {
    fn new(tree: &'t NbBst<u64, u64>, op: Op) -> Driver<'t> {
        match op {
            Op::Insert(k) => Driver::Insert(RawInsert::new(tree, k, k), 0),
            Op::Delete(k) => Driver::Delete(RawDelete::new(tree, k), 0),
        }
    }

    fn is_done(&self) -> bool {
        matches!(self, Driver::Done)
    }

    fn step(&mut self) {
        // Phases — insert: 0 search, 1 flag, 2 child, 3 unflag;
        //          delete: 0 search, 1 flag, 2 mark, 3 child, 4 unflag,
        //                  5 backtrack.
        let next = match std::mem::replace(self, Driver::Done) {
            Driver::Insert(mut ins, phase) => match phase {
                0 => match ins.search() {
                    InsertSearch::Duplicate => Driver::Done,
                    InsertSearch::Busy(_) => {
                        ins.help_blocker();
                        Driver::Insert(ins, 0)
                    }
                    InsertSearch::Ready => Driver::Insert(ins, 1),
                },
                1 => {
                    if ins.flag() {
                        Driver::Insert(ins, 2)
                    } else {
                        Driver::Insert(ins, 0)
                    }
                }
                2 => {
                    ins.execute_child();
                    Driver::Insert(ins, 3)
                }
                _ => {
                    ins.unflag();
                    Driver::Done
                }
            },
            Driver::Delete(mut del, phase) => match phase {
                0 => match del.search() {
                    DeleteSearch::NotFound => Driver::Done,
                    DeleteSearch::Busy(_) => {
                        del.help_blocker();
                        Driver::Delete(del, 0)
                    }
                    DeleteSearch::Ready => Driver::Delete(del, 1),
                },
                1 => {
                    if del.flag() {
                        Driver::Delete(del, 2)
                    } else {
                        Driver::Delete(del, 0)
                    }
                }
                2 => match del.mark() {
                    MarkOutcome::Marked => Driver::Delete(del, 3),
                    MarkOutcome::Failed => Driver::Delete(del, 5),
                },
                3 => {
                    del.execute_child();
                    Driver::Delete(del, 4)
                }
                5 => {
                    del.backtrack();
                    Driver::Delete(del, 0)
                }
                _ => {
                    del.unflag();
                    Driver::Done
                }
            },
            done => done,
        };
        *self = next;
    }
}

/// Final key sets admissible under any sequential ordering of `ops`.
fn admissible_outcomes(initial: &[u64], ops: &[Op]) -> Vec<BTreeSet<u64>> {
    fn permutations(ops: &[Op]) -> Vec<Vec<Op>> {
        if ops.len() <= 1 {
            return vec![ops.to_vec()];
        }
        let mut out = Vec::new();
        for i in 0..ops.len() {
            let mut rest = ops.to_vec();
            let x = rest.remove(i);
            for mut tail in permutations(&rest) {
                tail.insert(0, x);
                out.push(tail);
            }
        }
        out
    }
    let mut outcomes: Vec<BTreeSet<u64>> = Vec::new();
    for perm in permutations(ops) {
        let mut set: BTreeSet<u64> = initial.iter().copied().collect();
        for op in perm {
            match op {
                Op::Insert(k) => {
                    set.insert(k);
                }
                Op::Delete(k) => {
                    set.remove(&k);
                }
            }
        }
        if !outcomes.contains(&set) {
            outcomes.push(set);
        }
    }
    outcomes
}

fn run_random_schedule(initial: &[u64], ops: &[Op], seed: u64) {
    let tree: NbBst<u64, u64> = NbBst::with_stats();
    for &k in initial {
        tree.insert_entry(k, k).unwrap();
    }
    let mut drivers: Vec<Driver<'_>> = ops.iter().map(|&op| Driver::new(&tree, op)).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut steps = 0;
    while drivers.iter().any(|d| !d.is_done()) {
        steps += 1;
        assert!(steps < 512, "seed {seed}: schedule did not terminate");
        let live: Vec<usize> = drivers
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_done())
            .map(|(i, _)| i)
            .collect();
        let pick = live[rng.gen_range(0..live.len())];
        drivers[pick].step();
    }
    drop(drivers);

    let final_keys: BTreeSet<u64> = tree.keys_snapshot().into_iter().collect();
    let admissible = admissible_outcomes(initial, ops);
    assert!(
        admissible.contains(&final_keys),
        "seed {seed}: ops {ops:?} produced {final_keys:?}, admissible {admissible:?}"
    );
    tree.check_invariants()
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    tree.stats()
        .unwrap()
        .check_figure4()
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
}

#[test]
fn fuzz_three_ops_hot_neighborhood() {
    let initial = [10u64, 30, 50, 80];
    let ops = [Op::Insert(60), Op::Delete(50), Op::Delete(30)];
    for seed in 0..3_000 {
        run_random_schedule(&initial, &ops, seed);
    }
}

#[test]
fn fuzz_three_ops_same_key() {
    let initial = [10u64, 30];
    let ops = [Op::Insert(20), Op::Delete(20), Op::Insert(20)];
    for seed in 0..3_000 {
        run_random_schedule(&initial, &ops, seed);
    }
}

#[test]
fn fuzz_four_ops_mixed() {
    let initial = [10u64, 20, 30, 40, 50];
    let ops = [
        Op::Insert(25),
        Op::Delete(20),
        Op::Delete(30),
        Op::Insert(35),
    ];
    for seed in 0..2_000 {
        run_random_schedule(&initial, &ops, seed);
    }
}

#[test]
fn fuzz_four_deletes_of_adjacent_keys() {
    let initial = [10u64, 20, 30, 40, 50, 60];
    let ops = [
        Op::Delete(20),
        Op::Delete(30),
        Op::Delete(40),
        Op::Delete(50),
    ];
    for seed in 0..2_000 {
        run_random_schedule(&initial, &ops, seed);
    }
}

#[test]
fn fuzz_random_op_sets() {
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    for round in 0..400 {
        let initial: Vec<u64> = (0..8u64).map(|i| i * 10).collect();
        let ops: Vec<Op> = (0..3)
            .map(|_| {
                let k = rng.gen_range(0..9u64) * 10 + if rng.gen() { 5 } else { 0 };
                if rng.gen() {
                    Op::Insert(k)
                } else {
                    Op::Delete(k)
                }
            })
            .collect();
        for seed in 0..40 {
            run_random_schedule(&initial, &ops, round * 1_000 + seed);
        }
    }
}
