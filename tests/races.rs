//! F3 integration tests: the Figure 3 schedules — anomalous on the naive
//! single-CAS tree, harmless on the EFRB tree.

use nbbst::baselines::naive::{CommitOutcome, NaiveBst};
use nbbst::core::raw::{MarkOutcome, RawDelete, RawInsert};
use nbbst::NbBst;

const A: u64 = 10;
const C: u64 = 30;
const E: u64 = 50;
const F: u64 = 60;
const H: u64 = 80;

fn naive_with_figure3_keys() -> NaiveBst<u64, u64> {
    let t = NaiveBst::new();
    for k in [A, C, E, H] {
        assert!(t.insert(k, k));
    }
    t
}

fn efrb_with_figure3_keys() -> NbBst<u64, u64> {
    let t = NbBst::with_stats();
    for k in [A, C, E, H] {
        t.insert_entry(k, k).unwrap();
    }
    t
}

#[test]
fn figure3b_naive_resurrects_deleted_key() {
    let t = naive_with_figure3_keys();
    let del_c = t.prepare_delete(&C).unwrap();
    let del_e = t.prepare_delete(&E).unwrap();
    assert!(matches!(del_e.commit(), CommitOutcome::Applied));
    assert!(matches!(del_c.commit(), CommitOutcome::Applied));
    assert!(t.contains(&E), "Figure 3(b): E must still be reachable");
    assert!(!t.contains(&C));
}

#[test]
fn figure3c_naive_loses_inserted_key() {
    let t = naive_with_figure3_keys();
    let del_e = t.prepare_delete(&E).unwrap();
    let ins_f = t.prepare_insert(F, F).unwrap();
    assert!(matches!(ins_f.commit(), CommitOutcome::Applied));
    assert!(matches!(del_e.commit(), CommitOutcome::Applied));
    assert!(!t.contains(&F), "Figure 3(c): F must be unreachable");
}

#[test]
fn figure3b_schedule_rejected_by_efrb() {
    let t = efrb_with_figure3_keys();
    let mut del_c = RawDelete::new(&t, C);
    let mut del_e = RawDelete::new(&t, E);
    assert!(del_c.search().is_ready());
    assert!(del_e.search().is_ready());
    // Delete(E) completes first.
    assert!(del_e.flag());
    assert_eq!(del_e.mark(), MarkOutcome::Marked);
    del_e.execute_child();
    del_e.unflag();
    // Delete(C)'s stale attempt must be rejected at least once.
    let mut rejected = 0;
    loop {
        if !del_c.flag() {
            rejected += 1;
            assert!(del_c.search().is_ready());
            continue;
        }
        match del_c.mark() {
            MarkOutcome::Marked => {
                del_c.execute_child();
                del_c.unflag();
                break;
            }
            MarkOutcome::Failed => {
                rejected += 1;
                assert!(del_c.backtrack());
                assert!(del_c.search().is_ready());
            }
        }
    }
    assert!(rejected > 0, "stale snapshot must be rejected");
    assert!(!t.contains_key(&C));
    assert!(!t.contains_key(&E), "no Figure 3(b) resurrection");
    t.check_invariants().unwrap();
    t.stats().unwrap().check_figure4().unwrap();
}

#[test]
fn figure3c_schedule_rejected_by_efrb() {
    let t = efrb_with_figure3_keys();
    let mut del_e = RawDelete::new(&t, E);
    assert!(del_e.search().is_ready());
    assert!(del_e.flag());

    let mut ins_f = RawInsert::new(&t, F, F);
    assert!(ins_f.search().is_ready());
    assert!(ins_f.flag());
    assert!(ins_f.execute_child());
    assert!(ins_f.unflag());
    drop(ins_f);

    // The doomed delete backtracks instead of unlinking F's subtree.
    assert_eq!(del_e.mark(), MarkOutcome::Failed);
    assert!(del_e.backtrack());
    assert!(t.contains_key(&F), "no Figure 3(c) lost insert");
    assert!(
        t.contains_key(&E),
        "the failed delete left the tree unchanged"
    );

    // The retried delete succeeds cleanly.
    assert!(del_e.search().is_ready());
    assert!(del_e.flag());
    assert_eq!(del_e.mark(), MarkOutcome::Marked);
    del_e.execute_child();
    del_e.unflag();
    assert!(!t.contains_key(&E));
    assert!(t.contains_key(&F));
    t.check_invariants().unwrap();
    t.stats().unwrap().check_figure4().unwrap();
}

#[test]
fn naive_racy_parallel_churn_eventually_diverges_from_truth() {
    // Not a deterministic schedule: hammer the naive tree from threads and
    // check a basic consistency property that the EFRB tree guarantees;
    // the naive tree will usually (not always, on one core) violate it.
    // We only assert that the EFRB run below stays consistent.
    let efrb: NbBst<u64, u64> = NbBst::new();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let efrb = &efrb;
            s.spawn(move || {
                let mut x = t + 1;
                for _ in 0..5_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 16;
                    if x & 1 == 0 {
                        use nbbst::ConcurrentMap;
                        efrb.insert(k, k);
                    } else {
                        use nbbst::ConcurrentMap;
                        efrb.remove(&k);
                    }
                }
            });
        }
    });
    efrb.check_invariants().unwrap();
    let snapshot = efrb.keys_snapshot();
    let observed: Vec<u64> = (0..16).filter(|k| efrb.contains_key(k)).collect();
    assert_eq!(snapshot, observed, "snapshot and membership must agree");
}
