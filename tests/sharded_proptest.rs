//! Property tests: [`ShardedNbBst`] agrees with a sequential `BTreeMap`
//! oracle for arbitrary single-threaded histories, at every shard count
//! the frontend is expected to run at, for both *spread-out* key sets
//! (exercising every shard) and *adversarial* key sets whose every key
//! collides onto a single shard (exercising one tree through the routed
//! path, including its neighbours staying empty).

use nbbst::sharded::ShardedNbBst;
use nbbst::SeqMap;
use nbbst_dictionary::{FibonacciRoute, RangeRoute, ShardRoute, UniformU64};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Keys that [`FibonacciRoute`] sends to shard 0 of an 8-way map — the
/// worst case for an 8-way split: all contention lands on one tree.
fn colliding_keys() -> Vec<u64> {
    let keys: Vec<u64> = (0..4_096u64)
        .filter(|k| FibonacciRoute.shard(k, 8) == 0)
        .take(64)
        .collect();
    assert!(keys.len() >= 32, "route too uniform to find collisions?");
    keys
}

/// Replays `ops` against the sharded map and the oracle, asserting every
/// return value matches, then checks the quiescent aggregates.
fn replay_and_check(shards: usize, ops: &[(u8, u64)]) -> Result<(), proptest::TestCaseError> {
    let map: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(shards);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for &(op, k) in ops {
        match op {
            0 => prop_assert_eq!(
                map.insert_entry(k, k.wrapping_mul(3)).is_ok(),
                SeqMap::insert(&mut oracle, k, k.wrapping_mul(3)),
                "insert {} at {} shards",
                k,
                shards
            ),
            1 => prop_assert_eq!(
                map.remove_key(&k),
                SeqMap::remove(&mut oracle, &k),
                "remove {} at {} shards",
                k,
                shards
            ),
            2 => prop_assert_eq!(
                map.contains_key(&k),
                SeqMap::contains(&oracle, &k),
                "contains {} at {} shards",
                k,
                shards
            ),
            _ => prop_assert_eq!(
                map.get_cloned(&k),
                SeqMap::get(&oracle, &k),
                "get {} at {} shards",
                k,
                shards
            ),
        }
    }
    prop_assert_eq!(map.len_slow(), oracle.len());
    map.check_invariants().unwrap();
    // Shard-local containment: every surviving key sits exactly on its
    // routed shard.
    for (i, shard) in map.shards().iter().enumerate() {
        for k in shard.keys_snapshot() {
            prop_assert_eq!(map.shard_of(&k), i, "key {} on wrong shard", k);
        }
    }
    Ok(())
}

fn bound_of(kind: u8, k: u64) -> Bound<u64> {
    match kind {
        0 => Bound::Included(k),
        1 => Bound::Excluded(k),
        _ => Bound::Unbounded,
    }
}

/// `BTreeMap::range` panics on a decreasing range (or equal endpoints
/// both excluded); our `range_snapshot` just returns empty for those.
fn btreemap_accepts(lo: &Bound<u64>, hi: &Bound<u64>) -> bool {
    match (lo, hi) {
        (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) => {
            a < b || (a == b && !matches!((lo, hi), (Bound::Excluded(_), Bound::Excluded(_))))
        }
        _ => true,
    }
}

/// Replays an insert/remove history, then checks `range_snapshot`,
/// `min_key` and `max_key` against the `BTreeMap` oracle for each query.
fn replay_and_check_ranges<R: ShardRoute<u64>>(
    map: ShardedNbBst<u64, u64, R>,
    route_name: &str,
    shards: usize,
    ops: &[(u8, u64)],
    queries: &[(u8, u64, u8, u64)],
) -> Result<(), proptest::TestCaseError> {
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for &(op, k) in ops {
        if op == 0 {
            map.insert_entry(k, k.wrapping_mul(3)).ok();
            SeqMap::insert(&mut oracle, k, k.wrapping_mul(3));
        } else {
            map.remove_key(&k);
            SeqMap::remove(&mut oracle, &k);
        }
    }
    prop_assert_eq!(
        map.min_key(),
        oracle.keys().next().copied(),
        "min at {} shards ({})",
        shards,
        route_name
    );
    prop_assert_eq!(
        map.max_key(),
        oracle.keys().next_back().copied(),
        "max at {} shards ({})",
        shards,
        route_name
    );
    for &(lo_kind, lo_k, hi_kind, hi_k) in queries {
        let (lo, hi) = (bound_of(lo_kind, lo_k), bound_of(hi_kind, hi_k));
        let got = map.range_snapshot(lo.as_ref(), hi.as_ref());
        if btreemap_accepts(&lo, &hi) {
            let want: Vec<(u64, u64)> = oracle.range((lo, hi)).map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(
                got,
                want,
                "range {:?}..{:?} at {} shards ({})",
                lo,
                hi,
                shards,
                route_name
            );
        } else {
            prop_assert!(
                got.is_empty(),
                "inverted range {:?}..{:?} must be empty at {} shards ({}), got {:?}",
                lo,
                hi,
                shards,
                route_name,
                got
            );
        }
    }
    Ok(())
}

proptest! {
    /// Spread-out keys: the full 0..96 range, which lands on every shard
    /// of an 8-way map.
    #[test]
    fn sharded_matches_btreemap_spread_keys(
        ops in proptest::collection::vec((0u8..4, 0u64..96), 0..300)
    ) {
        for shards in SHARD_COUNTS {
            replay_and_check(shards, &ops)?;
        }
    }

    /// Colliding keys: every key routes to shard 0 of the 8-way map, so
    /// the whole history funnels through one tree while seven trees must
    /// stay untouched.
    #[test]
    fn sharded_matches_btreemap_single_shard_colliding_keys(
        ops in proptest::collection::vec(
            (0u8..4, proptest::sample::select(colliding_keys())),
            0..300,
        )
    ) {
        for shards in SHARD_COUNTS {
            replay_and_check(shards, &ops)?;
        }
        // The adversarial premise itself: at 8 shards, nothing leaks off
        // shard 0.
        let map: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(8);
        for &(_, k) in &ops {
            prop_assert_eq!(map.shard_of(&k), 0);
            map.insert_entry(k, k).ok();
        }
        prop_assert!(map.shards()[1..].iter().all(|s| s.len_slow() == 0));
    }

    /// `range_snapshot` / `min_key` / `max_key` vs the `BTreeMap` oracle
    /// at every shard count, under the hash route (k-way merge path) and
    /// the range route (covering-shards concatenation path), including
    /// inverted and degenerate bounds.
    #[test]
    fn sharded_range_snapshot_matches_btreemap(
        ops in proptest::collection::vec((0u8..2, 0u64..96), 0..250),
        queries in proptest::collection::vec((0u8..3, 0u64..100, 0u8..3, 0u64..100), 1..16),
    ) {
        for shards in SHARD_COUNTS {
            replay_and_check_ranges(
                ShardedNbBst::with_shards(shards),
                "fibonacci",
                shards,
                &ops,
                &queries,
            )?;
            let route = RangeRoute::even(&UniformU64 { lo: 0, hi: 95 }, shards);
            replay_and_check_ranges(
                ShardedNbBst::with_route_and_shards(route, shards),
                "range",
                shards,
                &ops,
                &queries,
            )?;
        }
    }

    /// All keys on one shard: the hash-route collision set funnels the
    /// 8-way map through shard 0, and under the range route every key
    /// sits below the first split point — both must still agree with the
    /// oracle (seven shards contribute nothing to the merge/concat).
    #[test]
    fn sharded_range_snapshot_all_keys_one_shard(
        ops in proptest::collection::vec(
            (0u8..2, proptest::sample::select(colliding_keys())),
            0..250,
        ),
        low_ops in proptest::collection::vec((0u8..2, 0u64..12), 0..250),
        queries in proptest::collection::vec((0u8..3, 0u64..4_096, 0u8..3, 0u64..4_096), 1..16),
    ) {
        replay_and_check_ranges(
            ShardedNbBst::with_shards(8),
            "fibonacci-colliding",
            8,
            &ops,
            &queries,
        )?;
        // Universe [0, 95] over 8 shards puts the first split at 12, so
        // keys 0..12 all route to shard 0.
        let route = RangeRoute::even(&UniformU64 { lo: 0, hi: 95 }, 8);
        let map = ShardedNbBst::with_route_and_shards(route, 8);
        for &(_, k) in &low_ops {
            prop_assert_eq!(map.shard_of(&k), 0);
        }
        replay_and_check_ranges(map, "range-one-shard", 8, &low_ops, &queries)?;
    }
}
