//! Property tests: [`ShardedNbBst`] agrees with a sequential `BTreeMap`
//! oracle for arbitrary single-threaded histories, at every shard count
//! the frontend is expected to run at, for both *spread-out* key sets
//! (exercising every shard) and *adversarial* key sets whose every key
//! collides onto a single shard (exercising one tree through the routed
//! path, including its neighbours staying empty).

use nbbst::sharded::ShardedNbBst;
use nbbst::SeqMap;
use nbbst_dictionary::{FibonacciRoute, ShardRoute};
use proptest::prelude::*;
use std::collections::BTreeMap;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Keys that [`FibonacciRoute`] sends to shard 0 of an 8-way map — the
/// worst case for an 8-way split: all contention lands on one tree.
fn colliding_keys() -> Vec<u64> {
    let keys: Vec<u64> = (0..4_096u64)
        .filter(|k| FibonacciRoute.shard(k, 8) == 0)
        .take(64)
        .collect();
    assert!(keys.len() >= 32, "route too uniform to find collisions?");
    keys
}

/// Replays `ops` against the sharded map and the oracle, asserting every
/// return value matches, then checks the quiescent aggregates.
fn replay_and_check(shards: usize, ops: &[(u8, u64)]) -> Result<(), proptest::TestCaseError> {
    let map: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(shards);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for &(op, k) in ops {
        match op {
            0 => prop_assert_eq!(
                map.insert_entry(k, k.wrapping_mul(3)).is_ok(),
                SeqMap::insert(&mut oracle, k, k.wrapping_mul(3)),
                "insert {} at {} shards",
                k,
                shards
            ),
            1 => prop_assert_eq!(
                map.remove_key(&k),
                SeqMap::remove(&mut oracle, &k),
                "remove {} at {} shards",
                k,
                shards
            ),
            2 => prop_assert_eq!(
                map.contains_key(&k),
                SeqMap::contains(&oracle, &k),
                "contains {} at {} shards",
                k,
                shards
            ),
            _ => prop_assert_eq!(
                map.get_cloned(&k),
                SeqMap::get(&oracle, &k),
                "get {} at {} shards",
                k,
                shards
            ),
        }
    }
    prop_assert_eq!(map.len_slow(), oracle.len());
    map.check_invariants().unwrap();
    // Shard-local containment: every surviving key sits exactly on its
    // routed shard.
    for (i, shard) in map.shards().iter().enumerate() {
        for k in shard.keys_snapshot() {
            prop_assert_eq!(map.shard_of(&k), i, "key {} on wrong shard", k);
        }
    }
    Ok(())
}

proptest! {
    /// Spread-out keys: the full 0..96 range, which lands on every shard
    /// of an 8-way map.
    #[test]
    fn sharded_matches_btreemap_spread_keys(
        ops in proptest::collection::vec((0u8..4, 0u64..96), 0..300)
    ) {
        for shards in SHARD_COUNTS {
            replay_and_check(shards, &ops)?;
        }
    }

    /// Colliding keys: every key routes to shard 0 of the 8-way map, so
    /// the whole history funnels through one tree while seven trees must
    /// stay untouched.
    #[test]
    fn sharded_matches_btreemap_single_shard_colliding_keys(
        ops in proptest::collection::vec(
            (0u8..4, proptest::sample::select(colliding_keys())),
            0..300,
        )
    ) {
        for shards in SHARD_COUNTS {
            replay_and_check(shards, &ops)?;
        }
        // The adversarial premise itself: at 8 shards, nothing leaks off
        // shard 0.
        let map: ShardedNbBst<u64, u64> = ShardedNbBst::with_shards(8);
        for &(_, k) in &ops {
            prop_assert_eq!(map.shard_of(&k), 0);
            map.insert_entry(k, k).ok();
        }
        prop_assert!(map.shards()[1..].iter().all(|s| s.len_slow() == 0));
    }
}
