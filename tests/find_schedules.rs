//! Exhaustive interleavings of a stepped `Find` against one concurrent
//! update — the paper's Search lemma, mechanized:
//!
//! "we must ensure that searches do not go down a wrong path and miss the
//! element for which they are searching, when updates are happening
//! concurrently" (Section 1); the proof shows every node a Search visits
//! was on the search path for its key at some time during the Search, so
//! the reached leaf supports a legal linearization point.
//!
//! For every decision string, the Find's answer must be consistent with
//! the key's membership at SOME instant within the Find's execution
//! window: if the key's membership never changes during the window, the
//! answer must equal that constant; if a concurrent update flips it, both
//! answers are legal.

use nbbst::core::raw::{DeleteSearch, InsertSearch, MarkOutcome, RawDelete, RawFind, RawInsert};
use nbbst::NbBst;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Insert(u64),
    Delete(u64),
}

enum Upd<'t> {
    Ins(RawInsert<'t, u64, u64>, u8),
    Del(RawDelete<'t, u64, u64>, u8),
    Done,
}

impl<'t> Upd<'t> {
    fn new(tree: &'t NbBst<u64, u64>, op: Op) -> Upd<'t> {
        match op {
            Op::Insert(k) => Upd::Ins(RawInsert::new(tree, k, k), 0),
            Op::Delete(k) => Upd::Del(RawDelete::new(tree, k), 0),
        }
    }
    fn is_done(&self) -> bool {
        matches!(self, Upd::Done)
    }
    fn step(&mut self) {
        let next = match std::mem::replace(self, Upd::Done) {
            Upd::Ins(mut i, p) => match p {
                0 => match i.search() {
                    InsertSearch::Duplicate => Upd::Done,
                    InsertSearch::Busy(_) => {
                        i.help_blocker();
                        Upd::Ins(i, 0)
                    }
                    InsertSearch::Ready => Upd::Ins(i, 1),
                },
                1 => {
                    if i.flag() {
                        Upd::Ins(i, 2)
                    } else {
                        Upd::Ins(i, 0)
                    }
                }
                2 => {
                    i.execute_child();
                    Upd::Ins(i, 3)
                }
                _ => {
                    i.unflag();
                    Upd::Done
                }
            },
            Upd::Del(mut d, p) => match p {
                0 => match d.search() {
                    DeleteSearch::NotFound => Upd::Done,
                    DeleteSearch::Busy(_) => {
                        d.help_blocker();
                        Upd::Del(d, 0)
                    }
                    DeleteSearch::Ready => Upd::Del(d, 1),
                },
                1 => {
                    if d.flag() {
                        Upd::Del(d, 2)
                    } else {
                        Upd::Del(d, 0)
                    }
                }
                2 => match d.mark() {
                    MarkOutcome::Marked => Upd::Del(d, 3),
                    MarkOutcome::Failed => Upd::Del(d, 5),
                },
                5 => {
                    d.backtrack();
                    Upd::Del(d, 0)
                }
                3 => {
                    d.execute_child();
                    Upd::Del(d, 4)
                }
                _ => {
                    d.unflag();
                    Upd::Done
                }
            },
            done => done,
        };
        *self = next;
    }
}

/// Runs one interleaving; returns the Find's answer.
fn run_schedule(initial: &[u64], find_key: u64, update: Op, schedule: u64) -> bool {
    let tree: NbBst<u64, u64> = NbBst::new();
    for &k in initial {
        tree.insert_entry(k, k).unwrap();
    }
    let mut find = RawFind::new(&tree, find_key);
    let mut upd = Upd::new(&tree, update);
    let mut find_done = false;
    let mut steps = 0u32;
    while !find_done || !upd.is_done() {
        assert!(steps < 64, "schedule {schedule:#b} diverged");
        let pick_find = (schedule >> steps) & 1 == 0;
        if pick_find && !find_done {
            find_done = find.step();
        } else if !upd.is_done() {
            upd.step();
        } else {
            find_done = find.step();
        }
        steps += 1;
    }
    let answer = find.result().expect("find reached a leaf");
    drop(find);
    drop(upd);
    tree.check_invariants().unwrap();
    answer
}

fn enumerate(initial: &[u64], find_key: u64, update: Op, legal: &[bool]) {
    for schedule in 0..(1u64 << 14) {
        let answer = run_schedule(initial, find_key, update, schedule);
        assert!(
            legal.contains(&answer),
            "schedule {schedule:#b}: Find({find_key}) returned {answer}, legal {legal:?} (update {update:?})"
        );
    }
}

#[test]
fn find_never_misses_a_stable_present_key() {
    // The key is present throughout; the concurrent update touches its
    // neighborhood. The Find must ALWAYS return true — this is exactly
    // the wrong-path hazard the flag/mark protocol prevents.
    enumerate(&[10, 30, 50], 30, Op::Delete(50), &[true]);
    enumerate(&[10, 30, 50], 30, Op::Insert(40), &[true]);
    enumerate(&[10, 30, 50], 10, Op::Delete(30), &[true]);
}

#[test]
fn find_never_conjures_a_stable_absent_key() {
    // The key is absent throughout: Find must ALWAYS return false.
    enumerate(&[10, 30, 50], 40, Op::Delete(30), &[false]);
    enumerate(&[10, 30, 50], 20, Op::Insert(25), &[false]);
}

#[test]
fn find_racing_insert_of_its_key_may_see_either() {
    // Both answers are linearizable; what is NOT allowed is a crash or a
    // third outcome, and the answer must be justified per-schedule:
    // deterministically, schedule 0 (find runs first) must say false and
    // the all-update-first schedule must say true.
    let all_find_first = 0u64; // zeros: find steps first until done
    assert!(!run_schedule(&[10, 30], 20, Op::Insert(20), all_find_first));
    let all_update_first = u64::MAX; // ones: update runs to completion first
    assert!(run_schedule(
        &[10, 30],
        20,
        Op::Insert(20),
        all_update_first
    ));
    enumerate(&[10, 30], 20, Op::Insert(20), &[true, false]);
}

#[test]
fn find_racing_delete_of_its_key_may_see_either() {
    let all_find_first = 0u64;
    assert!(run_schedule(
        &[10, 20, 30],
        20,
        Op::Delete(20),
        all_find_first
    ));
    let all_update_first = u64::MAX;
    assert!(!run_schedule(
        &[10, 20, 30],
        20,
        Op::Delete(20),
        all_update_first
    ));
    enumerate(&[10, 20, 30], 20, Op::Delete(20), &[true, false]);
}
