//! A census of ALL interleavings of two-phase naive operations: exactly
//! which schedules produce the Figure 3 anomalies, and how many.
//!
//! A naive (single-CAS) operation has two steps: *prepare* (search + build
//! against the current tree) and *commit* (the one CAS). Two concurrent
//! operations A and B therefore admit six interleavings of
//! `{pa, ca} x {pb, cb}` with per-op order. The census classifies each
//! outcome against the final states admissible given what each operation
//! *reported* — showing the anomaly is not an exotic corner but two
//! thirds of the overlapped schedule space for the Figure 3 pairs —
//! while the matching EFRB enumeration (`schedule_enumeration.rs`) shows
//! zero anomalous schedules for the same pairs.

use nbbst::baselines::naive::{CommitOutcome, NaiveBst};
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Insert(u64),
    Delete(u64),
}

/// All interleavings of two 2-step ops, as orderings of `[A, A, B, B]`
/// (first occurrence = prepare, second = commit).
const SCHEDULES: [[u8; 4]; 6] = [
    [0, 0, 1, 1], // A then B (sequential)
    [0, 1, 0, 1], // pa pb ca cb
    [0, 1, 1, 0], // pa pb cb ca
    [1, 0, 0, 1], // pb pa ca cb
    [1, 0, 1, 0], // pb pa cb ca
    [1, 1, 0, 0], // B then A (sequential)
];

enum Staged<'t> {
    NotPrepared(Op),
    PreparedIns(nbbst::baselines::naive::PreparedInsert<'t, u64, u64>),
    PreparedDel(nbbst::baselines::naive::PreparedDelete<'t, u64, u64>),
    /// Finished; `true` means the operation REPORTED success (its CAS
    /// applied) — the census holds it to that claim.
    Done(bool),
}

impl<'t> Staged<'t> {
    fn step(&mut self, tree: &'t NaiveBst<u64, u64>) {
        let cur = std::mem::replace(self, Staged::Done(false));
        *self = match cur {
            Staged::NotPrepared(Op::Insert(k)) => match tree.prepare_insert(k, k) {
                Some(p) => Staged::PreparedIns(p),
                None => Staged::Done(false), // duplicate: reported false
            },
            Staged::NotPrepared(Op::Delete(k)) => match tree.prepare_delete(&k) {
                Some(p) => Staged::PreparedDel(p),
                None => Staged::Done(false), // not found: reported false
            },
            Staged::PreparedIns(p) => {
                // The naive one-shot op would retry on CAS failure; for the
                // census each op commits at most once (failure = op lost,
                // reported as such).
                Staged::Done(matches!(p.commit(), CommitOutcome::Applied))
            }
            Staged::PreparedDel(p) => Staged::Done(matches!(p.commit(), CommitOutcome::Applied)),
            done => done,
        };
    }

    fn reported_success(&self) -> bool {
        matches!(self, Staged::Done(true))
    }
}

fn apply(set: &mut BTreeSet<u64>, op: Op) {
    match op {
        Op::Insert(k) => {
            set.insert(k);
        }
        Op::Delete(k) => {
            set.remove(&k);
        }
    }
}

/// The final states admissible given which operations REPORTED success:
/// every successful op must take effect, in some order; failed ops take
/// none.
fn admissible(initial: &[u64], applied: &[Op]) -> Vec<BTreeSet<u64>> {
    let mut out = Vec::new();
    let orders: Vec<Vec<Op>> = match applied {
        [] => vec![vec![]],
        [x] => vec![vec![*x]],
        [x, y] => vec![vec![*x, *y], vec![*y, *x]],
        _ => unreachable!("census is pairwise"),
    };
    for order in orders {
        let mut set: BTreeSet<u64> = initial.iter().copied().collect();
        for op in order {
            apply(&mut set, op);
        }
        if !out.contains(&set) {
            out.push(set);
        }
    }
    out
}

/// Runs the census; returns how many of the six schedules produced a
/// final state OUTSIDE everything any sequence of committed/failed ops
/// could produce — i.e. true lost-update anomalies.
fn census(initial: &[u64], a: Op, b: Op) -> usize {
    let mut anomalies = 0;
    for schedule in SCHEDULES {
        let tree: NaiveBst<u64, u64> = NaiveBst::new();
        for &k in initial {
            assert!(tree.insert(k, k));
        }
        let mut ops = [Staged::NotPrepared(a), Staged::NotPrepared(b)];
        for pick in schedule {
            ops[pick as usize].step(&tree);
        }
        // Which operations claim to have taken effect?
        let mut applied = Vec::new();
        if ops[0].reported_success() {
            applied.push(a);
        }
        if ops[1].reported_success() {
            applied.push(b);
        }
        drop(ops);
        let legal = admissible(initial, &applied);
        let final_keys: BTreeSet<u64> = tree.keys_snapshot().into_iter().collect();
        if !legal.contains(&final_keys) {
            anomalies += 1;
        }
    }
    anomalies
}

#[test]
fn figure3b_pair_is_anomalous_in_four_of_six_schedules() {
    // Delete(C=30) || Delete(E=50) on the Figure 3(a) tree: every
    // schedule in which both operations prepare before both have
    // committed loses one of the deletes — 4 of the 6 interleavings;
    // only the two fully sequential ones are safe.
    let anomalies = census(&[10, 30, 50, 80], Op::Delete(30), Op::Delete(50));
    assert_eq!(anomalies, 4, "all overlapped orders resurrect a key");
}

#[test]
fn figure3c_pair_is_anomalous_in_four_of_six_schedules() {
    // Delete(E=50) || Insert(F=60): the insert is lost (or the delete
    // resurrected) in every overlapped interleaving — 4 of 6.
    let anomalies = census(&[10, 30, 50, 80], Op::Delete(50), Op::Insert(60));
    assert_eq!(anomalies, 4, "all overlapped orders lose an update");
}

#[test]
fn same_leaf_inserts_are_honest_even_naively() {
    // Two inserts racing for the SAME leaf CAS the same slot: the loser's
    // CAS fails and it honestly reports failure, so no anomaly — the
    // Figure 3 bugs specifically need a *stale sibling/child snapshot*,
    // which inserts alone cannot create.
    assert_eq!(census(&[10, 30, 50, 80], Op::Insert(25), Op::Insert(35)), 0);
}

#[test]
fn disjoint_pairs_are_never_anomalous_even_naively() {
    // Operations on well-separated parts of the tree cannot interfere
    // even without flags — the anomaly needs overlapping neighborhoods
    // (shared parent/grandparent), exactly as the paper's Figure 3
    // geometry shows.
    assert_eq!(census(&[10, 20, 70, 80], Op::Delete(10), Op::Delete(80)), 0);
    assert_eq!(census(&[10, 20, 70, 80], Op::Insert(15), Op::Insert(75)), 0);
}

#[test]
fn sequential_schedules_are_always_clean() {
    // Schedules 0 and 5 are sequential; they can never be anomalous, for
    // any pair. (Guards the census machinery itself.)
    for (a, b) in [
        (Op::Delete(30), Op::Delete(50)),
        (Op::Delete(50), Op::Insert(60)),
        (Op::Insert(25), Op::Insert(35)),
    ] {
        for schedule in [SCHEDULES[0], SCHEDULES[5]] {
            let tree: NaiveBst<u64, u64> = NaiveBst::new();
            for k in [10, 30, 50, 80] {
                tree.insert(k, k);
            }
            let mut ops = [Staged::NotPrepared(a), Staged::NotPrepared(b)];
            for pick in schedule {
                ops[pick as usize].step(&tree);
            }
            let mut applied = Vec::new();
            if ops[0].reported_success() {
                applied.push(a);
            }
            if ops[1].reported_success() {
                applied.push(b);
            }
            drop(ops);
            let legal = admissible(&[10, 30, 50, 80], &applied);
            let final_keys: BTreeSet<u64> = tree.keys_snapshot().into_iter().collect();
            assert!(legal.contains(&final_keys), "{a:?}/{b:?} {schedule:?}");
        }
    }
}
