//! T6 integration tests: non-blocking progress with crashed operations
//! stalled at every point of the Figure 4 circuits.

use nbbst::core::raw::{DeleteSearch, MarkOutcome, RawDelete, RawInsert};
use nbbst::{ConcurrentMap, NbBst};

/// Builds a tree with keys 0..n.
fn tree_with_range(n: u64) -> NbBst<u64, u64> {
    let t = NbBst::with_stats();
    for k in 0..n {
        t.insert(k, k);
    }
    t
}

#[test]
fn survivors_progress_past_insert_crashed_after_iflag() {
    let t = tree_with_range(8);
    let mut ins = RawInsert::new(&t, 100, 100);
    assert!(ins.search().is_ready());
    assert!(ins.flag());
    ins.abandon();

    // Conflicting updates from several survivor threads all complete.
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let t = &t;
            s.spawn(move || {
                for i in 0..2_000u64 {
                    let k = (tid * 31 + i) % 16;
                    if i % 2 == 0 {
                        t.insert(k, k);
                    } else {
                        t.remove(&k);
                    }
                }
            });
        }
    });
    // The crashed insert itself was completed by a helper.
    assert!(t.contains_key(&100));
    t.check_invariants().unwrap();
}

#[test]
fn survivors_progress_past_delete_crashed_after_dflag() {
    let t = tree_with_range(8);
    let mut del = RawDelete::new(&t, 3);
    assert_eq!(del.search(), DeleteSearch::Ready);
    assert!(del.flag());
    del.abandon();

    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let t = &t;
            s.spawn(move || {
                for i in 0..2_000u64 {
                    let k = (tid * 13 + i) % 8;
                    if i % 2 == 0 {
                        t.insert(k, k);
                    } else {
                        t.remove(&k);
                    }
                }
            });
        }
    });
    t.check_invariants().unwrap();
    // The crashed delete either completed (helped) or backtracked; either
    // way no flag remains. Its circuit has no owner to count it, so use
    // the abandoned-tolerant identity check.
    t.stats()
        .unwrap()
        .check_figure4_allowing_abandoned()
        .unwrap();
}

#[test]
fn survivors_progress_past_delete_crashed_after_mark() {
    let t = tree_with_range(8);
    let mut del = RawDelete::new(&t, 5);
    assert_eq!(del.search(), DeleteSearch::Ready);
    assert!(del.flag());
    assert_eq!(del.mark(), MarkOutcome::Marked);
    del.abandon();

    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let t = &t;
            s.spawn(move || {
                for i in 0..2_000u64 {
                    let k = (tid * 7 + i) % 8;
                    if i % 2 == 0 {
                        t.insert(k, k);
                    } else {
                        t.remove(&k);
                    }
                }
            });
        }
    });
    t.check_invariants().unwrap();
    // A marked deletion is guaranteed to complete via helpers; the
    // structure is consistent and the circuits balanced (the raw driver
    // counted the completion at its mark CAS, so the strict check holds).
    t.stats().unwrap().check_figure4().unwrap();
}

#[test]
fn many_simultaneous_crashes_do_not_block_progress() {
    // Keys 0,10,20,...,310 spread the leaves; planting inserts at
    // 5,15,25,... flags a DIFFERENT parent each time (crashing an insert
    // whose parent is already flagged would just be skipped).
    let t = NbBst::with_stats();
    for k in (0..32u64).map(|i| i * 10) {
        t.insert(k, k);
    }
    let mut crashed = Vec::new();
    for i in 0..10u64 {
        let mut ins = RawInsert::new(&t, i * 10 + 5, 0);
        if ins.search().is_ready() && ins.flag() {
            crashed.push(ins);
        }
    }
    let planted = crashed.len();
    assert!(planted >= 5, "most flags should plant: {planted}");
    for ins in crashed {
        ins.abandon();
    }

    // Survivors sweep the whole key space, forcing helps on every flag.
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let t = &t;
            s.spawn(move || {
                for round in 0..200u64 {
                    for k in (0..32u64).map(|i| i * 10 + 7) {
                        if (round + tid) % 2 == 0 {
                            t.insert(k, k);
                        } else {
                            t.remove(&k);
                        }
                    }
                }
            });
        }
    });
    t.check_invariants().unwrap();
    let stats = t.stats().unwrap();
    assert!(stats.helps > 0, "helping must have fired: {stats:?}");
    // The crashed inserts were counted at their flag CAS; deletes were not
    // crashed, so the strict identities hold.
    stats.check_figure4().unwrap();
}

#[test]
fn blocked_updates_complete_the_blocking_operation_first() {
    // Deterministic single-threaded version: an update that runs into a
    // crashed flag completes that operation before its own.
    let t = tree_with_range(2);
    let mut ins = RawInsert::new(&t, 10, 10);
    assert!(ins.search().is_ready());
    assert!(ins.flag());
    ins.abandon();

    let before = t.stats().unwrap();
    // This insert's search path goes through the flagged parent.
    assert!(t.insert(11, 11));
    let after = t.stats().unwrap();
    assert!(
        after.helps > before.helps,
        "the second insert must have helped"
    );
    assert!(t.contains_key(&10), "the crashed insert was completed");
    assert!(t.contains_key(&11));
    t.check_invariants().unwrap();
}
