//! T10 integration tests: recorded concurrent histories from the EFRB
//! tree (and every honest baseline, and the sharded frontend) are
//! linearizable.

use nbbst::harness::{check_map_linearizable, KeyDist, OpMix, WorkloadSpec};
use nbbst::sharded::ShardedNbBst;
use nbbst::NbBst;
use nbbst_dictionary::ShardRoute;

fn spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        key_range: 8,
        mix: OpMix::new(20, 40, 40),
        dist: KeyDist::Uniform,
        prefill_fraction: 0.5,
        seed,
    }
}

#[test]
fn nbbst_histories_are_linearizable() {
    check_map_linearizable(NbBst::<u64, u64>::new, &spec(11), 4, 12, 60).unwrap();
}

#[test]
fn nbbst_update_heavy_histories_are_linearizable() {
    let s = WorkloadSpec {
        mix: OpMix::UPDATE_ONLY,
        key_range: 4, // maximal key collision
        ..spec(13)
    };
    check_map_linearizable(NbBst::<u64, u64>::new, &s, 4, 12, 60).unwrap();
}

#[test]
fn nbbst_read_heavy_histories_are_linearizable() {
    let s = WorkloadSpec {
        mix: OpMix::new(60, 20, 20),
        ..spec(17)
    };
    check_map_linearizable(NbBst::<u64, u64>::new, &s, 8, 8, 40).unwrap();
}

#[test]
fn sharded_histories_are_linearizable() {
    // The default hash route: the 8-key space spreads across 4 shards,
    // so histories interleave shard-local and cross-shard operations.
    check_map_linearizable(
        || ShardedNbBst::<u64, u64>::with_shards(4),
        &spec(37),
        4,
        12,
        60,
    )
    .unwrap();
}

#[test]
fn sharded_update_heavy_histories_are_linearizable() {
    let s = WorkloadSpec {
        mix: OpMix::UPDATE_ONLY,
        key_range: 4, // maximal key collision
        ..spec(41)
    };
    check_map_linearizable(|| ShardedNbBst::<u64, u64>::with_shards(8), &s, 4, 12, 60).unwrap();
}

#[test]
fn sharded_single_shard_adversarial_histories_are_linearizable() {
    // Adversarial route: every key funnels through shard 0 of an 8-way
    // map, so the composition degenerates to one tree behind the routing
    // layer — histories must stay linearizable with seven idle shards.
    #[derive(Debug)]
    struct OneShard;
    impl ShardRoute<u64> for OneShard {
        fn shard(&self, _key: &u64, _shards: usize) -> usize {
            0
        }
    }
    let s = WorkloadSpec {
        mix: OpMix::UPDATE_ONLY,
        ..spec(43)
    };
    check_map_linearizable(
        || ShardedNbBst::<u64, u64, OneShard>::with_route_and_shards(OneShard, 8),
        &s,
        4,
        12,
        60,
    )
    .unwrap();
}

#[test]
fn skiplist_histories_are_linearizable() {
    check_map_linearizable(
        nbbst::baselines::SkipList::<u64, u64>::new,
        &spec(19),
        4,
        12,
        40,
    )
    .unwrap();
}

#[test]
fn lockfree_list_histories_are_linearizable() {
    check_map_linearizable(
        nbbst::baselines::LockFreeList::<u64, u64>::new,
        &spec(23),
        4,
        12,
        40,
    )
    .unwrap();
}

#[test]
fn fine_lock_histories_are_linearizable() {
    check_map_linearizable(
        nbbst::baselines::FineLockBst::<u64, u64>::new,
        &spec(29),
        4,
        12,
        40,
    )
    .unwrap();
}

#[test]
fn coarse_lock_histories_are_linearizable() {
    check_map_linearizable(
        nbbst::baselines::CoarseLockBst::<u64, u64>::new,
        &spec(31),
        4,
        12,
        40,
    )
    .unwrap();
}
