//! F1/F2 integration tests: the concurrent tree's update *shapes* match
//! the sequential model node-for-node (Figures 1 and 2), for scripted and
//! for arbitrary single-threaded histories.

use nbbst::model::LeafBst;
use nbbst::{NbBst, SeqMap};
use proptest::prelude::*;

/// Both renderers print `(key)` internals and `[key]` leaves with the
/// same tree layout, so equal strings = equal shapes.
fn shapes_match(tree: &NbBst<u64, u64>, model: &LeafBst<u64, u64>) {
    assert_eq!(
        tree.render(),
        model.render(),
        "tree shape diverged from the model"
    );
}

#[test]
fn figure1_insert_shape() {
    let tree: NbBst<u64, u64> = NbBst::new();
    let mut model: LeafBst<u64, u64> = LeafBst::new();

    // B=20, D=40 exist; Insert(C=30) replaces leaf D with (40){[30],[40]}.
    for k in [20u64, 40] {
        tree.insert_entry(k, k).unwrap();
        SeqMap::insert(&mut model, k, k);
    }
    shapes_match(&tree, &model);

    tree.insert_entry(30, 30).unwrap();
    SeqMap::insert(&mut model, 30, 30);
    shapes_match(&tree, &model);

    let rendered = tree.render();
    // The figure's shape: an internal keyed by the larger key (40) with
    // the two leaves below it, smaller on the left.
    assert!(rendered.contains("(40)"), "{rendered}");
    assert!(rendered.contains("[30]"), "{rendered}");
    assert!(rendered.contains("[40]"), "{rendered}");
}

#[test]
fn figure2_delete_shape() {
    let tree: NbBst<u64, u64> = NbBst::new();
    let mut model: LeafBst<u64, u64> = LeafBst::new();
    for k in [20u64, 40, 30] {
        tree.insert_entry(k, k).unwrap();
        SeqMap::insert(&mut model, k, k);
    }
    // Delete(C=30): the leaf and its parent vanish; the sibling leaf [40]
    // is promoted to the grandparent.
    assert!(tree.remove_key(&30));
    assert!(SeqMap::remove(&mut model, &30));
    shapes_match(&tree, &model);
    let rendered = tree.render();
    assert!(!rendered.contains("[30]"), "{rendered}");
}

#[test]
fn empty_tree_is_figure_6a() {
    let tree: NbBst<u64, u64> = NbBst::new();
    let model: LeafBst<u64, u64> = LeafBst::new();
    shapes_match(&tree, &model);
}

proptest! {
    /// Range snapshots agree with the sequential model for arbitrary
    /// histories and arbitrary bounds.
    #[test]
    fn ranges_match_model(
        ops in proptest::collection::vec((0u8..2, 0u64..64), 0..150),
        lo in 0u64..64,
        hi in 0u64..64,
    ) {
        use std::ops::Bound;
        let tree: NbBst<u64, u64> = NbBst::new();
        let mut model: LeafBst<u64, u64> = LeafBst::new();
        for (op, k) in ops {
            if op == 0 {
                tree.insert_entry(k, k).ok();
                SeqMap::insert(&mut model, k, k);
            } else {
                tree.remove_key(&k);
                SeqMap::remove(&mut model, &k);
            }
        }
        prop_assert_eq!(
            tree.range_snapshot(Bound::Included(&lo), Bound::Excluded(&hi)),
            model.range(Bound::Included(&lo), Bound::Excluded(&hi))
        );
        prop_assert_eq!(
            tree.range_snapshot(Bound::Excluded(&lo), Bound::Included(&hi)),
            model.range(Bound::Excluded(&lo), Bound::Included(&hi))
        );
        prop_assert_eq!(tree.min_key(), model.keys().next());
        prop_assert_eq!(tree.max_key(), model.keys().last());
    }

    /// For ANY single-threaded op sequence, the concurrent tree and the
    /// sequential model produce byte-identical shapes — i.e. Figures 1/2
    /// are the only transformations either ever applies.
    #[test]
    fn shapes_match_for_arbitrary_histories(
        ops in proptest::collection::vec((0u8..3, 0u64..48), 0..250)
    ) {
        let tree: NbBst<u64, u64> = NbBst::new();
        let mut model: LeafBst<u64, u64> = LeafBst::new();
        for (op, k) in ops {
            match op {
                0 => {
                    prop_assert_eq!(
                        tree.insert_entry(k, k).is_ok(),
                        SeqMap::insert(&mut model, k, k)
                    );
                }
                1 => prop_assert_eq!(tree.remove_key(&k), SeqMap::remove(&mut model, &k)),
                _ => prop_assert_eq!(tree.contains_key(&k), SeqMap::contains(&model, &k)),
            }
        }
        prop_assert_eq!(tree.render(), model.render());
        tree.check_invariants().unwrap();
        model.check_invariants().unwrap();
    }

    /// Values ride along correctly under arbitrary histories.
    #[test]
    fn values_match_for_arbitrary_histories(
        ops in proptest::collection::vec((0u8..2, 0u64..32, 0u64..1000), 0..150)
    ) {
        let tree: NbBst<u64, u64> = NbBst::new();
        let mut model: LeafBst<u64, u64> = LeafBst::new();
        for (op, k, v) in ops {
            match op {
                0 => {
                    tree.insert_entry(k, v).ok();
                    SeqMap::insert(&mut model, k, v);
                }
                _ => {
                    tree.remove_key(&k);
                    SeqMap::remove(&mut model, &k);
                }
            }
            for probe in 0..32u64 {
                prop_assert_eq!(tree.get_cloned(&probe), SeqMap::get(&model, &probe));
            }
        }
    }
}
