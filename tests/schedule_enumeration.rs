//! Exhaustive CAS-step interleaving exploration ("mini model checker").
//!
//! The paper's proof argues over interleavings of individual CAS steps.
//! Loom is not in the dependency budget, so this test enumerates — for
//! pairs of conflicting operations on small trees — **every** interleaving
//! of their CAS steps (search/flag/mark/child/unflag/backtrack, via the
//! stepped `raw` drivers), and asserts for each complete schedule:
//!
//! 1. both operations terminate (with bounded retries),
//! 2. the final key set equals the sequential result (for the commutative
//!    pairs tested, all linearization orders agree),
//! 3. the tree's structural invariants hold,
//! 4. the Figure-4 circuit identities hold.
//!
//! Each schedule is replayed from a fresh tree, driven by a decision
//! string: at step `i`, bit `i` of the schedule id says which operation
//! advances. Operations advance through the *real* algorithm's control
//! flow (retrying after failed flags, backtracking after failed marks).

use nbbst::core::raw::{DeleteSearch, InsertSearch, MarkOutcome, RawDelete, RawInsert};
use nbbst::NbBst;
use std::collections::BTreeSet;

/// One operation to interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Insert(u64),
    Delete(u64),
}

/// A stepped operation mid-flight.
enum Driver<'t> {
    Insert(RawInsert<'t, u64, u64>, InsPhase),
    Delete(RawDelete<'t, u64, u64>, DelPhase),
    /// Finished (the boolean outcome is not consulted by the checker;
    /// final-state validation covers it).
    Done(#[allow(dead_code)] bool),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // Need* mirrors the pending CAS step
enum InsPhase {
    NeedSearch,
    NeedFlag,
    NeedChild,
    NeedUnflag,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)]
enum DelPhase {
    NeedSearch,
    NeedFlag,
    NeedMark,
    NeedChild,
    NeedUnflag,
    NeedBacktrack,
}

impl<'t> Driver<'t> {
    fn new(tree: &'t NbBst<u64, u64>, op: Op) -> Driver<'t> {
        match op {
            Op::Insert(k) => Driver::Insert(RawInsert::new(tree, k, k), InsPhase::NeedSearch),
            Op::Delete(k) => Driver::Delete(RawDelete::new(tree, k), DelPhase::NeedSearch),
        }
    }

    fn is_done(&self) -> bool {
        matches!(self, Driver::Done(_))
    }

    /// Advances by exactly one step of the real algorithm. A `Busy` search
    /// outcome *re-searches* on the next step (the real code would help;
    /// with only two ops, the blocker either finishes by itself in this
    /// schedule or — if it crashed — helping is covered by other tests).
    fn step(&mut self) {
        let next = match std::mem::replace(self, Driver::Done(false)) {
            Driver::Insert(mut ins, phase) => match phase {
                InsPhase::NeedSearch => match ins.search() {
                    InsertSearch::Duplicate => Driver::Done(false),
                    InsertSearch::Busy(_) => {
                        // Line 51: help the blocker, restart the attempt.
                        ins.help_blocker();
                        Driver::Insert(ins, InsPhase::NeedSearch)
                    }
                    InsertSearch::Ready => Driver::Insert(ins, InsPhase::NeedFlag),
                },
                InsPhase::NeedFlag => {
                    if ins.flag() {
                        Driver::Insert(ins, InsPhase::NeedChild)
                    } else {
                        Driver::Insert(ins, InsPhase::NeedSearch)
                    }
                }
                InsPhase::NeedChild => {
                    ins.execute_child();
                    Driver::Insert(ins, InsPhase::NeedUnflag)
                }
                InsPhase::NeedUnflag => {
                    ins.unflag();
                    Driver::Done(true)
                }
            },
            Driver::Delete(mut del, phase) => match phase {
                DelPhase::NeedSearch => match del.search() {
                    DeleteSearch::NotFound => Driver::Done(false),
                    DeleteSearch::Busy(_) => {
                        // Lines 77-78: help the blocker, restart.
                        del.help_blocker();
                        Driver::Delete(del, DelPhase::NeedSearch)
                    }
                    DeleteSearch::Ready => Driver::Delete(del, DelPhase::NeedFlag),
                },
                DelPhase::NeedFlag => {
                    if del.flag() {
                        Driver::Delete(del, DelPhase::NeedMark)
                    } else {
                        Driver::Delete(del, DelPhase::NeedSearch)
                    }
                }
                DelPhase::NeedMark => match del.mark() {
                    MarkOutcome::Marked => Driver::Delete(del, DelPhase::NeedChild),
                    MarkOutcome::Failed => Driver::Delete(del, DelPhase::NeedBacktrack),
                },
                DelPhase::NeedBacktrack => {
                    del.backtrack();
                    Driver::Delete(del, DelPhase::NeedSearch)
                }
                DelPhase::NeedChild => {
                    del.execute_child();
                    Driver::Delete(del, DelPhase::NeedUnflag)
                }
                DelPhase::NeedUnflag => {
                    del.unflag();
                    Driver::Done(true)
                }
            },
            done => done,
        };
        *self = next;
    }
}

/// The sequential outcome: apply `a` then `b` (and `b` then `a`) to the
/// initial set; returns the set of admissible final key sets.
fn sequential_outcomes(initial: &[u64], a: Op, b: Op) -> Vec<BTreeSet<u64>> {
    let apply = |set: &mut BTreeSet<u64>, op: Op| match op {
        Op::Insert(k) => {
            set.insert(k);
        }
        Op::Delete(k) => {
            set.remove(&k);
        }
    };
    let mut outcomes = Vec::new();
    for order in [[a, b], [b, a]] {
        let mut set: BTreeSet<u64> = initial.iter().copied().collect();
        for op in order {
            apply(&mut set, op);
        }
        if !outcomes.contains(&set) {
            outcomes.push(set);
        }
    }
    outcomes
}

/// Runs one schedule (bit `i` of `schedule` picks which op moves at step
/// `i`) and validates the outcome. Returns the number of steps consumed.
fn run_schedule(initial: &[u64], a: Op, b: Op, schedule: u64) -> u32 {
    let tree: NbBst<u64, u64> = NbBst::with_stats();
    for &k in initial {
        tree.insert_entry(k, k).unwrap();
    }
    let mut da = Driver::new(&tree, a);
    let mut db = Driver::new(&tree, b);

    let mut steps = 0u32;
    while !(da.is_done() && db.is_done()) {
        assert!(
            steps < 64,
            "schedule {schedule:#b} for {a:?} || {b:?} did not terminate"
        );
        let pick_a = (schedule >> steps) & 1 == 0;
        if pick_a && !da.is_done() {
            da.step();
        } else if !db.is_done() {
            db.step();
        } else {
            da.step();
        }
        steps += 1;
    }
    drop(da);
    drop(db);

    // Validate: final keys must be one of the two sequential outcomes.
    let final_keys: BTreeSet<u64> = tree.keys_snapshot().into_iter().collect();
    let admissible = sequential_outcomes(initial, a, b);
    assert!(
        admissible.contains(&final_keys),
        "schedule {schedule:#b} for {a:?} || {b:?}: final {final_keys:?} not in {admissible:?}"
    );
    tree.check_invariants()
        .unwrap_or_else(|e| panic!("schedule {schedule:#b}: {e}"));
    tree.stats()
        .unwrap()
        .check_figure4()
        .unwrap_or_else(|e| panic!("schedule {schedule:#b}: {e}"));
    steps
}

/// Enumerates all `2^max_steps` decision strings. Distinct prefixes that
/// the run never consults collapse to the same execution, so this covers
/// every reachable interleaving (with redundancy, which is fine).
fn enumerate(initial: &[u64], a: Op, b: Op) {
    const MAX_DECISION_BITS: u32 = 14;
    for schedule in 0..(1u64 << MAX_DECISION_BITS) {
        run_schedule(initial, a, b, schedule);
    }
}

#[test]
fn all_interleavings_insert_vs_insert_same_leaf() {
    // Both inserts land next to the same leaf: maximal iflag conflict.
    enumerate(&[10], Op::Insert(20), Op::Insert(30));
}

#[test]
fn all_interleavings_insert_vs_insert_same_key() {
    // Exactly one may succeed.
    enumerate(&[10], Op::Insert(20), Op::Insert(20));
}

#[test]
fn all_interleavings_delete_vs_delete_adjacent() {
    // The Figure 3(b) pair, exhaustively.
    enumerate(&[10, 30, 50, 80], Op::Delete(30), Op::Delete(50));
}

#[test]
fn all_interleavings_delete_vs_delete_same_key() {
    enumerate(&[10, 30, 50], Op::Delete(30), Op::Delete(30));
}

#[test]
fn all_interleavings_insert_vs_delete_adjacent() {
    // The Figure 3(c)/Figure 5 pair, exhaustively.
    enumerate(&[10, 30, 50, 80], Op::Insert(60), Op::Delete(50));
}

#[test]
fn all_interleavings_insert_vs_delete_same_key() {
    enumerate(&[10, 30], Op::Insert(30), Op::Delete(30));
}

#[test]
fn all_interleavings_on_tiny_tree() {
    // Grandparent == root region; exercises the ∞-sentinel edge cases.
    enumerate(&[10], Op::Insert(5), Op::Delete(10));
}
